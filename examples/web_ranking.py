#!/usr/bin/env python3
"""Web-page ranking with asynchronous PageRank.

PageRank is the paper's example of a *naturally unordered* algorithm
(Dijkstra's don't-care non-determinism): the global barrier buys nothing,
so relaxing it is pure win.  Better still, Table 4 shows the asynchronous
version usually does *less* work than BSP — a hub's residue accumulates
across many incoming pushes and is drained with a single traversal of its
edge list, where BSP would have traversed it once per iteration.

This example ranks the indochina-2004 stand-in (a web crawl), verifies the
asynchronous result against a power-iteration reference, and shows the
work-savings effect.

Run:  python examples/web_ranking.py
"""

import numpy as np

from repro import Lab
from repro.apps import pagerank


def main() -> None:
    lab = Lab(size="small")
    graph = lab.graph("indochina-2004")
    print(f"ranking {graph.name}: |V|={graph.num_vertices}, |E|={graph.num_edges}\n")

    bsp = lab.run("pagerank", "indochina-2004", "BSP")
    atos = lab.run("pagerank", "indochina-2004", "persist-CTA")

    # correctness: both converge to the same fixed point
    err = pagerank.max_rank_error(graph, atos.output)
    print(f"async rank error vs power iteration: {err:.2e}")
    agree = np.abs(bsp.output - atos.output).max()
    print(f"max |BSP - async| rank difference:   {agree:.2e}\n")

    # the top-ranked pages
    top = np.argsort(atos.output)[::-1][:5]
    print("top 5 vertices by rank:")
    for v in top:
        print(
            f"  vertex {v:6d}  rank={atos.output[v]:8.2f}  "
            f"in-degree={int(graph.in_degrees()[v])}"
        )
    print()

    # the Section 6.3 PageRank story: less work, more speed
    ratio = atos.work_units / bsp.work_units
    print(f"BSP:   {bsp.elapsed_ms:8.3f} ms, {bsp.work_units:12.0f} edge pushes")
    print(f"async: {atos.elapsed_ms:8.3f} ms, {atos.work_units:12.0f} edge pushes")
    print(f"speedup x{bsp.elapsed_ns / atos.elapsed_ns:.2f}, workload ratio {ratio:.2f}")
    if ratio < 1.0:
        print(
            "-> the asynchronous run did LESS work than BSP: residues "
            "accumulated between pops (the paper's Table 4 effect)"
        )
    print()
    print(lab.format_table1("pagerank", ("indochina-2004", "roadNet-CA")))


if __name__ == "__main__":
    main()
