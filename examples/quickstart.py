#!/usr/bin/env python3
"""Quickstart: run speculative BFS under the Atos scheduler.

This walks the three layers of the public API:

1. load a graph (one of the paper's dataset stand-ins);
2. launch an application kernel through the ``Atos`` façade, exactly like
   the paper's Listing 4 (``launchWarp(BFSWarp(), ...)``);
3. compare against the Gunrock-style BSP baseline with the ``Lab`` runner.

Run:  python examples/quickstart.py
"""

from repro import Atos, Lab, load_dataset
from repro.apps import bfs
from repro.apps.bfs import SpeculativeBfsKernel


def main() -> None:
    # 1. a scaled-down stand-in for soc-LiveJournal1 (scale-free)
    graph = load_dataset("soc-LiveJournal1", size="small")
    print(f"graph: {graph.name}, |V|={graph.num_vertices}, |E|={graph.num_edges}")

    # 2. the Listing-3-style API: build a task kernel, launch warp workers
    atos = Atos()
    kernel = SpeculativeBfsKernel(graph, source=0)
    result = atos.launch_warp(kernel, persistent=True)
    reached = int((kernel.depth < bfs.UNREACHED).sum())
    print(
        f"persistent warp launch: {result.elapsed_ns / 1e6:.3f} ms simulated, "
        f"{result.total_tasks} tasks, {reached} vertices reached, "
        f"{result.worker_slots} resident workers"
    )
    assert bfs.validate_depths(graph, kernel.depth), "BFS depths must be exact"

    # same kernel logic, CTA-sized workers with in-worker load balancing
    kernel2 = SpeculativeBfsKernel(graph, source=0)
    result2 = atos.launch_cta(kernel2, fetch_size=64, num_threads=256)
    print(
        f"persistent CTA launch:  {result2.elapsed_ns / 1e6:.3f} ms simulated, "
        f"{result2.total_tasks} tasks"
    )

    # 3. the full Table-1 comparison on two datasets via the Lab runner
    lab = Lab(size="small")
    print()
    print(lab.format_table1("bfs", ("soc-LiveJournal1", "roadNet-CA")))


if __name__ == "__main__":
    main()
