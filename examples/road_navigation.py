#!/usr/bin/env python3
"""Road-network reachability: the small-frontier problem in action.

The motivating scenario from the paper's introduction: BFS over a road
network has thousands of levels with only a handful of vertices each, so a
BSP engine pays a kernel launch + global barrier per level and spends most
of its time *not* computing.  A persistent Atos kernel pays one launch and
keeps workers busy popping whatever is available.

This example:

1. builds the road_usa stand-in and shows why it is hostile to BSP
   (diameter vs. average frontier size);
2. runs the four implementations and prints the Table-1-style comparison;
3. plots (terminal sparklines) the Figure-1 throughput timelines, where
   the BSP curve's long low plateau *is* the small-frontier problem.

Run:  python examples/road_navigation.py
"""

from repro import Lab
from repro.analysis.challenges import classify_challenges
from repro.graph.metrics import compute_stats


def main() -> None:
    lab = Lab(size="small")
    graph = lab.graph("road_usa")
    stats = compute_stats(graph)
    avg_frontier = graph.num_vertices / max(stats.diameter, 1)
    print(
        f"{graph.name}: |V|={stats.num_vertices}, diameter={stats.diameter}, "
        f"max degree={stats.max_out_degree}"
    )
    print(
        f"average BFS frontier ~ |V|/diameter = {avg_frontier:.0f} vertices "
        f"-> each BSP kernel is nearly empty\n"
    )

    # Table-1 rows for the road graphs
    print(lab.format_table1("bfs", ("road_usa", "roadNet-CA")))
    print()

    # the derived Table-3 classification for this (app, dataset) pair
    report = classify_challenges(graph, lab.run("bfs", "road_usa", "BSP"), spec=lab.spec)
    print(
        f"challenge classification: {report.label()} "
        f"(low-throughput time fraction: {report.low_throughput_time_fraction:.0%})\n"
    )

    # Figure 1 panel: the BSP plateau vs the Atos burst
    print(lab.format_figure("bfs", "road_usa"))
    print()
    best = max(
        lab.table1("bfs", ("road_usa",))[0].speedups.items(), key=lambda kv: kv[1]
    )
    print(f"best Atos variant on road_usa: {best[0]} at x{best[1]:.2f} over BSP")


if __name__ == "__main__":
    main()
