#!/usr/bin/env python3
"""Network analysis with the extension apps: components, cores, MIS.

A small analytics pipeline over one graph — the kind of multi-kernel
workflow a downstream user composes out of the library:

1. **connected components** (min-label propagation) to find the graph's
   structure;
2. **k-core decomposition** (asynchronous peeling in a single persistent
   kernel) to rank vertices by engagement;
3. **maximal independent set** (speculative, lexicographic) to pick a
   scattered sample of vertices.

Every result is validated against its exact reference oracle.

Run:  python examples/network_analysis.py
"""

import numpy as np

from repro import PERSIST_WARP, load_dataset
from repro.apps import cc, kcore, mis


def main() -> None:
    graph = load_dataset("soc-LiveJournal1", size="tiny")
    print(f"analysing {graph.name}: |V|={graph.num_vertices}, |E|={graph.num_edges}\n")

    comps = cc.run_atos(graph, PERSIST_WARP)
    assert cc.validate_components(graph, comps.output)
    sizes = np.bincount(comps.output)
    sizes = np.sort(sizes[sizes > 0])[::-1]
    print(
        f"components: {comps.extra['num_components']} "
        f"(largest {sizes[0]} vertices, {comps.elapsed_ns / 1e3:.1f} us simulated)"
    )

    cores = kcore.run_atos(graph, PERSIST_WARP)
    assert kcore.validate_core_numbers(graph, cores.output)
    print(
        f"k-core: max core {cores.extra['max_core']}; "
        f"core-size profile: "
        + ", ".join(
            f"{k}-core={int((cores.output >= k).sum())}"
            for k in range(0, cores.extra["max_core"] + 1, max(1, cores.extra["max_core"] // 4))
        )
    )

    sample = mis.run_atos(graph, PERSIST_WARP)
    assert mis.validate_mis(graph, sample.output)
    print(
        f"maximal independent set: {sample.extra['mis_size']} vertices "
        f"({sample.extra['mis_size'] / graph.num_vertices:.0%} of the graph), "
        f"{sample.work_units:.0f} speculative evaluations"
    )
    print("\nall three outputs validated against exact references")


if __name__ == "__main__":
    main()
