#!/usr/bin/env python3
"""Interference-graph coloring and the vertex-ordering trap.

Graph coloring's classic systems use-case is register allocation: variables
are vertices, overlapping live ranges are edges, and colors are registers.
This example uses the paper's third case study to color an interference-like
graph and demonstrates its sharpest finding (Section 6.3): *how* the
scheduler orders work changes the amount of speculative overwork by an
order of magnitude — and randomly permuting vertex ids largely erases the
difference.

Run:  python examples/register_allocation.py
"""

from repro import Lab
from repro.analysis.overwork import coloring_workload_ratio
from repro.apps import coloring
from repro.graph.permute import locality_score


def main() -> None:
    lab = Lab(size="small")
    ds = "soc-LiveJournal1"
    graph = lab.graph(ds)
    print(
        f"coloring {graph.name}: |V|={graph.num_vertices}, "
        f"|E|={graph.num_edges}, id-locality={locality_score(graph):.3f}\n"
    )

    print("implementation    colors  assignments/|V|  runtime(ms)  proper?")
    for impl in ("BSP", "persist-warp", "persist-CTA", "discrete-warp"):
        res = lab.run("coloring", ds, impl)
        ratio = coloring_workload_ratio(res, graph.num_vertices)
        ok = coloring.validate_coloring(graph, res.output)
        print(
            f"  {impl:14s}  {res.extra['num_colors']:5d}  {ratio:14.2f}  "
            f"{res.elapsed_ms:10.3f}  {ok}"
        )
    print()
    print(
        "persist-warp's completion-paced pops see nearly-fresh neighbor\n"
        "colors (assignments/|V| ~ 1.0); the discrete launch wave reads one\n"
        "stale snapshot in id order, so id-adjacent neighbors collide.\n"
    )

    # the fix the paper proposes: scramble the ids
    print(lab.format_permutation_study((ds,)))
    perm_graph = lab.graph(ds, permuted=True)
    print(
        f"\nid-locality after permutation: {locality_score(perm_graph):.3f} "
        f"(was {locality_score(graph):.3f})"
    )
    res = lab.run("coloring", ds, "discrete-warp", permuted=True)
    print(
        "discrete-warp overwork after permutation: "
        f"{coloring_workload_ratio(res, perm_graph.num_vertices):.2f} "
        "(paper: drops below 1.5 for every implementation)"
    )


if __name__ == "__main__":
    main()
