#!/usr/bin/env python3
"""Beyond the paper's three apps: weighted SSSP and DAG task pipelines.

Two extension features the paper sketches but does not evaluate:

1. **Weighted SSSP** — the Section 3.1 related-work contrast made
   measurable: speculative (relaxed-barrier) Dijkstra against unordered
   Bellman-Ford.  The paper argues speculation stays "within a small
   constant factor" of the ordered workload, far below Bellman-Ford's
   ``diameter x |E|``.
2. **DAG dependencies via join counters** — Section 3: "Atos can be
   extended in a straightforward way to DAGs by adding (atomic) counters
   for each join".  We run a 2-D wavefront (each cell depends on its north
   and west neighbors) and verify no dependency is ever violated despite
   fully asynchronous scheduling.

Run:  python examples/task_pipeline.py
"""

import numpy as np

from repro import PERSIST_CTA, PERSIST_WARP
from repro.apps import sssp
from repro.core.dag import Dag, DagKernel
from repro.core.scheduler import run
from repro.graph.generators import road_network


def sssp_demo() -> None:
    print("=== speculative SSSP vs Bellman-Ford ===")
    graph = road_network(60, 40, seed=9, name="road-60x40")
    weights = sssp.random_weights(graph, low=1.0, high=25.0, seed=3)

    bf = sssp.run_bellman_ford(graph, weights=weights)
    spec_run = sssp.run_atos(graph, PERSIST_CTA, weights=weights)
    assert sssp.validate_distances(graph, weights, bf.output)
    assert sssp.validate_distances(graph, weights, spec_run.output)

    print(f"graph: |V|={graph.num_vertices}, |E|={graph.num_edges}")
    print(
        f"Bellman-Ford: {bf.elapsed_ms:8.3f} ms, "
        f"{bf.work_units:9.0f} relaxations over {bf.iterations} rounds"
    )
    print(
        f"speculative:  {spec_run.elapsed_ms:8.3f} ms, "
        f"{spec_run.work_units:9.0f} relaxations (single persistent kernel)"
    )
    print(
        f"relaxations vs |E|: Bellman-Ford {bf.work_units / graph.num_edges:.2f}x, "
        f"speculative {spec_run.work_units / graph.num_edges:.2f}x\n"
    )


def wavefront_demo() -> None:
    print("=== DAG wavefront via join counters ===")
    n = 24
    edges = []
    for i in range(n):
        for j in range(n):
            if i + 1 < n:
                edges.append((i * n + j, (i + 1) * n + j))
            if j + 1 < n:
                edges.append((i * n + j, i * n + j + 1))
    dag = Dag.from_edges(n * n, edges)

    # each cell "computes" by combining its predecessors (dynamic programming)
    value = np.zeros(n * n)

    def compute(node: int, t: float) -> None:
        i, j = divmod(node, n)
        north = value[(i - 1) * n + j] if i else 0.0
        west = value[i * n + (j - 1)] if j else 0.0
        value[node] = max(north, west) + 1.0

    kernel = DagKernel(dag, compute_fn=compute, cost_fn=lambda v: 6)
    result = run(kernel, PERSIST_WARP)
    assert kernel.all_executed()
    assert kernel.respects_dependencies()
    # the DP recurrence gives value[(i,j)] = i + j + 1 when dependencies held
    expect = np.array([[i + j + 1 for j in range(n)] for i in range(n)]).ravel()
    assert np.array_equal(value, expect), "a dependency was violated!"

    print(f"{n}x{n} wavefront: {dag.num_nodes} tasks, {len(edges)} dependency edges")
    print(
        f"executed in {result.elapsed_ns / 1e3:.1f} us simulated on "
        f"{result.worker_slots} workers; critical path = {2 * n - 1} waves"
    )
    print("every join fired exactly once; all dependencies respected\n")


if __name__ == "__main__":
    sssp_demo()
    wavefront_demo()
