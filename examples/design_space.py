#!/usr/bin/env python3
"""Exploring the Atos design space (the paper's Section 3 / Figure 4).

Four knobs define an Atos configuration: kernel strategy, worker size,
fetch size, and queue count.  This example sweeps worker x fetch for BFS
on a scale-free and a mesh graph (Figure 4), then applies the paper's
Section 7 selection guidelines to each dataset and checks that the
recommended configuration actually wins.

Run:  python examples/design_space.py
"""

import numpy as np

from repro import Lab
from repro.analysis.challenges import classify_challenges

WORKERS = (32, 64, 128, 256)
FETCHES = (1, 4, 16, 64)


def recommend(lab: Lab, dataset: str) -> str:
    """Paper Section 7: pick a variant from the challenge classification."""
    report = classify_challenges(
        lab.graph(dataset), lab.run("bfs", dataset, "BSP"), spec=lab.spec
    )
    if report.small_frontier:
        # guideline (2): small frontier -> persistent kernel;
        # guideline (3): plus data-parallel LB if any imbalance remains
        return "persist-CTA"
    if report.load_imbalance:
        # guideline (3): imbalance -> combine task- and data-parallel LB
        return "persist-CTA"
    return "discrete-CTA"


def main() -> None:
    lab = Lab(size="small")

    for dataset in ("soc-LiveJournal1", "road_usa"):
        print(lab.format_sweep("bfs", dataset, worker_sizes=WORKERS, fetch_sizes=FETCHES))
        grid = lab.sweep("bfs", dataset, worker_sizes=WORKERS, fetch_sizes=FETCHES)
        best = np.unravel_index(np.nanargmin(grid), grid.shape)
        print(
            f"optimum: worker={WORKERS[best[0]]}, fetch={FETCHES[best[1]]} "
            f"at {np.nanmin(grid):.3f} ms\n"
        )

    print("Section 7 guideline check (BFS):")
    for dataset in ("soc-LiveJournal1", "road_usa", "roadNet-CA"):
        pick = recommend(lab, dataset)
        row = lab.table1("bfs", (dataset,))[0]
        ranked = sorted(row.speedups.items(), key=lambda kv: -kv[1])
        verdict = "best" if ranked[0][0] == pick else f"ranked behind {ranked[0][0]}"
        print(
            f"  {dataset:18s} -> recommend {pick:12s} "
            f"(x{row.speedups[pick]:.2f} vs BSP; {verdict})"
        )


if __name__ == "__main__":
    main()
