"""User-facing façade mirroring the paper's Listing 3 API.

The CUDA framework exposes::

    Queues::init(capacity, num_queues, iteration)
    Queues::launchThread(ifPersist, numBlock, numThread, shmem, f1, f2, ...)
    Queues::launchWarp(...)
    Queues::launchCTA<FETCH_SIZE>(...)

:class:`Atos` is the Python equivalent: construct it with queue parameters,
then launch an application kernel at thread/warp/CTA granularity.  Each
``launch_*`` builds the corresponding :class:`~repro.core.config.AtosConfig`
and drives the scheduler, returning the :class:`~repro.core.scheduler.RunResult`.

``f1`` is the application's :class:`~repro.core.kernel.TaskKernel` (the
pop-processing function); the CUDA API's ``f2`` (what a worker runs when a
pop fails) corresponds to the kernel's ``final_check`` hook plus the
scheduler's built-in park/wake behaviour.
"""

from __future__ import annotations

from repro.core.config import AtosConfig, KernelStrategy
from repro.core.kernel import TaskKernel
from repro.core.scheduler import RunResult, run
from repro.obs.events import EventSink
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = ["Atos"]

_NAME_PREFIX = {
    KernelStrategy.PERSISTENT: "persist",
    KernelStrategy.DISCRETE: "discrete",
    KernelStrategy.HYBRID: "hybrid",
}


def _resolve_strategy(
    persistent: bool, strategy: str | KernelStrategy | None
) -> KernelStrategy:
    """``strategy`` (name or enum) wins over the legacy ``persistent`` flag."""
    if strategy is None:
        return KernelStrategy.PERSISTENT if persistent else KernelStrategy.DISCRETE
    if isinstance(strategy, str):
        strategy = KernelStrategy(strategy)
    if strategy is KernelStrategy.BSP:
        raise ValueError(
            "BSP executes at application level; use repro.apps.common.run_app"
        )
    return strategy


class Atos:
    """Entry point for launching task kernels on the simulated GPU."""

    def __init__(
        self,
        *,
        capacity: int = 1 << 62,
        num_queues: int = 1,
        spec: GpuSpec = V100_SPEC,
        max_tasks: int = 20_000_000,
        sink: EventSink | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        self.capacity = capacity
        self.num_queues = num_queues
        self.spec = spec
        self.max_tasks = max_tasks
        #: observability sink attached to every launch (None = tracing off)
        self.sink = sink
        #: result of the most recent launch
        self.last_result: RunResult | None = None

    # ------------------------------------------------------------------
    def _launch(self, kernel: TaskKernel, config: AtosConfig) -> RunResult:
        result = run(
            kernel, config, spec=self.spec, max_tasks=self.max_tasks, sink=self.sink
        )
        self.last_result = result
        return result

    def launch_thread(
        self,
        kernel: TaskKernel,
        *,
        persistent: bool = True,
        strategy: str | KernelStrategy | None = None,
        fetch_size: int = 1,
        registers_per_thread: int = 32,
    ) -> RunResult:
        """Thread-sized workers (one GPU thread per task)."""
        strat = _resolve_strategy(persistent, strategy)
        config = AtosConfig(
            strategy=strat,
            worker_threads=1,
            fetch_size=fetch_size,
            internal_lb=False,
            registers_per_thread=registers_per_thread,
            num_queues=self.num_queues,
            queue_capacity=self.capacity,
            name=f"{_NAME_PREFIX[strat]}-thread-{fetch_size}",
        )
        return self._launch(kernel, config)

    def launch_warp(
        self,
        kernel: TaskKernel,
        *,
        persistent: bool = True,
        strategy: str | KernelStrategy | None = None,
        fetch_size: int = 1,
        registers_per_thread: int = 56,
        shared_mem_per_cta: int = 0,
    ) -> RunResult:
        """Warp-sized workers (32 threads per task; the paper's persist-32)."""
        strat = _resolve_strategy(persistent, strategy)
        config = AtosConfig(
            strategy=strat,
            worker_threads=32,
            fetch_size=fetch_size,
            internal_lb=False,
            registers_per_thread=registers_per_thread,
            shared_mem_per_cta=shared_mem_per_cta,
            num_queues=self.num_queues,
            queue_capacity=self.capacity,
            name=f"{_NAME_PREFIX[strat]}-warp-{fetch_size}",
        )
        return self._launch(kernel, config)

    def launch_cta(
        self,
        kernel: TaskKernel,
        *,
        fetch_size: int,
        num_threads: int = 256,
        persistent: bool = True,
        strategy: str | KernelStrategy | None = None,
        registers_per_thread: int = 56,
        shared_mem_per_cta: int = 0,
    ) -> RunResult:
        """CTA-sized workers with the in-worker load-balancing search.

        ``fetch_size`` is the template parameter from Listing 3: how many
        work items one pop claims; ``num_threads`` sets the CTA width and
        thereby the task/data parallelism trade-off (Section 3.3).
        """
        strat = _resolve_strategy(persistent, strategy)
        config = AtosConfig(
            strategy=strat,
            worker_threads=num_threads,
            fetch_size=fetch_size,
            internal_lb=True,
            registers_per_thread=registers_per_thread,
            shared_mem_per_cta=shared_mem_per_cta,
            num_queues=self.num_queues,
            queue_capacity=self.capacity,
            name=f"{_NAME_PREFIX[strat]}-{num_threads}-{fetch_size}",
        )
        return self._launch(kernel, config)
