"""The ``EngineBackend`` registry: interchangeable event-loop inner loops.

:class:`~repro.core.engine.ExecutionEngine` owns the simulated hardware
and the run accumulators; a *backend* owns the inner loop that drains the
engine's event heap.  The split mirrors :mod:`repro.core.policy` — a
policy decides *what* to run (launches, barriers, generations), a backend
decides *how* the resulting READ/DONE events are processed — and it is
registered the same way, so alternative loops are selectable per run
(``AtosConfig.backend``, ``run_app(backend=)``, CLI ``--backend``).

Two implementations ship:

* ``"event"`` — the classic loop: one Python-level ``heappop`` per event.
  This is the reference semantics, extracted verbatim from the engine.
* ``"batched"`` — groups every READ event that falls inside the same
  simulated read-window into one back-to-back pass over the flat
  6-tuple events: the window prefix is extracted once, the per-event
  dispatch/bookkeeping is hoisted out of it, and the window's DONE
  events are bulk-rebuilt into the heap (``heapify``) instead of sifted
  in one ``heappush`` at a time.  Discrete waves pop dozens of tasks
  into the same window, so the loop overhead amortizes; persistent mode
  (window length ~1) degrades gracefully to the event loop's cost.

Every backend must be *bit-identical* to ``"event"`` on the golden
obs-digest matrix (``tests/test_equivalence.py`` parametrizes over
backends): same event order, same timestamps, same tie-breaks, same
counters.  The window rule that makes batching safe is derived from the
heap order itself — a READ at time ``t`` may be processed before a DONE
at time ``x`` scheduled by an earlier READ iff ``t <= x``, because the
READ's heap sequence number is always older than the DONE's.

Events are flat 6-tuples ``(t, seq, tag, worker, items, x)`` where ``x``
is the finish time for READ events and the on-read payload for DONE
events; ``seq`` is unique, so heap comparisons never reach the later
fields.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Callable, ClassVar

from repro.obs.events import TaskComplete, TaskPop, TaskRead

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import ExecutionEngine

__all__ = [
    "SchedulerError",
    "EngineBackend",
    "EventBackend",
    "BatchedBackend",
    "BACKENDS",
    "register_backend",
    "backend_for",
]

_READ = 0
_DONE = 1


class SchedulerError(RuntimeError):
    """Raised when a run exceeds its task budget (diverging application)."""


class EngineBackend(ABC):
    """One strategy for draining an :class:`ExecutionEngine`'s event heap.

    Backends are stateless — all run state lives on the engine — so one
    shared instance per registered name serves every engine.
    """

    #: registry key (``AtosConfig.backend`` value)
    name: ClassVar[str] = "abstract"

    @abstractmethod
    def drain(
        self,
        eng: "ExecutionEngine",
        *,
        push_to_queue: bool,
        stop_when: Callable[[], bool] | None = None,
    ) -> float:
        """Process READ/DONE events until the heap empties; return end time.

        Must honor the engine's pop-stagger, perturb-hook and ``stop_when``
        semantics exactly as :class:`EventBackend` does — the golden-digest
        equivalence suite holds every backend to the same event stream.
        """


class EventBackend(EngineBackend):
    """The reference loop: one ``heappop`` per event.

    This is the pre-registry ``ExecutionEngine.drain_events`` body moved
    behind the interface, byte-for-byte — the hoisted locals, the inlined
    single-queue pop and the inlined stagger hash are all load-bearing for
    both wall-clock and digest identity.
    """

    name: ClassVar[str] = "event"

    def drain(
        self,
        eng: "ExecutionEngine",
        *,
        push_to_queue: bool,
        stop_when: Callable[[], bool] | None = None,
    ) -> float:
        loop = eng.loop
        # Hot loop: the heap is accessed directly (bypassing EventLoop.pop)
        # and every per-event attribute chase is hoisted into a local.
        # ``loop.now`` is kept in step so schedule()'s monotonicity check
        # still sees the true simulation time.
        heap = loop._heap
        end = loop.now
        stopped = False
        kernel = eng.kernel
        on_read = kernel.on_read
        on_complete = kernel.on_complete
        work_est = kernel.work_estimate
        trace = eng.trace
        tr_times = trace.times.append
        tr_items = trace.items.append
        tr_work = trace.work.append
        sink = eng.sink
        pending = eng.pending_pushes
        idle_append = eng.idle.append
        # mode knobs are stable for the duration of one drain (policies
        # only call set_mode and new_queue between drains), so the stagger
        # hash, the cost closure and the single-queue pop all inline
        perturb = eng.perturb
        amp = eng.jitter_amp
        q = eng._singleq
        if q is not None:
            qstats = q.stats
            q_atomic = q.atomic_ns
        fetch = eng._fetch
        cost_fn = eng._cost_fn
        dur_jit = eng._dur_jit
        read_lead = eng.read_lead_ns
        max_tasks = eng.max_tasks
        while heap:
            t, _, tag, worker, items, x = heappop(heap)
            loop.now = t
            if tag == _READ:
                if sink is not None:
                    sink.emit(TaskRead(t=t, worker=worker, items=int(items.size)))
                payload = on_read(items, t)
                # inlined loop.schedule: finish (x) >= t_read == t always
                s = loop._seq
                heappush(heap, (x, s, _DONE, worker, items, payload))
                loop._seq = s + 1
                continue
            eng.in_flight -= 1
            result = on_complete(items, x, t)
            if t > end:
                end = t
            retired = result.items_retired
            work = result.work_units
            new_items = result.new_items
            eng.items_retired += retired
            eng.work_units += work
            tr_times(t)  # inlined ThroughputTrace.record
            tr_items(retired)
            tr_work(work)
            if sink is not None:
                sink.emit(
                    TaskComplete(
                        t=t,
                        worker=worker,
                        items=int(items.size),
                        retired=retired,
                        pushed=int(new_items.size),
                        work=work,
                    )
                )
            if new_items.size:
                if push_to_queue:
                    qpush = eng._qpush
                    if qpush is not None:
                        qpush(new_items, t)
                    else:
                        eng.queue.push(new_items, t, home=worker)
                else:
                    pending.append(new_items)
            if stop_when is not None and not stopped and stop_when():
                stopped = True
            if stopped:
                idle_append(worker)
                continue
            pop_seq = eng.pop_seq
            if perturb is None:  # inlined pop_stagger fast path
                if amp <= 0.0:
                    tpop = t
                else:
                    h = (worker * 2654435761 + pop_seq * 40503 + 12345) & 0xFFFF
                    tpop = t + (h / 65536.0) * amp
            else:
                tpop = t + eng.pop_stagger(worker, pop_seq)
            if q is not None:
                # inlined try_pop (single queue, no sink): one pop attempt
                # per completion is the hottest edge in the whole simulator,
                # so the call chain engine.try_pop -> mpmc.pop collapses
                # into the loop body.  Mirrors both functions exactly,
                # stats included, to keep RunResult counters bit-identical.
                free = q._pop_atomic_free
                t_start = tpop if tpop > free else free
                qstats.contention_wait_ns += t_start - tpop
                t_acq = q._pop_atomic_free = t_start + q_atomic
                head = q._head
                n = q._tail - head
                if n > fetch:
                    n = fetch
                if n == 0:
                    qstats.empty_pops += 1
                    idle_append(worker)
                else:
                    pitems = q._buf[head : head + n].copy()
                    q._head = head = head + n
                    qstats.pops += 1
                    qstats.items_popped += n
                    if head == q._tail:
                        q._head = q._tail = 0
                    pop_seq += 1
                    eng.pop_seq = pop_seq
                    total = eng.total_tasks = eng.total_tasks + 1
                    if sink is not None:
                        sink.emit(TaskPop(t=t_acq, worker=worker, items=n))
                    if total > max_tasks:
                        raise SchedulerError(
                            f"run exceeded max_tasks={max_tasks}; "
                            "the application appears not to converge"
                        )
                    edge_work, max_degree = work_est(pitems)
                    h = (worker * 2654435761 + (pop_seq + 7919) * 40503 + 12345) & 0xFFFF
                    finish = cost_fn(
                        t_acq, n, edge_work, max_degree, 1.0 + dur_jit * (h / 65536.0)
                    )
                    t_read = finish - read_lead
                    if t_read < t_acq:
                        t_read = t_acq
                    s = loop._seq
                    heappush(heap, (t_read, s, _READ, worker, pitems, finish))
                    loop._seq = s + 1
                    eng.in_flight += 1
            else:
                eng.try_pop(worker, tpop)
            if eng.idle:  # inlined wake_idle guard: skip the call when nobody is parked
                eng.wake_idle(t)
        assert eng.in_flight == 0, "event loop drained with tasks in flight"
        return end


class BatchedBackend(EngineBackend):
    """Read-window batching: process each window of READs back to back.

    **Window rule.**  In the reference loop, a READ event ``r_j`` at time
    ``t_j`` is processed before the DONE of an earlier READ ``r_i``
    (scheduled for ``x_i``) iff ``(t_j, seq_j) < (x_i, seq_done_i)`` in
    heap order.  ``seq_j < seq_done_i`` always holds — ``r_j`` was in the
    heap before ``DONE_i`` was created — so the condition reduces to
    ``t_j <= min(x_i)`` over the READs already in the window.  Any prefix
    of READ heap-tops satisfying it can therefore be processed back to
    back with no observable difference: the TaskRead emissions, the
    ``on_read`` calls and the DONE sequence numbers all land in exactly
    the order the reference loop produces.

    **Batch pass.**  The prefix is extracted by ``heappop`` (the heap is
    already consumed in ``(t, seq)`` order, so a pre-existing DONE at the
    top or a READ past the running min-finish simply terminates the
    window — never an O(heap) sort, so singleton windows cost what the
    event loop costs).  The window body then runs with the per-event
    dispatch hoisted out: one ``loop.now`` store per window instead of
    per event on the sink-less hot path, and when the window drained the
    whole heap (a discrete wave), its DONE events are rebuilt in one
    C-level ``heapify`` instead of one sift per push.

    DONE events are processed exactly as in :class:`EventBackend`,
    including the inlined single-queue pop — completions mutate the cost
    model's bandwidth server sequentially, so there is nothing to batch
    without changing float summation order.
    """

    name: ClassVar[str] = "batched"

    def drain(
        self,
        eng: "ExecutionEngine",
        *,
        push_to_queue: bool,
        stop_when: Callable[[], bool] | None = None,
    ) -> float:
        loop = eng.loop
        heap = loop._heap
        end = loop.now
        stopped = False
        kernel = eng.kernel
        on_read = kernel.on_read
        on_complete = kernel.on_complete
        work_est = kernel.work_estimate
        trace = eng.trace
        tr_times = trace.times.append
        tr_items = trace.items.append
        tr_work = trace.work.append
        sink = eng.sink
        pending = eng.pending_pushes
        idle_append = eng.idle.append
        perturb = eng.perturb
        amp = eng.jitter_amp
        q = eng._singleq
        if q is not None:
            qstats = q.stats
            q_atomic = q.atomic_ns
        fetch = eng._fetch
        cost_fn = eng._cost_fn
        dur_jit = eng._dur_jit
        read_lead = eng.read_lead_ns
        max_tasks = eng.max_tasks
        while heap:
            if heap[0][2] == _READ:
                # -- read-window batching -------------------------------
                # heappop the longest READ prefix whose times stay within
                # the running min-finish window; a DONE at the top or a
                # READ past the window terminates it.
                ev = heappop(heap)
                min_finish = ev[5]
                if not heap or heap[0][2] != _READ or heap[0][0] > min_finish:
                    # singleton window (persistent-mode staggered pops):
                    # skip the batch machinery — this path must cost what
                    # the event loop costs
                    t, _, _, worker, items, _ = ev
                    loop.now = t
                    if sink is not None:
                        sink.emit(TaskRead(t=t, worker=worker, items=int(items.size)))
                    payload = on_read(items, t)
                    s = loop._seq
                    heappush(heap, (min_finish, s, _DONE, worker, items, payload))
                    loop._seq = s + 1
                    continue
                batch = [ev]
                bapp = batch.append
                while heap:
                    nxt = heap[0]
                    if nxt[2] != _READ or nxt[0] > min_finish:
                        break
                    bapp(heappop(heap))
                    f = nxt[5]
                    if f < min_finish:
                        min_finish = f
                s = loop._seq
                if sink is not None:
                    for t, _, _, worker, items, finish in batch:
                        loop.now = t
                        sink.emit(TaskRead(t=t, worker=worker, items=int(items.size)))
                        payload = on_read(items, t)
                        heappush(heap, (finish, s, _DONE, worker, items, payload))
                        s += 1
                else:
                    # intermediate loop.now stores are unobservable without
                    # a sink (nothing reads the clock inside the window),
                    # so one store per window suffices
                    loop.now = batch[-1][0]
                    if len(batch) > len(heap):
                        # the window dominates what's left (a discrete
                        # wave): build every DONE, then restore the heap
                        # property in one C pass instead of a sift per push
                        heap.extend(
                            (finish, s + i, _DONE, worker, items, on_read(items, t))
                            for i, (t, _, _, worker, items, finish) in enumerate(batch)
                        )
                        heapify(heap)
                        s += len(batch)
                    else:
                        for t, _, _, worker, items, finish in batch:
                            heappush(
                                heap,
                                (finish, s, _DONE, worker, items, on_read(items, t)),
                            )
                            s += 1
                loop._seq = s
                continue
            # -- DONE processing: identical to the event backend --------
            t, _, tag, worker, items, x = heappop(heap)
            loop.now = t
            eng.in_flight -= 1
            result = on_complete(items, x, t)
            if t > end:
                end = t
            retired = result.items_retired
            work = result.work_units
            new_items = result.new_items
            eng.items_retired += retired
            eng.work_units += work
            tr_times(t)
            tr_items(retired)
            tr_work(work)
            if sink is not None:
                sink.emit(
                    TaskComplete(
                        t=t,
                        worker=worker,
                        items=int(items.size),
                        retired=retired,
                        pushed=int(new_items.size),
                        work=work,
                    )
                )
            if new_items.size:
                if push_to_queue:
                    qpush = eng._qpush
                    if qpush is not None:
                        qpush(new_items, t)
                    else:
                        eng.queue.push(new_items, t, home=worker)
                else:
                    pending.append(new_items)
            if stop_when is not None and not stopped and stop_when():
                stopped = True
            if stopped:
                idle_append(worker)
                continue
            pop_seq = eng.pop_seq
            if perturb is None:
                if amp <= 0.0:
                    tpop = t
                else:
                    h = (worker * 2654435761 + pop_seq * 40503 + 12345) & 0xFFFF
                    tpop = t + (h / 65536.0) * amp
            else:
                tpop = t + eng.pop_stagger(worker, pop_seq)
            if q is not None:
                free = q._pop_atomic_free
                t_start = tpop if tpop > free else free
                qstats.contention_wait_ns += t_start - tpop
                t_acq = q._pop_atomic_free = t_start + q_atomic
                head = q._head
                n = q._tail - head
                if n > fetch:
                    n = fetch
                if n == 0:
                    qstats.empty_pops += 1
                    idle_append(worker)
                else:
                    pitems = q._buf[head : head + n].copy()
                    q._head = head = head + n
                    qstats.pops += 1
                    qstats.items_popped += n
                    if head == q._tail:
                        q._head = q._tail = 0
                    pop_seq += 1
                    eng.pop_seq = pop_seq
                    total = eng.total_tasks = eng.total_tasks + 1
                    if sink is not None:
                        sink.emit(TaskPop(t=t_acq, worker=worker, items=n))
                    if total > max_tasks:
                        raise SchedulerError(
                            f"run exceeded max_tasks={max_tasks}; "
                            "the application appears not to converge"
                        )
                    edge_work, max_degree = work_est(pitems)
                    h = (worker * 2654435761 + (pop_seq + 7919) * 40503 + 12345) & 0xFFFF
                    finish = cost_fn(
                        t_acq, n, edge_work, max_degree, 1.0 + dur_jit * (h / 65536.0)
                    )
                    t_read = finish - read_lead
                    if t_read < t_acq:
                        t_read = t_acq
                    s = loop._seq
                    heappush(heap, (t_read, s, _READ, worker, pitems, finish))
                    loop._seq = s + 1
                    eng.in_flight += 1
            else:
                eng.try_pop(worker, tpop)
            if eng.idle:
                eng.wake_idle(t)
        assert eng.in_flight == 0, "event loop drained with tasks in flight"
        return end


# ---------------------------------------------------------------------------
# Registry (mirrors repro.core.policy.POLICIES)
# ---------------------------------------------------------------------------

BACKENDS: dict[str, EngineBackend] = {}


def register_backend(backend: EngineBackend) -> EngineBackend:
    """Register a backend instance under its ``name`` (latest wins)."""
    BACKENDS[backend.name] = backend
    return backend


register_backend(EventBackend())
register_backend(BatchedBackend())


def backend_for(name: str) -> EngineBackend:
    """Resolve a backend by registry name."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; known: {sorted(BACKENDS)}"
        ) from None
