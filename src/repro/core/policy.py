"""Execution policies: pluggable kernel strategies over one engine.

The paper's central result (Section 6.5) is that neither kernel strategy
wins everywhere — persistent kernels dominate small-frontier/high-diameter
regimes, discrete kernels win wide regular frontiers.  This module makes
the strategy axis *pluggable*: an :class:`ExecutionPolicy` owns the
control flow of a run (seed → issue → drain → advance/quiesce) while the
shared :class:`~repro.core.engine.ExecutionEngine` owns the mechanism
(pops, cost model, counters), so every policy — including the BSP
baseline at app level — is compared on one execution substrate.

Policies are registered per :class:`~repro.core.config.KernelStrategy`
and resolved from an :class:`~repro.core.config.AtosConfig`; adding a new
strategy is one subclass plus a :func:`register_policy` call (see
``docs/architecture.md``).

Shipped policies:

* :class:`PersistentPolicy` — one launch, workers loop to quiescence;
* :class:`DiscretePolicy`   — one launch + global barrier per queue
  generation, strict queue order within a generation;
* :class:`HybridPolicy`     — the adaptive extension: discrete while the
  frontier is wide, a persistent phase once it falls below a low
  watermark, and back to discrete (with hysteresis) if the queue regrows
  past the high watermark.  Each crossover emits a
  :class:`~repro.obs.events.PolicySwitch` event;
* :class:`BspPolicy`        — marker for the frontier-synchronous
  baseline, which runs at application level (each app's frontier loop
  drives :class:`~repro.bsp.engine.BspTimeline`); the
  :mod:`repro.apps.common` dispatch routes it accordingly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, ClassVar

import numpy as np

from repro.core.config import AtosConfig, KernelStrategy
from repro.core.engine import ExecutionEngine, RunResult, SchedulerError
from repro.core.kernel import TaskKernel
from repro.obs.events import (
    Barrier,
    EventSink,
    GenerationEnd,
    GenerationStart,
    KernelLaunch,
    PolicySwitch,
)
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = [
    "PolicyOutcome",
    "ExecutionPolicy",
    "PersistentPolicy",
    "DiscretePolicy",
    "HybridPolicy",
    "BspPolicy",
    "POLICIES",
    "register_policy",
    "policy_for",
    "run_policy",
]

#: auto low watermark: one launch amortizes over this many full waves of
#: work (launch ≈ 5 µs vs ≈ 150–300 ns of queue+issue latency per wave, so
#: fewer waves than this and the discrete strategy is launch-bound)
HYBRID_AUTO_WAVES = 32
#: auto high watermark as a multiple of the low one (hysteresis band)
HYBRID_AUTO_HYSTERESIS = 4


@dataclass(frozen=True)
class PolicyOutcome:
    """What a policy's control flow determined (the engine holds the rest)."""

    elapsed_ns: float
    kernel_launches: int
    generations: int
    policy_switches: int = 0


class ExecutionPolicy(abc.ABC):
    """Control flow of one simulated run over an :class:`ExecutionEngine`.

    The lifecycle every engine-level policy composes:

    1. **seed** — create a worklist (`eng.new_queue`), push initial work,
       give workers their first pops (`eng.seed_workers` / `eng.wake_idle`);
    2. **issue/drain** — `eng.drain_events` processes READ/DONE events,
       re-issuing pops per the engine's current mode, until quiescence
       (or a ``stop_when`` interrupt);
    3. **advance/quiesce** — consult the kernel's ``final_check`` /
       ``generation_check`` hooks, start the next generation or phase, or
       finish.

    ``execute`` returns a :class:`PolicyOutcome`; counters (tasks, work,
    queue stats) accumulate inside the engine and are materialised by
    :meth:`ExecutionEngine.build_result`.
    """

    #: strategy tag, matches ``KernelStrategy.value`` for registered policies
    name: ClassVar[str] = "abstract"
    #: True for policies that run at application level (no ExecutionEngine);
    #: the apps dispatch layer routes these to the app's frontier function
    app_level: ClassVar[bool] = False

    @abc.abstractmethod
    def execute(self, eng: ExecutionEngine) -> PolicyOutcome:
        """Drive ``eng`` from seed to quiescence; return the outcome."""


# ---------------------------------------------------------------------------
# Shared building block: one discrete queue generation
# ---------------------------------------------------------------------------

def _discrete_generation(
    eng: ExecutionEngine,
    current: np.ndarray,
    t: float,
    generation: int,
) -> tuple[float, np.ndarray]:
    """Launch, drain and barrier one queue generation; return ``(t, next)``.

    Within a generation, tasks issue to workers in strict queue order with
    no scheduler jitter — CPU-launched kernels run in launch order
    (Section 6.3) — and pushes go to the *next* generation's queue.
    """
    eng.set_mode(persistent=False)
    spec, config, sink = eng.spec, eng.config, eng.sink
    if sink is not None:
        sink.emit(KernelLaunch(t=t, duration_ns=spec.kernel_launch_ns))
    t += spec.kernel_launch_ns
    if sink is not None:
        sink.emit(GenerationStart(t=t, generation=generation, items=int(current.size)))
    queue = eng.new_queue(f"{config.name}-gen{generation}")
    queue.push(current, t, home=0)
    # a fresh event clock per generation would break the shared
    # bandwidth server, so the loop keeps global time; workers all
    # start at the generation launch instant
    eng.idle = []
    for w in range(eng.slots):
        eng.idle.append(w)
    # issue strictly in order: lowest worker ids pop first, same time
    eng.idle.reverse()  # wake_idle pops from the end
    eng.wake_idle(t)
    gen_end = eng.drain_events(push_to_queue=False)
    if sink is not None:
        sink.emit(GenerationEnd(t=gen_end, generation=generation))
        sink.emit(Barrier(t=max(t, gen_end), duration_ns=spec.barrier_ns))
    t = max(t, gen_end) + spec.barrier_ns
    nxt = (
        np.concatenate(eng.pending_pushes)
        if eng.pending_pushes
        else np.empty(0, dtype=np.int64)
    )
    eng.pending_pushes = []
    # Workers whose pops fail at the end of a generation run the
    # application's f2 function (paper Listing 3) — for PageRank that is
    # the residual check scan.  Kernels express it via the optional
    # ``generation_check`` hook.
    gen_hook = getattr(eng.kernel, "generation_check", None)
    if gen_hook is not None:
        extra = gen_hook(t)
        if extra.size:
            nxt = np.concatenate([nxt, extra])
    return t, nxt


# ---------------------------------------------------------------------------
# Persistent policy
# ---------------------------------------------------------------------------

class PersistentPolicy(ExecutionPolicy):
    """Single launch; workers loop on the shared queue until quiescence."""

    name = "persistent"

    def execute(self, eng: ExecutionEngine) -> PolicyOutcome:
        eng.set_mode(persistent=True)
        spec, config, kernel = eng.spec, eng.config, eng.kernel
        queue = eng.new_queue(f"{config.name}-wl")
        queue.push(kernel.initial_items(), 0.0, home=0)

        t0 = spec.kernel_launch_ns
        if eng.sink is not None:
            eng.sink.emit(KernelLaunch(t=0.0, duration_ns=t0))
        eng.seed_workers(t0)
        end = t0
        while True:
            end = max(end, eng.drain_events(push_to_queue=True))
            extra = kernel.final_check(end)
            if extra.size == 0:
                break
            queue.push(extra, end, home=0)
            eng.wake_idle(end)
            if not eng.loop:
                break
        return PolicyOutcome(elapsed_ns=end, kernel_launches=1, generations=1)


# ---------------------------------------------------------------------------
# Discrete policy
# ---------------------------------------------------------------------------

class DiscretePolicy(ExecutionPolicy):
    """One kernel per queue generation, global barrier in between."""

    name = "discrete"

    def execute(self, eng: ExecutionEngine) -> PolicyOutcome:
        kernel = eng.kernel
        t = 0.0
        launches = 0
        generations = 0
        current = kernel.initial_items()

        while True:
            if current.size == 0:
                extra = kernel.final_check(t)
                if extra.size == 0:
                    break
                current = extra
            generations += 1
            launches += 1
            t, current = _discrete_generation(eng, current, t, generations)
        return PolicyOutcome(elapsed_ns=t, kernel_launches=launches, generations=generations)


# ---------------------------------------------------------------------------
# Hybrid adaptive policy
# ---------------------------------------------------------------------------

class HybridPolicy(ExecutionPolicy):
    """Adaptive strategy: discrete while wide, persistent once narrow.

    The run starts in discrete mode.  At every generation boundary the
    live frontier is compared against the low watermark: below it, the
    next phase is a *persistent* phase — one launch, workers looping to
    quiescence — because a narrow frontier cannot amortize a launch per
    generation (Section 6.5's small-frontier regime).  During a
    persistent phase the queue is watched against the high watermark:
    if follow-on work regrows past it, the phase is interrupted (in-flight
    tasks retire, a device-wide barrier returns control to the host) and
    the remaining queue becomes the next discrete generation.  The
    hysteresis band (high ≥ low) prevents oscillation at the threshold.

    Watermarks come from ``AtosConfig.hybrid_low_watermark`` /
    ``hybrid_high_watermark``; zero means auto —
    ``worker_slots × fetch_size × HYBRID_AUTO_WAVES`` for the low mark and
    ``HYBRID_AUTO_HYSTERESIS ×`` that for the high one.

    Every crossover emits :class:`~repro.obs.events.PolicySwitch`.
    """

    name = "hybrid"

    def execute(self, eng: ExecutionEngine) -> PolicyOutcome:
        config, kernel = eng.config, eng.kernel
        low = config.hybrid_low_watermark
        if low == 0:
            low = eng.slots * config.fetch_size * HYBRID_AUTO_WAVES
        high = config.hybrid_high_watermark or HYBRID_AUTO_HYSTERESIS * low
        high = max(high, low)

        t = 0.0
        launches = 0
        generations = 0
        switches = 0
        current = kernel.initial_items()

        while True:
            if current.size == 0:
                extra = kernel.final_check(t)
                if extra.size == 0:
                    break
                current = extra
            if current.size < low:
                # narrow frontier: run a persistent phase (counts one switch
                # because the strategy's resting mode is discrete)
                switches += 1
                generations += 1
                launches += 1
                if eng.sink is not None:
                    eng.sink.emit(
                        PolicySwitch(
                            t=t,
                            generation=generations,
                            items=int(current.size),
                            policy="persistent",
                        )
                    )
                t, done = self._persistent_phase(eng, current, t, high, generations)
                if done:
                    break
                # interrupted at the high watermark: back to discrete
                switches += 1
                current = eng.queue.drain()
                if eng.sink is not None:
                    eng.sink.emit(
                        PolicySwitch(
                            t=t,
                            generation=generations + 1,
                            items=int(current.size),
                            policy="discrete",
                        )
                    )
            else:
                generations += 1
                launches += 1
                t, current = _discrete_generation(eng, current, t, generations)
        return PolicyOutcome(
            elapsed_ns=t,
            kernel_launches=launches,
            generations=generations,
            policy_switches=switches,
        )

    @staticmethod
    def _persistent_phase(
        eng: ExecutionEngine,
        items: np.ndarray,
        t: float,
        high: int,
        generation: int,
    ) -> tuple[float, bool]:
        """One persistent phase; returns ``(t, done)``.

        ``done=False`` means the phase hit the high watermark: the engine's
        queue still holds the overflow (caller drains it into the next
        discrete generation) and ``t`` includes the device-wide barrier
        that returning control to the host costs.
        """
        spec, kernel = eng.spec, eng.kernel
        eng.set_mode(persistent=True)
        if eng.sink is not None:
            eng.sink.emit(KernelLaunch(t=t, duration_ns=spec.kernel_launch_ns))
        t0 = t + spec.kernel_launch_ns
        queue = eng.new_queue(f"{eng.config.name}-p{generation}")
        queue.push(items, t0, home=0)
        eng.idle = []
        eng.seed_workers(t0)
        end = t0
        while True:
            end = max(
                end,
                eng.drain_events(
                    push_to_queue=True, stop_when=lambda: queue.size > high
                ),
            )
            if queue.size > high:
                if eng.sink is not None:
                    eng.sink.emit(Barrier(t=end, duration_ns=spec.barrier_ns))
                return end + spec.barrier_ns, False
            extra = kernel.final_check(end)
            if extra.size == 0:
                return end, True
            queue.push(extra, end, home=0)
            eng.wake_idle(end)
            if not eng.loop:
                return end, True


# ---------------------------------------------------------------------------
# BSP marker policy
# ---------------------------------------------------------------------------

class BspPolicy(ExecutionPolicy):
    """Frontier-synchronous baseline — runs at application level.

    BSP has no task queue for the engine to drive: each application's
    frontier loop calls its own vectorised kernel body and advances a
    :class:`~repro.bsp.engine.BspTimeline`.  This class exists so the
    registry covers every strategy and the :mod:`repro.apps.common`
    dispatch can route uniformly on ``policy_for(config).app_level``.
    """

    name = "bsp"
    app_level = True

    def execute(self, eng: ExecutionEngine) -> PolicyOutcome:
        raise SchedulerError(
            "BSP is an app-level policy; run it through repro.apps.common.run_app"
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

POLICIES: dict[KernelStrategy, type[ExecutionPolicy]] = {}


def register_policy(
    strategy: KernelStrategy,
) -> Callable[[type[ExecutionPolicy]], type[ExecutionPolicy]]:
    """Class decorator: register a policy for a kernel strategy."""

    def deco(cls: type[ExecutionPolicy]) -> type[ExecutionPolicy]:
        POLICIES[strategy] = cls
        return cls

    return deco


register_policy(KernelStrategy.PERSISTENT)(PersistentPolicy)
register_policy(KernelStrategy.DISCRETE)(DiscretePolicy)
register_policy(KernelStrategy.HYBRID)(HybridPolicy)
register_policy(KernelStrategy.BSP)(BspPolicy)

# the distributed policy lives in its own module (it carries the whole
# multi-device runtime); importing it registers KernelStrategy.DISTRIBUTED.
# The import sits below the registry so the submodule can import this
# module's names without a cycle.
from repro.core import distributed as _distributed  # noqa: E402,F401


def policy_for(config: AtosConfig) -> ExecutionPolicy:
    """Instantiate the policy registered for ``config.strategy``."""
    cls = POLICIES.get(config.strategy)
    if cls is None:
        raise SchedulerError(
            f"no execution policy registered for strategy {config.strategy!r}; "
            f"known: {sorted(s.value for s in POLICIES)}"
        )
    return cls()


def run_policy(
    kernel: TaskKernel,
    config: AtosConfig,
    *,
    policy: ExecutionPolicy | None = None,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink: EventSink | None = None,
    perturb: Callable[[int, int], float] | None = None,
) -> RunResult:
    """Execute ``kernel`` under ``config``'s policy (or an explicit one).

    ``perturb`` is forwarded to the engine's pop-stagger hook (see
    :meth:`ExecutionEngine.pop_stagger`); ``None`` leaves timing
    bit-identical to the unhooked engine.
    """
    if policy is None:
        policy = policy_for(config)
    if policy.app_level:
        raise SchedulerError(
            f"policy {policy.name!r} runs at application level; "
            "use repro.apps.common.run_app"
        )
    eng = ExecutionEngine(kernel, config, spec, max_tasks, sink=sink, perturb=perturb)
    out = policy.execute(eng)
    return eng.build_result(
        elapsed_ns=out.elapsed_ns,
        kernel_launches=out.kernel_launches,
        generations=out.generations,
        policy_switches=out.policy_switches,
    )
