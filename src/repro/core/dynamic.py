"""Multi-epoch execution: one kernel carried across graph versions.

The arXiv framing of Atos is a scheduler for *dynamic* irregular
computation: the graph mutates in batches and the worklist re-seeds from
the affected vertices instead of restarting the whole frontier.  The
engine itself needs no change for this — :func:`repro.core.policy.run_policy`
builds a fresh :class:`~repro.core.engine.ExecutionEngine` per call while
the *kernel object* persists, so algorithm state (depths, labels, ranks)
survives between calls by construction.  This module adds the loop that
exploits that:

1. run the kernel to quiescence on the current snapshot (epoch 0 is the
   unmodified base graph — an ordinary static run);
2. apply the next :class:`~repro.graph.delta.EditBatch` through the
   :class:`~repro.graph.delta.DeltaCsr` overlay and materialize the new
   snapshot;
3. call the kernel's ``rebase(graph, applied)`` hook, which repairs any
   state the effective edits invalidated and stages the repair seeds its
   next ``initial_items()`` will return;
4. run again — the engine drains only the repair frontier, converging
   from the previous fixpoint.  Repeat per batch.

Between epochs an :class:`~repro.obs.events.EpochMark` is emitted into
the run's sink, so a single :class:`~repro.obs.collector.Collector`
digest covers the whole replay and the
:class:`~repro.check.invariants.InvariantMonitor` can assert that epoch
boundaries are quiescent (nothing leaks across) before resetting its
per-epoch clocks.

Everything here is policy-agnostic: each epoch runs under whatever
engine-level policy the config names, on either engine backend, with the
fuzzer's ``perturb`` hook threaded through every epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.config import AtosConfig
from repro.core.engine import RunResult
from repro.core.kernel import TaskKernel
from repro.core.policy import ExecutionPolicy, run_policy
from repro.graph.csr import Csr
from repro.graph.delta import AppliedBatch, EditScript
from repro.obs.events import EpochMark, EventSink
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = ["EpochOutcome", "iterate_epochs", "run_epochs"]


@dataclass
class EpochOutcome:
    """One epoch of a multi-epoch run.

    ``applied`` is ``None`` for epoch 0 (the base graph, nothing edited);
    afterwards it holds the *effective* edge changes that produced
    ``graph``.  ``result`` is the epoch's ordinary engine result — its
    clock starts at 0, so multi-epoch elapsed time is the sum over
    epochs, not the last epoch's value.
    """

    epoch: int
    graph: Csr = field(repr=False)
    applied: AppliedBatch | None = field(repr=False)
    result: RunResult = field(repr=False)


def iterate_epochs(
    kernel: TaskKernel,
    config: AtosConfig,
    script: EditScript,
    *,
    policy: ExecutionPolicy | None = None,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink: EventSink | None = None,
    perturb: Callable[[int, int], float] | None = None,
) -> Iterator[EpochOutcome]:
    """Drive ``kernel`` through epoch 0 plus one epoch per edit batch.

    A generator, because incremental kernels mutate their state in place:
    a caller that wants per-epoch artifacts (the differential harness
    copies the output array after every epoch) must consume them before
    the next epoch runs.  ``kernel`` must have been built against
    ``script.graph`` and must implement the ``rebase`` hook (see
    :class:`~repro.core.kernel.TaskKernel`).
    """
    rebase = getattr(kernel, "rebase", None)
    if rebase is None:
        raise TypeError(
            f"{type(kernel).__name__} has no rebase() hook; only incremental "
            "kernels (repro.apps.dynamic) can run multi-epoch"
        )
    res = run_policy(
        kernel, config, policy=policy, spec=spec, max_tasks=max_tasks,
        sink=sink, perturb=perturb,
    )
    yield EpochOutcome(epoch=0, graph=script.graph, applied=None, result=res)
    for applied, snapshot in script.replay():
        if sink is not None:
            # t is the finishing epoch's end time: the boundary is the
            # quiescent instant after that epoch's engine drained
            sink.emit(
                EpochMark(
                    t=res.elapsed_ns,
                    epoch=applied.epoch,
                    inserts=int(applied.inserted.shape[0]),
                    deletes=int(applied.deleted.shape[0]),
                )
            )
        rebase(snapshot, applied)
        res = run_policy(
            kernel, config, policy=policy, spec=spec, max_tasks=max_tasks,
            sink=sink, perturb=perturb,
        )
        yield EpochOutcome(
            epoch=applied.epoch, graph=snapshot, applied=applied, result=res
        )


def run_epochs(
    kernel: TaskKernel,
    config: AtosConfig,
    script: EditScript,
    **kwargs,
) -> list[EpochOutcome]:
    """Eager form of :func:`iterate_epochs` (all epochs, collected)."""
    return list(iterate_epochs(kernel, config, script, **kwargs))
