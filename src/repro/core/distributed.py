"""The distributed execution policy: N devices, one simulated clock.

This is the multi-GPU extension the Atos authors' follow-up work targets:
each device runs a persistent-kernel worker pool against its *own* deque
of a :class:`~repro.queueing.device.DeviceWorklist`; the graph is split by
a :func:`~repro.graph.partition.partition_graph` placement, completions
forward new work to its owner device over the interconnect, and idle
devices pull work back with interconnect-priced steals.

Everything shares one event heap (the engine's
:class:`~repro.sim.engine.EventLoop`), so cross-device causality is free:
a remote push is an ``ARRIVE`` event scheduled at its link-transfer
completion, and the destination's parked workers wake when it lands — no
per-device clock skew to reconcile.

Execution model per device:

* its own :class:`~repro.sim.memory.BandwidthServer` and cost closure
  (per-device HBM; devices never contend on each other's memory);
* its own occupancy-derived worker slots (global worker id = device base
  + local slot, so obs events stay worker-attributed and device
  attribution is a range lookup);
* a worker that pops its device's deque empty parks; it may probe remote
  deques (paying one interconnect latency per probe) only once the
  device's consecutive-empty-pop streak reaches
  ``AtosConfig.steal_idle_threshold``, and a steal only proceeds when the
  loot's estimated work beats ``steal_ratio`` times its transfer cost.

Stolen (and steal-banked) items execute away from their owner, so their
edge traffic is additionally charged to the owner->executor link — the
remote-data-access cost that makes meshes punish stealing while
work-rich rmat frontiers absorb it (the ``bench_multigpu`` shape result).

``devices=1`` never reaches this module: single-device configurations
keep their original strategies, and the classic policies are untouched —
the golden-digest matrix pins that.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from heapq import heappop, heappush

import numpy as np

from repro.core.backend import _DONE, _READ, SchedulerError
from repro.core.engine import ExecutionEngine, _worker_slots
from repro.core.policy import (
    ExecutionPolicy,
    PolicyOutcome,
    register_policy,
)
from repro.core.config import KernelStrategy
from repro.graph.partition import Partition, partition_graph, resolve_partition_choice
from repro.obs.events import KernelLaunch, TaskComplete, TaskPop, TaskRead
from repro.queueing.device import DeviceWorklist
from repro.sim.cost import make_cost_fn
from repro.sim.memory import BandwidthServer
from repro.sim.spec import ClusterSpec, GpuSpec, cluster_for

__all__ = ["DeviceState", "DistributedPolicy"]

#: third event tag next to the backend's _READ/_DONE: a remote-push
#: arrival landing items in a device's deque.  The flat 6-tuple layout is
#: shared — (t, seq, _ARRIVE, dst_device, items, (src_device, transfer_ns))
_ARRIVE = 2


@dataclass
class DeviceState:
    """Per-device simulated hardware plus scheduling state."""

    index: int
    spec: GpuSpec
    mem: BandwidthServer
    cost_fn: object
    slots: int
    base: int  # first global worker id on this device
    occupancy: float
    idle: list[int] = dataclass_field(default_factory=list)
    #: consecutive empty local pops across the device's workers; gates the
    #: steal permission and resets on any successful pop
    idle_streak: int = 0
    # per-device accounting, surfaced as RunResult.device_stats
    tasks: int = 0
    items_retired: int = 0
    work_units: float = 0.0

    def snapshot(self) -> dict:
        return {
            "device": self.index,
            "worker_slots": self.slots,
            "tasks": self.tasks,
            "items_retired": self.items_retired,
            "work_units": self.work_units,
            "mem_busy_ns": self.mem.busy_time,
        }


class DistributedPolicy(ExecutionPolicy):
    """Per-device persistent pools + partition-routed forwarding/stealing."""

    name = "distributed"

    def execute(self, eng: ExecutionEngine) -> PolicyOutcome:
        config, kernel, sink = eng.config, eng.kernel, eng.sink
        graph = getattr(kernel, "graph", None)
        if graph is None:
            raise SchedulerError(
                "the distributed policy needs kernel.graph to partition; "
                f"kernel {type(kernel).__name__} does not expose one"
            )
        cluster = cluster_for(config.devices, config.interconnect, eng.spec)
        ndev = cluster.num_devices
        kind, method = resolve_partition_choice(config.partition)
        part = partition_graph(graph, ndev, kind=kind, method=method)
        eng.set_mode(persistent=True)

        devs: list[DeviceState] = []
        dev_of: list[int] = []
        base = 0
        for i, dspec in enumerate(cluster.devices):
            mem = BandwidthServer(dspec.mem_edges_per_ns)
            slots, occ = _worker_slots(dspec, config)
            devs.append(
                DeviceState(
                    index=i,
                    spec=dspec,
                    mem=mem,
                    cost_fn=make_cost_fn(
                        dspec,
                        mem,
                        worker_threads=config.worker_threads,
                        use_internal_lb=config.internal_lb,
                    ),
                    slots=slots,
                    base=base,
                    occupancy=occ,
                )
            )
            dev_of.extend([i] * slots)
            base += slots
        eng.slots = base
        eng.occupancy = sum(d.occupancy * d.slots for d in devs) / base

        # steal-gate work estimate: the average item costs about one unit
        # of frontier traffic plus its average degree of edge traffic,
        # served at device HBM rate
        avg_degree = graph.num_edges / max(1, graph.num_vertices)
        item_work_ns = (1.0 + avg_degree) / cluster.devices[0].mem_edges_per_ns

        wl = DeviceWorklist(
            part,
            cluster.interconnect,
            capacity=config.queue_capacity,
            atomic_ns=eng.spec.atomic_queue_ns,
            seed=0,
            name=f"{config.name}-wl",
            sink=sink,
            steal_ratio=config.steal_ratio,
            item_work_ns=item_work_ns,
        )
        eng.queue = wl
        # the engine's single-queue fast paths don't apply: this policy
        # drives the worklist itself
        eng._qpop = eng._qpush = eng._singleq = None
        self._run_state = (eng, wl, devs, dev_of, part, ndev)

        # launch: one kernel per device, concurrently, at t=0
        t0 = eng.spec.kernel_launch_ns
        if sink is not None:
            for _ in range(ndev):
                sink.emit(KernelLaunch(t=0.0, duration_ns=t0))
        wl.push(kernel.initial_items(), t0)  # host scatter to owner deques
        for d in devs:
            queued = wl.deques[d.index].size
            needed = min(d.slots, -(-queued // config.fetch_size)) if queued else 0
            for local in range(d.slots):
                w = d.base + local
                if local < needed:
                    self._try_pop(w, t0 + eng.pop_stagger(w, 0))
                else:
                    d.idle.append(w)

        end = self._drain(t0)
        eng.device_stats = [d.snapshot() for d in devs]
        # engine-level memory utilization = mean device-HBM utilization
        eng.mem.busy_time = sum(d.mem.busy_time for d in devs) / ndev
        eng.mem.total_edges = sum(d.mem.total_edges for d in devs)
        return PolicyOutcome(
            elapsed_ns=end, kernel_launches=ndev, generations=1
        )

    # ------------------------------------------------------------------
    def _drain(self, t0: float) -> float:
        """Process READ/DONE/ARRIVE events to global quiescence."""
        eng, wl, devs, dev_of, part, ndev = self._run_state
        kernel, sink = eng.kernel, eng.sink
        loop = eng.loop
        heap = loop._heap
        trace = eng.trace
        end = t0
        while True:
            while heap:
                t, _, tag, worker, items, x = heappop(heap)
                loop.now = t
                if tag == _READ:
                    if sink is not None:
                        sink.emit(TaskRead(t=t, worker=worker, items=int(items.size)))
                    payload = kernel.on_read(items, t)
                    s = loop._seq
                    heappush(heap, (x, s, _DONE, worker, items, payload))
                    loop._seq = s + 1
                    continue
                if tag == _ARRIVE:
                    src, transfer_ns = x
                    d = devs[worker]
                    wl.deliver(src, d.index, items, t, transfer_ns)
                    self._wake_device(d, t)
                    continue
                # DONE
                eng.in_flight -= 1
                result = kernel.on_complete(items, x, t)
                if t > end:
                    end = t
                d = devs[dev_of[worker]]
                retired = result.items_retired
                work = result.work_units
                new_items = result.new_items
                eng.items_retired += retired
                eng.work_units += work
                d.tasks += 1
                d.items_retired += retired
                d.work_units += work
                trace.times.append(t)
                trace.items.append(retired)
                trace.work.append(work)
                if sink is not None:
                    sink.emit(
                        TaskComplete(
                            t=t,
                            worker=worker,
                            items=int(items.size),
                            retired=retired,
                            pushed=int(new_items.size),
                            work=work,
                        )
                    )
                if new_items.size:
                    self._route_pushes(d, new_items, t)
                # the completing worker pops again (steal gate applies)
                self._try_pop(worker, t + eng.pop_stagger(worker, eng.pop_seq))
                self._wake_device(d, t)
                self._poke_idle_devices(t)
            # heap empty: any parked work means every owner device idled
            # before its items landed — wake them and keep draining
            if wl.size:
                for d in devs:
                    self._wake_device(d, loop.now)
                if heap:
                    continue
            extra = kernel.final_check(end)
            if extra.size == 0:
                return end
            wl.push(extra, end)  # host-side refill, owner-routed
            for d in devs:
                self._wake_device(d, end)
            if not heap:
                return end

    # ------------------------------------------------------------------
    def _route_pushes(self, d: DeviceState, new_items: np.ndarray, t: float) -> None:
        """Send a completion's pushes home: local free, remote via link."""
        eng, wl, devs, dev_of, part, ndev = self._run_state
        owners = part.owner_of(new_items)
        local = new_items[owners == d.index]
        if local.size:
            wl.push_local(d.index, local, t)
        if local.size == new_items.size:
            return
        loop = eng.loop
        for dst in np.unique(owners):
            dst = int(dst)
            if dst == d.index:
                continue
            batch = new_items[owners == dst]
            arrive, transfer_ns = wl.send(d.index, dst, batch, t)
            s = loop._seq
            heappush(
                loop._heap,
                (arrive, s, _ARRIVE, dst, batch, (d.index, transfer_ns)),
            )
            loop._seq = s + 1

    def _try_pop(self, worker: int, t: float, *, force_steal: bool = False) -> bool:
        """One pop attempt for ``worker``; schedules its READ on success."""
        eng, wl, devs, dev_of, part, ndev = self._run_state
        d = devs[dev_of[worker]]
        allow = force_steal or d.idle_streak >= eng.config.steal_idle_threshold
        items, t_acq = wl.pop(eng._fetch, t, home=d.index, allow_steal=allow)
        n = int(items.size)
        if n == 0:
            d.idle_streak += 1
            d.idle.append(worker)
            return False
        d.idle_streak = 0
        seq = eng.pop_seq + 1
        eng.pop_seq = seq
        eng.total_tasks += 1
        if eng.sink is not None:
            eng.sink.emit(TaskPop(t=t_acq, worker=worker, items=n))
        if eng.total_tasks > eng.max_tasks:
            raise SchedulerError(
                f"run exceeded max_tasks={eng.max_tasks}; "
                "the application appears not to converge"
            )
        edge_work, max_degree = eng.kernel.work_estimate(items)
        h = (worker * 2654435761 + (seq + 7919) * 40503 + 12345) & 0xFFFF
        finish = d.cost_fn(
            t_acq, n, edge_work, max_degree, 1.0 + eng._dur_jit * (h / 65536.0)
        )
        # remote-data-access cost: items owned elsewhere (stolen or
        # steal-banked loot) read their adjacency over the owner's link
        owners = part.owner_of(items)
        remote = owners != d.index
        if remote.any():
            counts = np.bincount(owners[remote], minlength=ndev)
            latency = wl.interconnect.latency_ns
            for o in np.flatnonzero(counts):
                share = (edge_work + n) * counts[o] / n
                link_end = wl.reserve_link(int(o), d.index, share, t_acq)
                if link_end + latency > finish:
                    finish = link_end + latency
        t_read = finish - eng.read_lead_ns
        if t_read < t_acq:
            t_read = t_acq
        loop = eng.loop
        s = loop._seq
        heappush(loop._heap, (t_read, s, _READ, worker, items, finish))
        loop._seq = s + 1
        eng.in_flight += 1
        return True

    def _wake_device(self, d: DeviceState, t: float) -> None:
        """Hand a device's queued items to its parked workers."""
        eng, wl, devs, dev_of, part, ndev = self._run_state
        deque = wl.deques[d.index]
        while d.idle and deque.size > 0:
            worker = d.idle.pop()
            if not self._try_pop(worker, t + eng.pop_stagger(worker, eng.pop_seq)):
                break

    def _poke_idle_devices(self, t: float) -> None:
        """Give one starved device a steal attempt (bounded: one per event).

        Workers are event-driven: once parked they never poll, so without
        a poke a device that drained early would idle forever while its
        peers are loaded.  Each completion elsewhere pokes at most one
        fully-idle device whose deque is empty; the woken worker's pop
        runs with stealing allowed and pays the normal probe/transfer
        costs (and re-parks if the steal-ratio gate refuses every victim).
        """
        eng, wl, devs, dev_of, part, ndev = self._run_state
        if ndev == 1 or wl.size == 0:
            return
        for d in devs:
            if d.idle and wl.deques[d.index].size == 0:
                worker = d.idle.pop()
                self._try_pop(worker, t, force_steal=True)
                return


register_policy(KernelStrategy.DISTRIBUTED)(DistributedPolicy)
