"""Atos scheduler configuration (the Section 3 design space).

The paper's evaluation uses three named implementation variants plus one
extra for the coloring study (Section 6.1):

* ``persist-warp``  — persistent kernel, warp-sized workers, fetch size 1,
  task-parallel load balancing only;
* ``persist-CTA``   — persistent kernel, CTA-sized workers, load-balancing
  search inside the worker;
* ``discrete-CTA``  — discrete kernels, CTA-sized workers, internal LB;
* ``discrete-warp`` — discrete kernels, warp-sized workers (coloring only).

Register/shared-memory budgets default to the figures the paper reports for
graph coloring (72 regs persistent / 42 discrete, Section 6.3) scaled to a
generic application; individual apps override them.

Beyond the paper's four, the ``hybrid`` strategy (this repo's extension of
the Section 6.5 observation that neither pure strategy wins everywhere)
starts discrete and switches to persistent execution at generation
boundaries once the live frontier falls below a watermark — see
:class:`repro.core.policy.HybridPolicy` and ``docs/architecture.md``.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, fields, replace

__all__ = [
    "KernelStrategy",
    "AtosConfig",
    "PERSIST_WARP",
    "PERSIST_CTA",
    "DISCRETE_CTA",
    "DISCRETE_WARP",
    "HYBRID_CTA",
    "HYBRID_WARP",
    "BSP_BASELINE",
    "DIST_2",
    "DIST_4",
    "DIST_4_PCIE",
    "variant_by_name",
    "VARIANTS",
    "CONFIGS",
]


class KernelStrategy(enum.Enum):
    """Section 3.4: one launch forever vs. one launch per generation.

    ``HYBRID`` is the adaptive extension: discrete generations while the
    frontier is wide, one persistent phase once it narrows (and back, with
    hysteresis, if it widens again).  ``BSP`` names the frontier-synchronous
    baseline, which executes at application level (see
    :class:`repro.core.policy.BspPolicy`).
    """

    PERSISTENT = "persistent"
    DISCRETE = "discrete"
    HYBRID = "hybrid"
    BSP = "bsp"
    #: multi-device extension: one persistent phase per device, partitioned
    #: worklists, cross-device forwarding/stealing over the interconnect
    #: (see :class:`repro.core.distributed.DistributedPolicy`)
    DISTRIBUTED = "distributed"


@dataclass(frozen=True)
class AtosConfig:
    """One point in the Atos design space."""

    strategy: KernelStrategy = KernelStrategy.PERSISTENT
    #: threads per worker: 1 = thread worker, 32 = warp worker, larger
    #: multiples of 32 = CTA worker.
    worker_threads: int = 32
    #: work items popped per task (FETCH_SIZE in the paper's Listing 3)
    fetch_size: int = 1
    #: run the load-balancing search across fetched items inside the worker
    #: (only meaningful for CTA workers)
    internal_lb: bool = False
    #: threads per CTA used for occupancy (warp workers are packed into
    #: CTAs of this size; CTA workers use worker_threads)
    cta_threads: int = 256
    #: register pressure; persistent kernels need extra registers for the
    #: queue loop (Section 3.4)
    registers_per_thread: int = 48
    shared_mem_per_cta: int = 0
    #: physical queue count behind the shared work list
    num_queues: int = 1
    #: work-list organisation: "shared" (the paper's single shared queue,
    #: scattered over num_queues counters) or "stealing" (per-group deques
    #: with steal-on-empty — the distributed alternative of reference [7])
    worklist: str = "shared"
    #: queue capacity in items (device buffer size in the real framework)
    queue_capacity: int = 1 << 62
    #: hybrid strategy only: switch discrete→persistent at a generation
    #: boundary when the live frontier holds fewer than this many items.
    #: 0 = auto (worker_slots × fetch_size × 32, enough waves to amortize a
    #: kernel launch — see docs/architecture.md)
    hybrid_low_watermark: int = 0
    #: hybrid strategy only: switch persistent→discrete when the queue
    #: grows beyond this many items.  0 = auto (4 × low watermark); must be
    #: ≥ the low watermark when both are set (hysteresis band)
    hybrid_high_watermark: int = 0
    #: engine inner-loop implementation (:mod:`repro.core.backend`):
    #: "event" pops the heap one event at a time, "batched" buckets
    #: read-windows into one pass.  Every backend is bit-identical on the
    #: observable event stream; this knob only trades wall-clock.
    backend: str = "event"
    #: simulated device count.  1 = the classic single-device engine;
    #: > 1 requires the distributed strategy (per-device worklists, the
    #: partition below, interconnect-priced forwarding)
    devices: int = 1
    #: how the graph is split over devices: a ``--partition`` token from
    #: :data:`repro.graph.partition.PARTITION_CHOICES`
    partition: str = "hash"
    #: interconnect preset name from :data:`repro.sim.spec.INTERCONNECTS`
    interconnect: str = "nvlink"
    #: distributed strategy: a cross-device steal must promise at least
    #: this many ns of estimated work per ns of transfer cost
    steal_ratio: float = 2.0
    #: distributed strategy: consecutive empty local pops a device's worker
    #: must see before it is allowed to probe remote deques
    steal_idle_threshold: int = 2
    name: str = "atos"

    def __post_init__(self) -> None:
        if self.worker_threads < 1:
            raise ValueError("worker_threads must be >= 1")
        if self.worker_threads > 32 and self.worker_threads % 32:
            raise ValueError("CTA workers must be a multiple of 32 threads")
        if self.fetch_size < 1:
            raise ValueError("fetch_size must be >= 1")
        if self.internal_lb and self.worker_threads < 32:
            raise ValueError("internal load balancing requires >= warp-sized workers")
        if self.num_queues < 1:
            raise ValueError("num_queues must be >= 1")
        if self.worklist not in ("shared", "stealing"):
            raise ValueError('worklist must be "shared" or "stealing"')
        # late import: the backend registry depends on nothing here, but
        # importing it at module scope would pin an import order
        from repro.core.backend import BACKENDS

        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; known: {sorted(BACKENDS)}"
            )
        if self.hybrid_low_watermark < 0 or self.hybrid_high_watermark < 0:
            raise ValueError("hybrid watermarks must be non-negative")
        if (
            self.hybrid_low_watermark
            and self.hybrid_high_watermark
            and self.hybrid_high_watermark < self.hybrid_low_watermark
        ):
            raise ValueError("hybrid_high_watermark must be >= hybrid_low_watermark")
        if self.devices < 1:
            raise ValueError("devices must be >= 1")
        if self.devices > 1 and self.strategy is not KernelStrategy.DISTRIBUTED:
            raise ValueError("devices > 1 requires the distributed strategy")
        from repro.graph.partition import PARTITION_CHOICES

        if self.partition not in PARTITION_CHOICES:
            raise ValueError(
                f"unknown partition {self.partition!r}; "
                f"known: {', '.join(PARTITION_CHOICES)}"
            )
        from repro.sim.spec import INTERCONNECTS

        if self.interconnect not in INTERCONNECTS:
            raise ValueError(
                f"unknown interconnect {self.interconnect!r}; "
                f"known: {sorted(INTERCONNECTS)}"
            )
        if self.steal_ratio < 0:
            raise ValueError("steal_ratio must be >= 0")
        if self.steal_idle_threshold < 0:
            raise ValueError("steal_idle_threshold must be >= 0")

    # ------------------------------------------------------------------
    @property
    def is_persistent(self) -> bool:
        return self.strategy is KernelStrategy.PERSISTENT

    @property
    def is_hybrid(self) -> bool:
        return self.strategy is KernelStrategy.HYBRID

    @property
    def is_cta_worker(self) -> bool:
        return self.worker_threads > 32

    @property
    def is_warp_worker(self) -> bool:
        return self.worker_threads == 32

    @property
    def is_thread_worker(self) -> bool:
        return self.worker_threads == 1

    @property
    def occupancy_cta_threads(self) -> int:
        """CTA size used for the occupancy calculation."""
        return self.worker_threads if self.is_cta_worker else self.cta_threads

    def with_overrides(self, **overrides) -> "AtosConfig":
        """A copy with some fields changed (sweeps, app-specific budgets)."""
        return replace(self, **overrides)

    def canonical(self) -> dict:
        """Field-by-field canonical form: JSON scalars only, sorted keys.

        The content-addressing foundation for :meth:`digest`.  ``name`` is
        excluded — it is a display label (``with_overrides`` keeps it when
        rebasing, ``describe()`` derives another), and two configs that
        simulate identically must digest identically regardless of what a
        caller chose to call them.
        """
        out: dict = {}
        for f in fields(self):
            if f.name == "name":
                continue
            value = getattr(self, f.name)
            if isinstance(value, enum.Enum):
                value = value.value
            out[f.name] = value
        return out

    def digest(self) -> str:
        """16-hex content digest over :meth:`canonical`.

        Two ``AtosConfig`` instances share a digest iff every simulated-
        behavior field matches; the service's result cache
        (:mod:`repro.service.cache`) keys on this, so renaming a config
        never duplicates cache entries and changing any real knob
        (backend, devices, watermarks, ...) never aliases them.
        """
        payload = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        """Short human-readable tag, e.g. ``persist-256-128``."""
        if self.is_persistent:
            kind = "persist"
        elif self.is_hybrid:
            kind = "hybrid"
        elif self.strategy is KernelStrategy.BSP:
            kind = "bsp"
        elif self.strategy is KernelStrategy.DISTRIBUTED:
            kind = f"dist{self.devices}-{self.partition}"
        else:
            kind = "discrete"
        if self.is_warp_worker and self.fetch_size == 1:
            return f"{kind}-warp"
        return f"{kind}-{self.worker_threads}-{self.fetch_size}"


# Named variants from Section 6.1.  Fetch/worker sizes follow the paper's
# Figure 4 sweet spots (CTA workers of 256 threads, fetch 128).
PERSIST_WARP = AtosConfig(
    strategy=KernelStrategy.PERSISTENT,
    worker_threads=32,
    fetch_size=1,
    internal_lb=False,
    registers_per_thread=56,
    name="persist-warp",
)

PERSIST_CTA = AtosConfig(
    strategy=KernelStrategy.PERSISTENT,
    worker_threads=256,
    fetch_size=64,
    internal_lb=True,
    registers_per_thread=56,
    name="persist-CTA",
)

DISCRETE_CTA = AtosConfig(
    strategy=KernelStrategy.DISCRETE,
    worker_threads=256,
    fetch_size=64,
    internal_lb=True,
    registers_per_thread=40,
    name="discrete-CTA",
)

DISCRETE_WARP = AtosConfig(
    strategy=KernelStrategy.DISCRETE,
    worker_threads=32,
    fetch_size=1,
    internal_lb=False,
    registers_per_thread=40,
    name="discrete-warp",
)

# Adaptive extension (not in the paper's Table 1): discrete while wide,
# persistent once narrow.  An adaptive kernel must compile the persistent
# queue loop, so it carries the persistent register budget.
HYBRID_CTA = AtosConfig(
    strategy=KernelStrategy.HYBRID,
    worker_threads=256,
    fetch_size=64,
    internal_lb=True,
    registers_per_thread=56,
    name="hybrid-CTA",
)

HYBRID_WARP = AtosConfig(
    strategy=KernelStrategy.HYBRID,
    worker_threads=32,
    fetch_size=1,
    internal_lb=False,
    registers_per_thread=56,
    name="hybrid-warp",
)

#: the paper's Section 6.1 variants, exactly as evaluated
VARIANTS: dict[str, AtosConfig] = {
    "persist-warp": PERSIST_WARP,
    "persist-CTA": PERSIST_CTA,
    "discrete-CTA": DISCRETE_CTA,
    "discrete-warp": DISCRETE_WARP,
}

#: the frontier-synchronous baseline, executed at application level
#: (worker/fetch fields are ignored by the BSP policy)
BSP_BASELINE = AtosConfig(strategy=KernelStrategy.BSP, name="BSP")

# Multi-device extension presets: persistent CTA-shaped workers per device
# (the shape the paper's persist-CTA uses), hash edge-cut by default so the
# presets work on any graph without locality assumptions.
DIST_2 = AtosConfig(
    strategy=KernelStrategy.DISTRIBUTED,
    worker_threads=256,
    fetch_size=64,
    internal_lb=True,
    registers_per_thread=56,
    devices=2,
    partition="hash",
    name="dist-2",
)

DIST_4 = DIST_2.with_overrides(devices=4, name="dist-4")

DIST_4_PCIE = DIST_2.with_overrides(
    devices=4, interconnect="pcie", name="dist-4-pcie"
)

#: every named configuration this repo ships (paper variants + extensions)
CONFIGS: dict[str, AtosConfig] = {
    **VARIANTS,
    "hybrid-CTA": HYBRID_CTA,
    "hybrid-warp": HYBRID_WARP,
    "BSP": BSP_BASELINE,
    "dist-2": DIST_2,
    "dist-4": DIST_4,
    "dist-4-pcie": DIST_4_PCIE,
}


def variant_by_name(name: str) -> AtosConfig:
    """Look up a named configuration (case-insensitive).

    Resolves the paper's four variants plus this repo's extensions
    (``hybrid-CTA``, ``hybrid-warp``).
    """
    for key, cfg in CONFIGS.items():
        if key.lower() == name.lower():
            return cfg
    raise KeyError(f"unknown variant {name!r}; known: {sorted(CONFIGS)}")
