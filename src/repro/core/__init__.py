"""The Atos task-parallel scheduler — the paper's primary contribution.

The design space of Section 3 maps onto :class:`AtosConfig`:

* **kernel strategy** — ``persistent`` (one launch, workers loop until
  quiescence) vs. ``discrete`` (one launch per queue generation);
* **worker size** — thread (1), warp (32), or CTA (a multiple of 32
  threads);
* **data vs. task parallelism** — ``fetch_size`` items per pop, with the
  in-worker load-balancing search enabled for CTA workers;
* **relaxed barriers** — implicit: the persistent scheduler never inserts a
  global barrier, so cross-frontier asynchrony (and its overwork) emerges
  from the simulated timing.

:func:`run` executes an application kernel (see :class:`TaskKernel`) under a
configuration and returns a :class:`RunResult` with timing, workload, queue
and trace statistics.
"""

from repro.core.config import (
    BSP_BASELINE,
    CONFIGS,
    DISCRETE_CTA,
    DISCRETE_WARP,
    HYBRID_CTA,
    HYBRID_WARP,
    PERSIST_CTA,
    PERSIST_WARP,
    VARIANTS,
    AtosConfig,
    KernelStrategy,
    variant_by_name,
)
from repro.core.kernel import CompletionResult, TaskKernel
from repro.core.policy import (
    POLICIES,
    ExecutionPolicy,
    PolicyOutcome,
    policy_for,
    register_policy,
    run_policy,
)
from repro.core.engine import ExecutionEngine
from repro.core.scheduler import (
    RunResult,
    run,
    run_discrete,
    run_hybrid,
    run_persistent,
)
from repro.core.api import Atos
from repro.core.dag import Dag, DagKernel, JoinCounters

__all__ = [
    "AtosConfig",
    "KernelStrategy",
    "PERSIST_WARP",
    "PERSIST_CTA",
    "DISCRETE_CTA",
    "DISCRETE_WARP",
    "HYBRID_CTA",
    "HYBRID_WARP",
    "BSP_BASELINE",
    "VARIANTS",
    "CONFIGS",
    "variant_by_name",
    "TaskKernel",
    "CompletionResult",
    "RunResult",
    "run",
    "run_persistent",
    "run_discrete",
    "run_hybrid",
    "ExecutionPolicy",
    "ExecutionEngine",
    "PolicyOutcome",
    "POLICIES",
    "policy_for",
    "register_policy",
    "run_policy",
    "Atos",
    "Dag",
    "DagKernel",
    "JoinCounters",
]
