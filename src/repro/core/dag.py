"""DAG task dependencies via atomic join counters (paper Section 3).

The paper: *"Our current implementation of Atos supports tree-structured
task dependency graphs ... Atos can be extended in a straightforward way to
DAGs by adding (atomic) counters for each join; the last worker to reach
the join would continue the computation beyond the join."*

This module is that extension.  :class:`JoinCounters` is the atomic-counter
array; :class:`DagKernel` wraps a user compute function into a
:class:`~repro.core.kernel.TaskKernel` whose items are DAG node ids: a node
is pushed onto the work list exactly when its last predecessor completes,
so the scheduler's asynchrony never violates an edge of the DAG.

Example — a wavefront over a 2-D dependency grid::

    dag = Dag.from_edges(num_nodes, edges)
    kernel = DagKernel(dag, cost_fn=lambda node: 4)
    run(kernel, PERSIST_WARP)

The completion order is checked against the DAG by the test suite for
random DAGs (a topological-order property test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.apps.common import EMPTY_ITEMS
from repro.core.kernel import CompletionResult

__all__ = ["Dag", "JoinCounters", "DagKernel"]


@dataclass(frozen=True)
class Dag:
    """Immutable DAG in CSR form over task nodes (successor lists)."""

    indptr: np.ndarray
    successors: np.ndarray
    in_degree: np.ndarray

    @classmethod
    def from_edges(cls, num_nodes: int, edges: Sequence[tuple[int, int]] | np.ndarray) -> "Dag":
        """Build from ``(pred, succ)`` pairs; validates acyclicity."""
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be (E, 2)")
        if arr.size and (arr.min() < 0 or arr.max() >= num_nodes):
            raise ValueError("edge endpoints out of range")
        order = np.lexsort((arr[:, 1], arr[:, 0]))
        arr = arr[order]
        counts = np.bincount(arr[:, 0], minlength=num_nodes)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        indeg = np.bincount(arr[:, 1], minlength=num_nodes).astype(np.int64)
        dag = cls(indptr=indptr, successors=arr[:, 1].copy(), in_degree=indeg)
        dag._assert_acyclic(num_nodes)
        return dag

    def _assert_acyclic(self, num_nodes: int) -> None:
        """Kahn's algorithm; raises on a cycle."""
        indeg = self.in_degree.copy()
        stack = list(np.flatnonzero(indeg == 0))
        seen = 0
        while stack:
            v = stack.pop()
            seen += 1
            for w in self.successors[self.indptr[v] : self.indptr[v + 1]]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    stack.append(int(w))
        if seen != num_nodes:
            raise ValueError("dependency graph contains a cycle")

    @property
    def num_nodes(self) -> int:
        return self.indptr.size - 1

    def roots(self) -> np.ndarray:
        """Nodes with no predecessors (the initial work list)."""
        return np.flatnonzero(self.in_degree == 0).astype(np.int64)

    def node_successors(self, node: int) -> np.ndarray:
        return self.successors[self.indptr[node] : self.indptr[node + 1]]


class JoinCounters:
    """Per-node atomic join counters.

    ``arrive(nodes)`` decrements the counters of the given successor nodes
    and returns those that just reached zero — the "last worker continues
    past the join" rule.  Decrements happen at completion time, under the
    scheduler's single-threaded event execution, which models the atomicity
    of the device-side ``atomicSub``.
    """

    def __init__(self, dag: Dag) -> None:
        self.remaining = dag.in_degree.copy()

    def arrive(self, nodes: np.ndarray) -> np.ndarray:
        """Record one predecessor-completion per entry (duplicates count)."""
        if nodes.size == 0:
            return EMPTY_ITEMS
        if np.any(self.remaining[nodes] <= 0):
            raise RuntimeError("join counter underflow: an edge fired twice")
        np.subtract.at(self.remaining, nodes, 1)
        counts = np.bincount(nodes, minlength=self.remaining.size)
        candidates = np.flatnonzero(counts)
        ready = candidates[self.remaining[candidates] == 0]
        return ready.astype(np.int64)


class DagKernel:
    """Task kernel executing a DAG under join-counter dependencies.

    Parameters
    ----------
    dag:
        the dependency graph.
    cost_fn:
        edge-work charged for computing one node (drives the cost model);
        defaults to a constant 4.
    compute_fn:
        optional side-effecting function invoked at each node's completion
        (receives the node id and completion time).
    """

    def __init__(
        self,
        dag: Dag,
        *,
        cost_fn: Callable[[int], int] | None = None,
        compute_fn: Callable[[int, float], None] | None = None,
    ) -> None:
        self.dag = dag
        self.cost_fn = cost_fn or (lambda node: 4)
        self.compute_fn = compute_fn
        self.joins = JoinCounters(dag)
        self.completed: list[int] = []
        self.completion_times: list[float] = []

    def initial_items(self) -> np.ndarray:
        return self.dag.roots()

    def work_estimate(self, items: np.ndarray) -> tuple[int, int]:
        costs = [self.cost_fn(int(v)) for v in items]
        return int(sum(costs)), int(max(costs, default=0))

    def on_read(self, items: np.ndarray, t: float):
        return None

    def on_complete(self, items: np.ndarray, payload, t: float) -> CompletionResult:
        for v in items:
            self.completed.append(int(v))
            self.completion_times.append(t)
            if self.compute_fn is not None:
                self.compute_fn(int(v), t)
        # fire every outgoing dependency edge; push joins that hit zero
        succ_parts = [self.dag.node_successors(int(v)) for v in items]
        succs = np.concatenate(succ_parts) if succ_parts else EMPTY_ITEMS
        ready = self.joins.arrive(succs) if succs.size else EMPTY_ITEMS
        work = float(sum(self.cost_fn(int(v)) for v in items))
        return CompletionResult(
            new_items=ready, items_retired=int(items.size), work_units=work
        )

    def final_check(self, t: float) -> np.ndarray:
        return EMPTY_ITEMS

    # ------------------------------------------------------------------
    def all_executed(self) -> bool:
        return len(self.completed) == self.dag.num_nodes

    def respects_dependencies(self) -> bool:
        """True when every node completed no earlier than its predecessors."""
        finish = {}
        for node, t in zip(self.completed, self.completion_times):
            finish[node] = t
        if len(finish) != self.dag.num_nodes:
            return False
        for v in range(self.dag.num_nodes):
            for w in self.dag.node_successors(v):
                if finish[int(w)] < finish[v]:
                    return False
        return True
