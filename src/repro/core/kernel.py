"""The application-kernel protocol the scheduler executes.

An application (BFS, PageRank, coloring, or anything matching Listing 1 of
the paper) implements :class:`TaskKernel`.  Each task passes through three
phases, mirroring how a GPU worker interacts with device memory:

* ``work_estimate(items)`` — structural lookup only (degrees); feeds the
  cost model.  Runs logically at pop time and reads no mutable state.
* ``on_read(items, t)`` — all **reads** of shared mutable state (depths,
  residues, colors) and all decisions derived from them.  The scheduler
  invokes it at the task's *read instant*: in a persistent kernel that is
  shortly before the task's completion slot on the shared memory server
  (``GpuSpec.read_lead_ns`` models the outstanding-load window), so reads
  from consecutive pops are nearly serialized — the "hardware scheduler is
  much less ordered" effect of Section 6.3.  In a discrete kernel every
  task launched in a wave reads at its pop instant, so an entire wave
  observes the same stale snapshot.
* ``on_complete(items, payload, t)`` — all **writes** (atomicMin results,
  residue pushes, color commits) and all queue pushes.

Everything between a task's read and its completion sees *stale* state —
exactly how concurrently-resident GPU workers interact through device
memory, and what produces the misspeculation, duplicate work, and coloring
conflicts the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = ["CompletionResult", "TaskKernel"]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(slots=True)
class CompletionResult:
    """What ``on_complete`` hands back to the scheduler.

    ``new_items`` are pushed onto the work list at the completion time.
    ``items_retired`` counts work items finished (the throughput trace
    unit).  ``work_units`` counts application work (edges traversed for
    BFS/PR, color assignments for coloring) — the Table 4 currency.
    One instance is allocated per completed task, so it carries slots.
    """

    new_items: np.ndarray = field(default_factory=lambda: _EMPTY)
    items_retired: int = 0
    work_units: float = 0.0


@runtime_checkable
class TaskKernel(Protocol):
    """Application callbacks driven by the scheduler.

    Implementations must be deterministic: given the same read/complete
    times and orderings they must produce the same results, because the
    regression suite replays runs and compares bit-for-bit.
    """

    def initial_items(self) -> np.ndarray:
        """Work items seeded into the queue before the first launch."""
        ...

    def work_estimate(self, items: np.ndarray) -> tuple[int, int]:
        """``(edge_work, max_degree)`` for the cost model.

        Must depend only on immutable structure (the CSR graph), never on
        mutable algorithm state.
        """
        ...

    def on_read(self, items: np.ndarray, t: float) -> Any:
        """Read-phase: consume shared state, return a private payload."""
        ...

    def on_complete(self, items: np.ndarray, payload: Any, t: float) -> CompletionResult:
        """Write-phase: apply effects, return pushes and accounting."""
        ...

    def final_check(self, t: float) -> np.ndarray:
        """Quiescence hook: called when the queue is empty and nothing is in
        flight.  Returning a non-empty array resumes execution with those
        items (e.g. PageRank's residual scan); returning empty ends the run.
        """
        ...

    # Optional hooks (duck-typed, looked up with getattr):
    #
    # ``generation_check(t) -> np.ndarray`` — the paper's f2 function: run
    # by discrete-mode policies at each generation barrier; non-empty
    # return extends the run with those items.
    #
    # ``rebase(graph, applied) -> None`` — dynamic-graph support
    # (:mod:`repro.core.dynamic`): swap the kernel onto a mutated CSR
    # snapshot and convert the effective edge changes (an
    # :class:`~repro.graph.delta.AppliedBatch`) into repair seeds, which
    # the *next* ``initial_items()`` call must return.  State (depths,
    # labels, ranks) carries over — that is the point of an incremental
    # kernel.  Only kernels implementing ``rebase`` can run multi-epoch.
