"""Strategy-agnostic execution machinery shared by every kernel policy.

Historically the scheduler was two monolithic functions
(``run_persistent`` / ``run_discrete``) sharing a private ``_Engine``
class.  This module is that machinery factored out behind a neutral
surface so that *policies* (:mod:`repro.core.policy`) can compose it:

* :class:`ExecutionEngine` owns the simulated hardware (event loop,
  bandwidth server, occupancy-derived worker slots), the live
  :class:`~repro.queueing.protocol.Worklist`, and the run accumulators;
* the engine is **mode-switchable**: :meth:`ExecutionEngine.set_mode`
  selects the read-instant lead and pop-jitter amplitude that distinguish
  persistent from discrete execution (Section 6.3 semantics), so one
  engine instance can serve a policy that alternates between them;
* :meth:`ExecutionEngine.drain_events` accepts an optional ``stop_when``
  predicate: when it fires, the engine stops issuing new pops and lets
  in-flight tasks retire — the mechanism the hybrid policy uses to
  interrupt a persistent phase whose queue has grown past its watermark;
* every pop-issue instant flows through :meth:`ExecutionEngine.pop_stagger`,
  which adds the mode's hardware-scheduler jitter plus an optional
  **perturbation hook** (``perturb=``) — a deterministic, non-negative
  extra delay per ``(worker, seq)`` that the schedule-perturbation fuzzer
  (:mod:`repro.check.fuzz`) uses to explore alternative, model-legal
  interleavings without touching any other mechanism.

Everything observable (event order, timestamps, counters) is identical to
the pre-refactor ``_Engine`` for the persistent and discrete policies;
``tests/test_equivalence.py`` pins that with obs digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable

import numpy as np

from repro.core.backend import _READ, SchedulerError, backend_for
from repro.core.config import AtosConfig
from repro.core.kernel import TaskKernel
from repro.obs.events import EventSink, TaskPop
from repro.queueing.broker import QueueBroker
from repro.queueing.protocol import Worklist
from repro.queueing.stealing import StealingWorklist
from repro.sim.cost import make_cost_fn
from repro.sim.engine import EventLoop
from repro.sim.memory import BandwidthServer
from repro.sim.occupancy import occupancy_for
from repro.sim.spec import GpuSpec
from repro.sim.trace import ThroughputTrace

# SchedulerError moved to repro.core.backend with the drain loops; it is
# re-exported here because policies and applications catch it from this
# module's public surface.
__all__ = ["RunResult", "SchedulerError", "ExecutionEngine"]


@dataclass
class RunResult:
    """Everything measured during one simulated kernel execution."""

    elapsed_ns: float
    total_tasks: int
    items_retired: int
    work_units: float
    kernel_launches: int
    generations: int
    worker_slots: int
    occupancy_fraction: float
    queue_contention_ns: float
    empty_pops: int
    mem_utilization: float
    #: queue-operation counters aggregated over every queue the run used
    #: (discrete strategies create one queue per generation; all of them
    #: are accumulated, not just the last)
    queue_pushes: int = 0
    queue_pops: int = 0
    #: work-stealing counters (zero under the shared-queue worklist)
    steals: int = 0
    failed_steals: int = 0
    #: item-level conservation counters (pushes/pops above count *operations*;
    #: these count *distinct items*, so ``queue_items_pushed >= items_retired``
    #: must hold for any run — every retired item was pushed exactly once,
    #: while items can be pushed and then drained at a policy switch or left
    #: behind.  Stolen surplus a thief re-pushes ("banks") into its own deque
    #: is subtracted from both counters — the raw queue totals count those
    #: items twice — and surfaced separately as ``queue_items_banked``.
    queue_items_pushed: int = 0
    queue_items_popped: int = 0
    queue_items_banked: int = 0
    #: hybrid strategy: number of discrete↔persistent crossovers
    policy_switches: int = 0
    #: multi-device runs (defaults keep single-device results unchanged):
    #: simulated device count and the cross-device traffic the run paid
    devices: int = 1
    remote_pushes: int = 0
    remote_items: int = 0
    remote_steals: int = 0
    comm_ns: float = 0.0
    #: per-device accounting snapshots (None on single-device runs)
    device_stats: list | None = field(repr=False, default=None)
    trace: ThroughputTrace = field(repr=False, default_factory=ThroughputTrace)
    config_name: str = ""

    @property
    def elapsed_ms(self) -> float:
        """Simulated runtime in milliseconds (the paper's Table 1 unit)."""
        return self.elapsed_ns / 1e6


def _worker_slots(spec: GpuSpec, config: AtosConfig) -> tuple[int, float]:
    """Resident worker count and occupancy fraction for a configuration."""
    occ = occupancy_for(
        spec,
        threads_per_cta=config.occupancy_cta_threads,
        registers_per_thread=config.registers_per_thread,
        shared_mem_per_cta=config.shared_mem_per_cta,
    )
    if config.is_cta_worker:
        return occ.total_ctas, occ.occupancy_fraction
    if config.is_warp_worker:
        return occ.total_warps, occ.occupancy_fraction
    return occ.threads_per_sm * spec.num_sms, occ.occupancy_fraction


def _jitter(worker: int, seq: int, amplitude: float) -> float:
    """Deterministic pseudo-random stagger for persistent-kernel pops."""
    if amplitude <= 0.0:
        return 0.0
    h = (worker * 2654435761 + seq * 40503 + 12345) & 0xFFFF
    return (h / 65536.0) * amplitude


class ExecutionEngine:
    """Shared simulated-GPU machinery every execution policy drives.

    A policy owns the control flow (when to launch, barrier, create
    queues, quiesce); the engine owns the mechanism (pops, cost model,
    read/complete event processing, counters).  The engine starts with no
    mode — a policy must call :meth:`set_mode` before seeding work.
    """

    def __init__(
        self,
        kernel: TaskKernel,
        config: AtosConfig,
        spec: GpuSpec,
        max_tasks: int,
        *,
        sink: EventSink | None = None,
        perturb: Callable[[int, int], float] | None = None,
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.spec = spec
        self.max_tasks = max_tasks
        self.sink = sink
        self.perturb = perturb
        self.mem = BandwidthServer(spec.mem_edges_per_ns)
        self.loop = EventLoop()
        self.trace = ThroughputTrace()
        self.slots, self.occupancy = _worker_slots(spec, config)
        self.idle: list[int] = []
        self.in_flight = 0
        self.total_tasks = 0
        self.items_retired = 0
        self.work_units = 0.0
        self.pop_seq = 0
        self.queue: Worklist | None = None  # set per run/generation
        self.pending_pushes: list[np.ndarray] = []  # discrete: next generation
        # mode-dependent knobs; set_mode() must run before any pop
        self.read_lead_ns = 0.0
        self.jitter_amp = 0.0
        # queue-stats accumulators: discrete runs replace the queue every
        # generation, so counters are absorbed before each replacement
        # (previously the per-generation stats were discarded with the
        # queue and run_discrete reported empty_pops=0 unconditionally)
        self.q_empty_pops = 0
        self.q_pushes = 0
        self.q_pops = 0
        self.q_contention_ns = 0.0
        self.q_steals = 0
        self.q_failed_steals = 0
        self.q_items_pushed = 0
        self.q_items_popped = 0
        self.q_banked_items = 0
        self.q_remote_pushes = 0
        self.q_remote_items = 0
        self.q_remote_steals = 0
        self.q_comm_ns = 0.0
        #: per-device snapshots, set by the distributed policy
        self.device_stats: list | None = None
        # hot-path specialisations (repro.perf): the per-task cost closure
        # binds every spec/config-derived constant once; the fetch size and
        # duration-jitter amplitude are hoisted out of try_pop.  All of it
        # is bit-identical to the generic task_cost path (golden digests).
        self._cost_fn = make_cost_fn(
            spec,
            self.mem,
            worker_threads=config.worker_threads,
            use_internal_lb=config.internal_lb,
        )
        self._fetch = config.fetch_size
        self._dur_jit = spec.duration_jitter
        # single-queue fast path: bound to the lone MpmcQueue's pop/push
        # by new_queue() when the broker has exactly one physical queue
        # (the paper's headline setup), skipping the broker dispatch
        self._qpop = None
        self._qpush = None
        self._singleq = None
        # the inner event loop (repro.core.backend): "event" pops the heap
        # one event at a time, "batched" buckets read-windows.  Resolved
        # once — the registry lookup must not sit on the drain path.
        self._backend = backend_for(config.backend)

    # ------------------------------------------------------------------
    def set_mode(self, *, persistent: bool) -> None:
        """Select the read-instant and jitter semantics (Section 6.3).

        Persistent workers read ``read_lead_ns`` before completion and pop
        with hardware-scheduler jitter; discrete waves read at their pop
        instant and issue in strict queue order with no stagger.
        """
        if persistent:
            self.read_lead_ns = self.spec.read_lead_ns
            self.jitter_amp = self.spec.persistent_jitter_ns
        else:
            self.read_lead_ns = self.spec.discrete_read_lead_ns
            self.jitter_amp = 0.0

    # ------------------------------------------------------------------
    def absorb_queue_stats(self) -> None:
        """Fold the current queue's counters into the run accumulators."""
        q = self.queue
        if q is None:
            return
        s = q.stats()
        self.q_empty_pops += s.empty_pops
        self.q_pushes += s.pushes
        self.q_pops += s.pops
        self.q_contention_ns += s.contention_wait_ns
        self.q_steals += s.steals
        self.q_failed_steals += s.failed_steals
        self.q_items_pushed += s.items_pushed
        self.q_items_popped += s.items_popped
        self.q_banked_items += s.banked_items
        self.q_remote_pushes += s.remote_pushes
        self.q_remote_items += s.remote_items
        self.q_remote_steals += s.remote_steals
        self.q_comm_ns += s.comm_ns

    def new_queue(self, name: str) -> Worklist:
        self.absorb_queue_stats()  # retire the previous generation's queue
        if self.config.worklist == "stealing":
            self.queue = StealingWorklist(
                max(2, self.config.num_queues),
                capacity=self.config.queue_capacity,
                atomic_ns=self.spec.atomic_queue_ns,
                name=name,
                sink=self.sink,
            )
        else:
            self.queue = QueueBroker(
                self.config.num_queues,
                capacity=self.config.queue_capacity,
                atomic_ns=self.spec.atomic_queue_ns,
                name=name,
                sink=self.sink,
            )
        single = getattr(self.queue, "_single", None)
        self._qpop = single.pop if single is not None else None
        self._qpush = single.push if single is not None else None
        # try_pop inlines the pop body itself when no sink is attached
        # (the benchmark/headline path); the bound methods above remain the
        # fallback whenever observability events must be emitted
        self._singleq = single if single is not None and single.sink is None else None
        return self.queue

    def pop_stagger(self, worker: int, seq: int) -> float:
        """Delay before a worker's next pop is issued.

        The base term is the mode's hardware-scheduler jitter
        (:func:`_jitter`; zero in discrete mode).  The optional
        ``perturb`` hook adds a further non-negative, deterministic delay —
        the fuzzer's lever for exploring alternative pop interleavings.
        Negative hook values are clamped: the event loop cannot schedule
        into the past, and the model only permits *delaying* a pop.
        """
        perturb = self.perturb
        if perturb is None:
            amp = self.jitter_amp
            if amp <= 0.0:
                return 0.0
            h = (worker * 2654435761 + seq * 40503 + 12345) & 0xFFFF
            return (h / 65536.0) * amp
        jit = _jitter(worker, seq, self.jitter_amp)
        jit += max(0.0, float(perturb(worker, seq)))
        return jit

    def try_pop(self, worker: int, t: float) -> bool:
        """Attempt a pop; on success schedules the task's READ event."""
        q = self._singleq
        if q is not None:
            # Inlined MpmcQueue.pop (single queue, no sink): the pop path
            # runs once per task plus once per failed poll, and the call
            # frame plus property hops are measurable at that rate.  Must
            # mirror mpmc.pop exactly — stats updates included — so the
            # absorbed counters and RunResult stay bit-identical.
            stats = q.stats
            free = q._pop_atomic_free
            t_start = t if t > free else free
            stats.contention_wait_ns += t_start - t
            t_acq = q._pop_atomic_free = t_start + q.atomic_ns
            head = q._head
            n = q._tail - head
            if n > self._fetch:
                n = self._fetch
            if n == 0:
                stats.empty_pops += 1
                self.idle.append(worker)
                return False
            items = q._buf[head : head + n].copy()
            q._head = head = head + n
            stats.pops += 1
            stats.items_popped += n
            if head == q._tail:
                q._head = q._tail = 0
        else:
            qpop = self._qpop
            if qpop is not None:  # single shared queue: home is ignored anyway
                items, t_acq = qpop(self._fetch, t)
            else:
                items, t_acq = self.queue.pop(self._fetch, t, home=worker)
            n = items.size
            if n == 0:
                self.idle.append(worker)
                return False
        seq = self.pop_seq + 1
        self.pop_seq = seq
        self.total_tasks += 1
        if self.sink is not None:
            self.sink.emit(TaskPop(t=t_acq, worker=worker, items=int(n)))
        if self.total_tasks > self.max_tasks:
            raise SchedulerError(
                f"run exceeded max_tasks={self.max_tasks}; "
                "the application appears not to converge"
            )
        edge_work, max_degree = self.kernel.work_estimate(items)
        # deterministic per-task latency jitter (cache misses, scheduling
        # noise); reuses the pop-stagger hash (inlined) on a different stream
        h = (worker * 2654435761 + (seq + 7919) * 40503 + 12345) & 0xFFFF
        finish = self._cost_fn(
            t_acq, int(n), edge_work, max_degree, 1.0 + self._dur_jit * (h / 65536.0)
        )
        t_read = finish - self.read_lead_ns
        if t_read < t_acq:
            t_read = t_acq
        # inlined loop.schedule: t_read >= t_acq >= loop.now by construction
        # (queue acquisition and cost model never move time backwards).
        # Events are flat 6-tuples (t, seq, tag, worker, items, x) — one
        # allocation per event instead of a nested payload tuple; the unique
        # seq means heap comparisons never reach the later fields.
        loop = self.loop
        s = loop._seq
        heappush(loop._heap, (t_read, s, _READ, worker, items, finish))
        loop._seq = s + 1
        self.in_flight += 1
        return True

    def wake_idle(self, t: float) -> None:
        """Hand queued work to parked workers."""
        while self.idle and self.queue.size > 0:
            worker = self.idle.pop()
            if not self.try_pop(worker, t + self.pop_stagger(worker, self.pop_seq)):
                break

    def seed_workers(self, t: float) -> None:
        """Initial wave: give every worker that can be fed a first pop."""
        needed = min(self.slots, max(1, -(-self.queue.size // self.config.fetch_size)))
        for w in range(self.slots):
            if w < needed:
                self.try_pop(w, t + self.pop_stagger(w, 0))
            else:
                self.idle.append(w)

    def drain_events(self, *, push_to_queue: bool, stop_when=None) -> float:
        """Process READ/DONE events until the loop empties.

        ``push_to_queue=False`` (discrete) collects pushes for the next
        generation instead of making them immediately poppable.

        ``stop_when`` (checked after each completion) stops the engine
        from issuing *new* pops once true; in-flight tasks still retire,
        so the loop drains to a consistent stop.  Used by the hybrid
        policy to interrupt a persistent phase at its high watermark.

        The inner loop itself lives in :mod:`repro.core.backend` — this
        method dispatches to the backend the configuration selected
        (``"event"`` by default); every registered backend produces the
        same event stream bit-for-bit.
        """
        return self._backend.drain(
            self, push_to_queue=push_to_queue, stop_when=stop_when
        )

    # ------------------------------------------------------------------
    def build_result(
        self,
        *,
        elapsed_ns: float,
        kernel_launches: int,
        generations: int,
        policy_switches: int = 0,
    ) -> RunResult:
        """Materialise the final :class:`RunResult` from the accumulators.

        Absorbs the live queue's counters first, so call exactly once,
        after the policy has quiesced.
        """
        self.absorb_queue_stats()
        return RunResult(
            elapsed_ns=elapsed_ns,
            total_tasks=self.total_tasks,
            items_retired=self.items_retired,
            work_units=self.work_units,
            kernel_launches=kernel_launches,
            generations=generations,
            worker_slots=self.slots,
            occupancy_fraction=self.occupancy,
            queue_contention_ns=self.q_contention_ns,
            empty_pops=self.q_empty_pops,
            mem_utilization=self.mem.utilization(elapsed_ns) if elapsed_ns > 0 else 0.0,
            queue_pushes=self.q_pushes,
            queue_pops=self.q_pops,
            steals=self.q_steals,
            failed_steals=self.q_failed_steals,
            # distinct-item totals: a banked re-push counted the stolen
            # surplus a second time in both raw totals (once at the victim's
            # pop, once at the thief's push), so subtract it from both sides
            # of the conservation equation
            queue_items_pushed=self.q_items_pushed - self.q_banked_items,
            queue_items_popped=self.q_items_popped - self.q_banked_items,
            queue_items_banked=self.q_banked_items,
            policy_switches=policy_switches,
            devices=self.config.devices,
            remote_pushes=self.q_remote_pushes,
            remote_items=self.q_remote_items,
            remote_steals=self.q_remote_steals,
            comm_ns=self.q_comm_ns,
            device_stats=self.device_stats,
            trace=self.trace,
            config_name=self.config.name,
        )
