"""Strategy-agnostic execution machinery shared by every kernel policy.

Historically the scheduler was two monolithic functions
(``run_persistent`` / ``run_discrete``) sharing a private ``_Engine``
class.  This module is that machinery factored out behind a neutral
surface so that *policies* (:mod:`repro.core.policy`) can compose it:

* :class:`ExecutionEngine` owns the simulated hardware (event loop,
  bandwidth server, occupancy-derived worker slots), the live
  :class:`~repro.queueing.protocol.Worklist`, and the run accumulators;
* the engine is **mode-switchable**: :meth:`ExecutionEngine.set_mode`
  selects the read-instant lead and pop-jitter amplitude that distinguish
  persistent from discrete execution (Section 6.3 semantics), so one
  engine instance can serve a policy that alternates between them;
* :meth:`ExecutionEngine.drain_events` accepts an optional ``stop_when``
  predicate: when it fires, the engine stops issuing new pops and lets
  in-flight tasks retire — the mechanism the hybrid policy uses to
  interrupt a persistent phase whose queue has grown past its watermark;
* every pop-issue instant flows through :meth:`ExecutionEngine.pop_stagger`,
  which adds the mode's hardware-scheduler jitter plus an optional
  **perturbation hook** (``perturb=``) — a deterministic, non-negative
  extra delay per ``(worker, seq)`` that the schedule-perturbation fuzzer
  (:mod:`repro.check.fuzz`) uses to explore alternative, model-legal
  interleavings without touching any other mechanism.

Everything observable (event order, timestamps, counters) is identical to
the pre-refactor ``_Engine`` for the persistent and discrete policies;
``tests/test_equivalence.py`` pins that with obs digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import AtosConfig
from repro.core.kernel import TaskKernel
from repro.obs.events import (
    EventSink,
    TaskComplete,
    TaskPop,
    TaskRead,
)
from repro.queueing.broker import QueueBroker
from repro.queueing.protocol import Worklist
from repro.queueing.stealing import StealingWorklist
from repro.sim.cost import task_cost
from repro.sim.engine import EventLoop
from repro.sim.memory import BandwidthServer
from repro.sim.occupancy import occupancy_for
from repro.sim.spec import GpuSpec
from repro.sim.trace import ThroughputTrace

__all__ = ["RunResult", "SchedulerError", "ExecutionEngine"]

_READ = 0
_DONE = 1


class SchedulerError(RuntimeError):
    """Raised when a run exceeds its task budget (diverging application)."""


@dataclass
class RunResult:
    """Everything measured during one simulated kernel execution."""

    elapsed_ns: float
    total_tasks: int
    items_retired: int
    work_units: float
    kernel_launches: int
    generations: int
    worker_slots: int
    occupancy_fraction: float
    queue_contention_ns: float
    empty_pops: int
    mem_utilization: float
    #: queue-operation counters aggregated over every queue the run used
    #: (discrete strategies create one queue per generation; all of them
    #: are accumulated, not just the last)
    queue_pushes: int = 0
    queue_pops: int = 0
    #: work-stealing counters (zero under the shared-queue worklist)
    steals: int = 0
    failed_steals: int = 0
    #: item-level conservation counters (pushes/pops above count *operations*;
    #: these count *items*, so ``queue_items_pushed >= items_retired`` must
    #: hold for any run — every retired item was pushed exactly once, while
    #: items can be pushed and then drained at a policy switch or left behind)
    queue_items_pushed: int = 0
    queue_items_popped: int = 0
    #: hybrid strategy: number of discrete↔persistent crossovers
    policy_switches: int = 0
    trace: ThroughputTrace = field(repr=False, default_factory=ThroughputTrace)
    config_name: str = ""

    @property
    def elapsed_ms(self) -> float:
        """Simulated runtime in milliseconds (the paper's Table 1 unit)."""
        return self.elapsed_ns / 1e6


def _worker_slots(spec: GpuSpec, config: AtosConfig) -> tuple[int, float]:
    """Resident worker count and occupancy fraction for a configuration."""
    occ = occupancy_for(
        spec,
        threads_per_cta=config.occupancy_cta_threads,
        registers_per_thread=config.registers_per_thread,
        shared_mem_per_cta=config.shared_mem_per_cta,
    )
    if config.is_cta_worker:
        return occ.total_ctas, occ.occupancy_fraction
    if config.is_warp_worker:
        return occ.total_warps, occ.occupancy_fraction
    return occ.threads_per_sm * spec.num_sms, occ.occupancy_fraction


def _jitter(worker: int, seq: int, amplitude: float) -> float:
    """Deterministic pseudo-random stagger for persistent-kernel pops."""
    if amplitude <= 0.0:
        return 0.0
    h = (worker * 2654435761 + seq * 40503 + 12345) & 0xFFFF
    return (h / 65536.0) * amplitude


class ExecutionEngine:
    """Shared simulated-GPU machinery every execution policy drives.

    A policy owns the control flow (when to launch, barrier, create
    queues, quiesce); the engine owns the mechanism (pops, cost model,
    read/complete event processing, counters).  The engine starts with no
    mode — a policy must call :meth:`set_mode` before seeding work.
    """

    def __init__(
        self,
        kernel: TaskKernel,
        config: AtosConfig,
        spec: GpuSpec,
        max_tasks: int,
        *,
        sink: EventSink | None = None,
        perturb: Callable[[int, int], float] | None = None,
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.spec = spec
        self.max_tasks = max_tasks
        self.sink = sink
        self.perturb = perturb
        self.mem = BandwidthServer(spec.mem_edges_per_ns)
        self.loop = EventLoop()
        self.trace = ThroughputTrace()
        self.slots, self.occupancy = _worker_slots(spec, config)
        self.idle: list[int] = []
        self.in_flight = 0
        self.total_tasks = 0
        self.items_retired = 0
        self.work_units = 0.0
        self.pop_seq = 0
        self.queue: Worklist | None = None  # set per run/generation
        self.pending_pushes: list[np.ndarray] = []  # discrete: next generation
        # mode-dependent knobs; set_mode() must run before any pop
        self.read_lead_ns = 0.0
        self.jitter_amp = 0.0
        # queue-stats accumulators: discrete runs replace the queue every
        # generation, so counters are absorbed before each replacement
        # (previously the per-generation stats were discarded with the
        # queue and run_discrete reported empty_pops=0 unconditionally)
        self.q_empty_pops = 0
        self.q_pushes = 0
        self.q_pops = 0
        self.q_contention_ns = 0.0
        self.q_steals = 0
        self.q_failed_steals = 0
        self.q_items_pushed = 0
        self.q_items_popped = 0

    # ------------------------------------------------------------------
    def set_mode(self, *, persistent: bool) -> None:
        """Select the read-instant and jitter semantics (Section 6.3).

        Persistent workers read ``read_lead_ns`` before completion and pop
        with hardware-scheduler jitter; discrete waves read at their pop
        instant and issue in strict queue order with no stagger.
        """
        if persistent:
            self.read_lead_ns = self.spec.read_lead_ns
            self.jitter_amp = self.spec.persistent_jitter_ns
        else:
            self.read_lead_ns = self.spec.discrete_read_lead_ns
            self.jitter_amp = 0.0

    # ------------------------------------------------------------------
    def absorb_queue_stats(self) -> None:
        """Fold the current queue's counters into the run accumulators."""
        q = self.queue
        if q is None:
            return
        s = q.stats()
        self.q_empty_pops += s.empty_pops
        self.q_pushes += s.pushes
        self.q_pops += s.pops
        self.q_contention_ns += s.contention_wait_ns
        self.q_steals += s.steals
        self.q_failed_steals += s.failed_steals
        self.q_items_pushed += s.items_pushed
        self.q_items_popped += s.items_popped

    def new_queue(self, name: str) -> Worklist:
        self.absorb_queue_stats()  # retire the previous generation's queue
        if self.config.worklist == "stealing":
            self.queue = StealingWorklist(
                max(2, self.config.num_queues),
                capacity=self.config.queue_capacity,
                atomic_ns=self.spec.atomic_queue_ns,
                name=name,
                sink=self.sink,
            )
        else:
            self.queue = QueueBroker(
                self.config.num_queues,
                capacity=self.config.queue_capacity,
                atomic_ns=self.spec.atomic_queue_ns,
                name=name,
                sink=self.sink,
            )
        return self.queue

    def pop_stagger(self, worker: int, seq: int) -> float:
        """Delay before a worker's next pop is issued.

        The base term is the mode's hardware-scheduler jitter
        (:func:`_jitter`; zero in discrete mode).  The optional
        ``perturb`` hook adds a further non-negative, deterministic delay —
        the fuzzer's lever for exploring alternative pop interleavings.
        Negative hook values are clamped: the event loop cannot schedule
        into the past, and the model only permits *delaying* a pop.
        """
        jit = _jitter(worker, seq, self.jitter_amp)
        if self.perturb is not None:
            jit += max(0.0, float(self.perturb(worker, seq)))
        return jit

    def try_pop(self, worker: int, t: float) -> bool:
        """Attempt a pop; on success schedules the task's READ event."""
        items, t_acq = self.queue.pop(self.config.fetch_size, t, home=worker)
        if items.size == 0:
            self.idle.append(worker)
            return False
        self.pop_seq += 1
        self.total_tasks += 1
        if self.sink is not None:
            self.sink.emit(TaskPop(t=t_acq, worker=worker, items=int(items.size)))
        if self.total_tasks > self.max_tasks:
            raise SchedulerError(
                f"run exceeded max_tasks={self.max_tasks}; "
                "the application appears not to converge"
            )
        edge_work, max_degree = self.kernel.work_estimate(items)
        # deterministic per-task latency jitter (cache misses, scheduling
        # noise); reuses the pop-stagger hash on a different stream
        u = _jitter(worker, self.pop_seq + 7919, 1.0)
        cost = task_cost(
            self.spec,
            self.mem,
            start=t_acq,
            worker_threads=self.config.worker_threads,
            num_items=int(items.size),
            edge_counts_sum=edge_work,
            max_degree=max_degree,
            use_internal_lb=self.config.internal_lb,
            latency_scale=1.0 + self.spec.duration_jitter * u,
        )
        t_read = max(t_acq, cost.finish_time - self.read_lead_ns)
        self.loop.schedule(t_read, (_READ, worker, items, cost.finish_time))
        self.in_flight += 1
        return True

    def wake_idle(self, t: float) -> None:
        """Hand queued work to parked workers."""
        while self.idle and self.queue.size > 0:
            worker = self.idle.pop()
            if not self.try_pop(worker, t + self.pop_stagger(worker, self.pop_seq)):
                break

    def seed_workers(self, t: float) -> None:
        """Initial wave: give every worker that can be fed a first pop."""
        needed = min(self.slots, max(1, -(-self.queue.size // self.config.fetch_size)))
        for w in range(self.slots):
            if w < needed:
                self.try_pop(w, t + self.pop_stagger(w, 0))
            else:
                self.idle.append(w)

    def drain_events(self, *, push_to_queue: bool, stop_when=None) -> float:
        """Process READ/DONE events until the loop empties.

        ``push_to_queue=False`` (discrete) collects pushes for the next
        generation instead of making them immediately poppable.

        ``stop_when`` (checked after each completion) stops the engine
        from issuing *new* pops once true; in-flight tasks still retire,
        so the loop drains to a consistent stop.  Used by the hybrid
        policy to interrupt a persistent phase at its high watermark.
        """
        end = self.loop.now
        stopped = False
        while self.loop:
            t, ev = self.loop.pop()
            if ev[0] == _READ:
                _, worker, items, finish = ev
                if self.sink is not None:
                    self.sink.emit(TaskRead(t=t, worker=worker, items=int(items.size)))
                payload = self.kernel.on_read(items, t)
                self.loop.schedule(finish, (_DONE, worker, items, payload))
                continue
            _, worker, items, payload = ev
            self.in_flight -= 1
            result = self.kernel.on_complete(items, payload, t)
            end = max(end, t)
            self.items_retired += result.items_retired
            self.work_units += result.work_units
            self.trace.record(t, result.items_retired, result.work_units)
            if self.sink is not None:
                self.sink.emit(
                    TaskComplete(
                        t=t,
                        worker=worker,
                        items=int(items.size),
                        retired=result.items_retired,
                        pushed=int(result.new_items.size),
                        work=result.work_units,
                    )
                )
            if result.new_items.size:
                if push_to_queue:
                    self.queue.push(result.new_items, t, home=worker)
                else:
                    self.pending_pushes.append(result.new_items)
            if stop_when is not None and not stopped and stop_when():
                stopped = True
            if stopped:
                self.idle.append(worker)
                continue
            jit = self.pop_stagger(worker, self.pop_seq)
            self.try_pop(worker, t + jit)
            self.wake_idle(t)
        assert self.in_flight == 0, "event loop drained with tasks in flight"
        return end

    # ------------------------------------------------------------------
    def build_result(
        self,
        *,
        elapsed_ns: float,
        kernel_launches: int,
        generations: int,
        policy_switches: int = 0,
    ) -> RunResult:
        """Materialise the final :class:`RunResult` from the accumulators.

        Absorbs the live queue's counters first, so call exactly once,
        after the policy has quiesced.
        """
        self.absorb_queue_stats()
        return RunResult(
            elapsed_ns=elapsed_ns,
            total_tasks=self.total_tasks,
            items_retired=self.items_retired,
            work_units=self.work_units,
            kernel_launches=kernel_launches,
            generations=generations,
            worker_slots=self.slots,
            occupancy_fraction=self.occupancy,
            queue_contention_ns=self.q_contention_ns,
            empty_pops=self.q_empty_pops,
            mem_utilization=self.mem.utilization(elapsed_ns) if elapsed_ns > 0 else 0.0,
            queue_pushes=self.q_pushes,
            queue_pops=self.q_pops,
            steals=self.q_steals,
            failed_steals=self.q_failed_steals,
            queue_items_pushed=self.q_items_pushed,
            queue_items_popped=self.q_items_popped,
            policy_switches=policy_switches,
            trace=self.trace,
            config_name=self.config.name,
        )
