"""The Atos runtime facade: run a task kernel under a kernel strategy.

This is the simulation analogue of the paper's Listing 2::

    for each worker:
        while not queue.empty():
            task = queue.concurrent_pop(task.size())
            new_tasks = f(task)
            queue.concurrent_push(new_tasks)

Workers are occupancy-derived slots.  A free worker pops up to
``fetch_size`` items (serializing on the queue atomic), the cost model
assigns a duration (latency term vs. shared-bandwidth term), the
application's ``on_read`` observes shared state at the task's *read
instant*, and at completion ``on_complete`` applies writes and pushes
follow-on work.

Read-instant semantics (the Section 6.3 mechanism):

* **persistent** — a task's reads are serviced ``read_lead_ns`` before its
  completion.  Because completions serialize on the shared memory server,
  consecutive pops observe each other's writes unless their service slots
  are within the read-lead window — pop order is largely *decoupled* from
  visibility order, like warps under a hardware scheduler.
* **discrete** — every task reads at its pop instant, and the launch wave
  pops en masse at generation start, so an entire wave shares one stale
  snapshot — like CTAs of a CPU-launched kernel consuming a frontier array
  in launch order.

The persistent strategy pays one kernel launch and runs to quiescence; the
discrete strategy snapshots the queue into generations with launch+barrier
around each, preserving queue order; the hybrid strategy alternates
between the two at frontier watermarks.

Mechanically this module is now a thin facade: the machinery lives in
:mod:`repro.core.engine` (the strategy-agnostic :class:`ExecutionEngine`)
and the per-strategy control flow in :mod:`repro.core.policy` (the
``ExecutionPolicy`` registry).  :func:`run` resolves the policy from
``config.strategy``; :func:`run_persistent` / :func:`run_discrete` /
:func:`run_hybrid` force a specific policy regardless of the config's
strategy field (useful for sweeps that hold everything else fixed).
"""

from __future__ import annotations

from repro.core.config import AtosConfig
from repro.core.engine import RunResult, SchedulerError, _jitter, _worker_slots  # noqa: F401
from repro.core.kernel import TaskKernel
from repro.core.policy import (
    DiscretePolicy,
    HybridPolicy,
    PersistentPolicy,
    run_policy,
)
from repro.obs.events import EventSink
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = [
    "RunResult",
    "run",
    "run_persistent",
    "run_discrete",
    "run_hybrid",
    "SchedulerError",
]


def run(
    kernel: TaskKernel,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink: EventSink | None = None,
) -> RunResult:
    """Execute ``kernel`` under ``config`` (dispatches on kernel strategy).

    ``sink`` attaches an observability sink (e.g.
    :class:`repro.obs.Collector`); ``None`` — the default — disables event
    emission entirely.
    """
    return run_policy(kernel, config, spec=spec, max_tasks=max_tasks, sink=sink)


def run_persistent(
    kernel: TaskKernel,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink: EventSink | None = None,
) -> RunResult:
    """Single launch; workers loop on the shared queue until quiescence."""
    return run_policy(
        kernel, config, policy=PersistentPolicy(), spec=spec, max_tasks=max_tasks, sink=sink
    )


def run_discrete(
    kernel: TaskKernel,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink: EventSink | None = None,
) -> RunResult:
    """One kernel per queue generation, global barrier in between.

    Within a generation, tasks issue to workers in strict queue order with
    no scheduler jitter — CPU-launched kernels run in launch order
    (Section 6.3) — and pushes go to the *next* generation's queue.
    """
    return run_policy(
        kernel, config, policy=DiscretePolicy(), spec=spec, max_tasks=max_tasks, sink=sink
    )


def run_hybrid(
    kernel: TaskKernel,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink: EventSink | None = None,
) -> RunResult:
    """Adaptive strategy: discrete while wide, persistent once narrow."""
    return run_policy(
        kernel, config, policy=HybridPolicy(), spec=spec, max_tasks=max_tasks, sink=sink
    )
