"""The Atos runtime: persistent and discrete task scheduling.

This is the simulation analogue of the paper's Listing 2::

    for each worker:
        while not queue.empty():
            task = queue.concurrent_pop(task.size())
            new_tasks = f(task)
            queue.concurrent_push(new_tasks)

Workers are occupancy-derived slots.  A free worker pops up to
``fetch_size`` items (serializing on the queue atomic), the cost model
assigns a duration (latency term vs. shared-bandwidth term), the
application's ``on_read`` observes shared state at the task's *read
instant*, and at completion ``on_complete`` applies writes and pushes
follow-on work.

Read-instant semantics (the Section 6.3 mechanism):

* **persistent** — a task's reads are serviced ``read_lead_ns`` before its
  completion.  Because completions serialize on the shared memory server,
  consecutive pops observe each other's writes unless their service slots
  are within the read-lead window — pop order is largely *decoupled* from
  visibility order, like warps under a hardware scheduler.
* **discrete** — every task reads at its pop instant, and the launch wave
  pops en masse at generation start, so an entire wave shares one stale
  snapshot — like CTAs of a CPU-launched kernel consuming a frontier array
  in launch order.

The persistent strategy pays one kernel launch and runs to quiescence; the
discrete strategy snapshots the queue into generations with launch+barrier
around each, preserving queue order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import AtosConfig
from repro.core.kernel import TaskKernel
from repro.obs.events import (
    Barrier,
    EventSink,
    GenerationEnd,
    GenerationStart,
    KernelLaunch,
    TaskComplete,
    TaskPop,
    TaskRead,
)
from repro.queueing.broker import QueueBroker
from repro.queueing.stealing import StealingWorklist
from repro.sim.cost import task_cost
from repro.sim.engine import EventLoop
from repro.sim.memory import BandwidthServer
from repro.sim.occupancy import occupancy_for
from repro.sim.spec import V100_SPEC, GpuSpec
from repro.sim.trace import ThroughputTrace

__all__ = ["RunResult", "run", "run_persistent", "run_discrete", "SchedulerError"]

_READ = 0
_DONE = 1


class SchedulerError(RuntimeError):
    """Raised when a run exceeds its task budget (diverging application)."""


@dataclass
class RunResult:
    """Everything measured during one simulated kernel execution."""

    elapsed_ns: float
    total_tasks: int
    items_retired: int
    work_units: float
    kernel_launches: int
    generations: int
    worker_slots: int
    occupancy_fraction: float
    queue_contention_ns: float
    empty_pops: int
    mem_utilization: float
    #: queue-operation counters aggregated over every queue the run used
    #: (discrete strategies create one queue per generation; all of them
    #: are accumulated, not just the last)
    queue_pushes: int = 0
    queue_pops: int = 0
    #: work-stealing counters (zero under the shared-queue worklist)
    steals: int = 0
    failed_steals: int = 0
    trace: ThroughputTrace = field(repr=False, default_factory=ThroughputTrace)
    config_name: str = ""

    @property
    def elapsed_ms(self) -> float:
        """Simulated runtime in milliseconds (the paper's Table 1 unit)."""
        return self.elapsed_ns / 1e6


def _worker_slots(spec: GpuSpec, config: AtosConfig) -> tuple[int, float]:
    """Resident worker count and occupancy fraction for a configuration."""
    occ = occupancy_for(
        spec,
        threads_per_cta=config.occupancy_cta_threads,
        registers_per_thread=config.registers_per_thread,
        shared_mem_per_cta=config.shared_mem_per_cta,
    )
    if config.is_cta_worker:
        return occ.total_ctas, occ.occupancy_fraction
    if config.is_warp_worker:
        return occ.total_warps, occ.occupancy_fraction
    return occ.threads_per_sm * spec.num_sms, occ.occupancy_fraction


def _jitter(worker: int, seq: int, amplitude: float) -> float:
    """Deterministic pseudo-random stagger for persistent-kernel pops."""
    if amplitude <= 0.0:
        return 0.0
    h = (worker * 2654435761 + seq * 40503 + 12345) & 0xFFFF
    return (h / 65536.0) * amplitude


def run(
    kernel: TaskKernel,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink: EventSink | None = None,
) -> RunResult:
    """Execute ``kernel`` under ``config`` (dispatches on kernel strategy).

    ``sink`` attaches an observability sink (e.g.
    :class:`repro.obs.Collector`); ``None`` — the default — disables event
    emission entirely.
    """
    if config.is_persistent:
        return run_persistent(kernel, config, spec=spec, max_tasks=max_tasks, sink=sink)
    return run_discrete(kernel, config, spec=spec, max_tasks=max_tasks, sink=sink)


class _Engine:
    """Shared machinery of the persistent and discrete strategies."""

    def __init__(
        self,
        kernel: TaskKernel,
        config: AtosConfig,
        spec: GpuSpec,
        max_tasks: int,
        *,
        persistent: bool,
        sink: EventSink | None = None,
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.spec = spec
        self.max_tasks = max_tasks
        self.persistent = persistent
        self.sink = sink
        self.mem = BandwidthServer(spec.mem_edges_per_ns)
        self.loop = EventLoop()
        self.trace = ThroughputTrace()
        self.slots, self.occupancy = _worker_slots(spec, config)
        self.idle: list[int] = []
        self.in_flight = 0
        self.total_tasks = 0
        self.items_retired = 0
        self.work_units = 0.0
        self.pop_seq = 0
        self.queue: QueueBroker | None = None  # set per run/generation
        self.pending_pushes: list[np.ndarray] = []  # discrete: next generation
        # queue-stats accumulators: discrete runs replace the queue every
        # generation, so counters are absorbed before each replacement
        # (previously the per-generation stats were discarded with the
        # queue and run_discrete reported empty_pops=0 unconditionally)
        self.q_empty_pops = 0
        self.q_pushes = 0
        self.q_pops = 0
        self.q_contention_ns = 0.0
        self.q_steals = 0
        self.q_failed_steals = 0

    # ------------------------------------------------------------------
    def absorb_queue_stats(self) -> None:
        """Fold the current queue's counters into the run accumulators."""
        q = self.queue
        if q is None:
            return
        backing = q.queues if hasattr(q, "queues") else q.deques
        for b in backing:
            self.q_empty_pops += b.stats.empty_pops
            self.q_pushes += b.stats.pushes
            self.q_pops += b.stats.pops
        self.q_contention_ns += q.total_contention_wait()
        self.q_steals += getattr(q, "steals", 0)
        self.q_failed_steals += getattr(q, "failed_steals", 0)

    def new_queue(self, name: str):
        self.absorb_queue_stats()  # retire the previous generation's queue
        if self.config.worklist == "stealing":
            self.queue = StealingWorklist(
                max(2, self.config.num_queues),
                capacity=self.config.queue_capacity,
                atomic_ns=self.spec.atomic_queue_ns,
                name=name,
                sink=self.sink,
            )
        else:
            self.queue = QueueBroker(
                self.config.num_queues,
                capacity=self.config.queue_capacity,
                atomic_ns=self.spec.atomic_queue_ns,
                name=name,
                sink=self.sink,
            )
        return self.queue

    def try_pop(self, worker: int, t: float) -> bool:
        """Attempt a pop; on success schedules the task's READ event."""
        items, t_acq = self.queue.pop(self.config.fetch_size, t, home=worker)
        if items.size == 0:
            self.idle.append(worker)
            return False
        self.pop_seq += 1
        self.total_tasks += 1
        if self.sink is not None:
            self.sink.emit(TaskPop(t=t_acq, worker=worker, items=int(items.size)))
        if self.total_tasks > self.max_tasks:
            raise SchedulerError(
                f"run exceeded max_tasks={self.max_tasks}; "
                "the application appears not to converge"
            )
        edge_work, max_degree = self.kernel.work_estimate(items)
        # deterministic per-task latency jitter (cache misses, scheduling
        # noise); reuses the pop-stagger hash on a different stream
        u = _jitter(worker, self.pop_seq + 7919, 1.0)
        cost = task_cost(
            self.spec,
            self.mem,
            start=t_acq,
            worker_threads=self.config.worker_threads,
            num_items=int(items.size),
            edge_counts_sum=edge_work,
            max_degree=max_degree,
            use_internal_lb=self.config.internal_lb,
            latency_scale=1.0 + self.spec.duration_jitter * u,
        )
        lead = (
            self.spec.read_lead_ns
            if self.persistent
            else self.spec.discrete_read_lead_ns
        )
        t_read = max(t_acq, cost.finish_time - lead)
        self.loop.schedule(t_read, (_READ, worker, items, cost.finish_time))
        self.in_flight += 1
        return True

    def wake_idle(self, t: float) -> None:
        """Hand queued work to parked workers."""
        jitter_amp = self.spec.persistent_jitter_ns if self.persistent else 0.0
        while self.idle and self.queue.size > 0:
            worker = self.idle.pop()
            if not self.try_pop(worker, t + _jitter(worker, self.pop_seq, jitter_amp)):
                break

    def seed_workers(self, t: float) -> None:
        """Initial wave: give every worker that can be fed a first pop."""
        jitter_amp = self.spec.persistent_jitter_ns if self.persistent else 0.0
        needed = min(self.slots, max(1, -(-self.queue.size // self.config.fetch_size)))
        for w in range(self.slots):
            if w < needed:
                self.try_pop(w, t + _jitter(w, 0, jitter_amp))
            else:
                self.idle.append(w)

    def drain_events(self, *, push_to_queue: bool) -> float:
        """Process READ/DONE events until the loop empties.

        ``push_to_queue=False`` (discrete) collects pushes for the next
        generation instead of making them immediately poppable.
        """
        end = self.loop.now
        while self.loop:
            t, ev = self.loop.pop()
            if ev[0] == _READ:
                _, worker, items, finish = ev
                if self.sink is not None:
                    self.sink.emit(TaskRead(t=t, worker=worker, items=int(items.size)))
                payload = self.kernel.on_read(items, t)
                self.loop.schedule(finish, (_DONE, worker, items, payload))
                continue
            _, worker, items, payload = ev
            self.in_flight -= 1
            result = self.kernel.on_complete(items, payload, t)
            end = max(end, t)
            self.items_retired += result.items_retired
            self.work_units += result.work_units
            self.trace.record(t, result.items_retired, result.work_units)
            if self.sink is not None:
                self.sink.emit(
                    TaskComplete(
                        t=t,
                        worker=worker,
                        items=int(items.size),
                        retired=result.items_retired,
                        pushed=int(result.new_items.size),
                        work=result.work_units,
                    )
                )
            if result.new_items.size:
                if push_to_queue:
                    self.queue.push(result.new_items, t, home=worker)
                else:
                    self.pending_pushes.append(result.new_items)
            jit = _jitter(worker, self.pop_seq, self.spec.persistent_jitter_ns) if self.persistent else 0.0
            self.try_pop(worker, t + jit)
            self.wake_idle(t)
        assert self.in_flight == 0, "event loop drained with tasks in flight"
        return end


# ---------------------------------------------------------------------------
# Persistent strategy
# ---------------------------------------------------------------------------

def run_persistent(
    kernel: TaskKernel,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink: EventSink | None = None,
) -> RunResult:
    """Single launch; workers loop on the shared queue until quiescence."""
    eng = _Engine(kernel, config, spec, max_tasks, persistent=True, sink=sink)
    queue = eng.new_queue(f"{config.name}-wl")
    queue.push(kernel.initial_items(), 0.0, home=0)

    t0 = spec.kernel_launch_ns
    if sink is not None:
        sink.emit(KernelLaunch(t=0.0, duration_ns=t0))
    eng.seed_workers(t0)
    end = t0
    while True:
        end = max(end, eng.drain_events(push_to_queue=True))
        extra = kernel.final_check(end)
        if extra.size == 0:
            break
        queue.push(extra, end, home=0)
        eng.wake_idle(end)
        if not eng.loop:
            break

    eng.absorb_queue_stats()
    return RunResult(
        elapsed_ns=end,
        total_tasks=eng.total_tasks,
        items_retired=eng.items_retired,
        work_units=eng.work_units,
        kernel_launches=1,
        generations=1,
        worker_slots=eng.slots,
        occupancy_fraction=eng.occupancy,
        queue_contention_ns=eng.q_contention_ns,
        empty_pops=eng.q_empty_pops,
        mem_utilization=eng.mem.utilization(end),
        queue_pushes=eng.q_pushes,
        queue_pops=eng.q_pops,
        steals=eng.q_steals,
        failed_steals=eng.q_failed_steals,
        trace=eng.trace,
        config_name=config.name,
    )


# ---------------------------------------------------------------------------
# Discrete strategy
# ---------------------------------------------------------------------------

def run_discrete(
    kernel: TaskKernel,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink: EventSink | None = None,
) -> RunResult:
    """One kernel per queue generation, global barrier in between.

    Within a generation, tasks issue to workers in strict queue order with
    no scheduler jitter — CPU-launched kernels run in launch order
    (Section 6.3) — and pushes go to the *next* generation's queue.
    """
    eng = _Engine(kernel, config, spec, max_tasks, persistent=False, sink=sink)
    t = 0.0
    launches = 0
    generations = 0
    current = kernel.initial_items()

    while True:
        if current.size == 0:
            extra = kernel.final_check(t)
            if extra.size == 0:
                break
            current = extra
        generations += 1
        launches += 1
        if sink is not None:
            sink.emit(KernelLaunch(t=t, duration_ns=spec.kernel_launch_ns))
        t += spec.kernel_launch_ns
        if sink is not None:
            sink.emit(GenerationStart(t=t, generation=generations, items=int(current.size)))
        queue = eng.new_queue(f"{config.name}-gen{generations}")
        queue.push(current, t, home=0)
        # a fresh event clock per generation would break the shared
        # bandwidth server, so the loop keeps global time; workers all
        # start at the generation launch instant
        eng.idle = []
        for w in range(eng.slots):
            eng.idle.append(w)
        # issue strictly in order: lowest worker ids pop first, same time
        eng.idle.reverse()  # wake_idle pops from the end
        eng.wake_idle(t)
        gen_end = eng.drain_events(push_to_queue=False)
        if sink is not None:
            sink.emit(GenerationEnd(t=gen_end, generation=generations))
            sink.emit(Barrier(t=max(t, gen_end), duration_ns=spec.barrier_ns))
        t = max(t, gen_end) + spec.barrier_ns
        current = (
            np.concatenate(eng.pending_pushes)
            if eng.pending_pushes
            else np.empty(0, dtype=np.int64)
        )
        eng.pending_pushes = []
        # Workers whose pops fail at the end of a generation run the
        # application's f2 function (paper Listing 3) — for PageRank that is
        # the residual check scan.  Kernels express it via the optional
        # ``generation_check`` hook.
        gen_hook = getattr(kernel, "generation_check", None)
        if gen_hook is not None:
            extra = gen_hook(t)
            if extra.size:
                current = np.concatenate([current, extra])

    eng.absorb_queue_stats()  # the final generation's queue
    return RunResult(
        elapsed_ns=t,
        total_tasks=eng.total_tasks,
        items_retired=eng.items_retired,
        work_units=eng.work_units,
        kernel_launches=launches,
        generations=generations,
        worker_slots=eng.slots,
        occupancy_fraction=eng.occupancy,
        queue_contention_ns=eng.q_contention_ns,
        empty_pops=eng.q_empty_pops,
        mem_utilization=eng.mem.utilization(t) if t > 0 else 0.0,
        queue_pushes=eng.q_pushes,
        queue_pops=eng.q_pops,
        steals=eng.q_steals,
        failed_steals=eng.q_failed_steals,
        trace=eng.trace,
        config_name=config.name,
    )
