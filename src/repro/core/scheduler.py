"""The Atos runtime: persistent and discrete task scheduling.

This is the simulation analogue of the paper's Listing 2::

    for each worker:
        while not queue.empty():
            task = queue.concurrent_pop(task.size())
            new_tasks = f(task)
            queue.concurrent_push(new_tasks)

Workers are occupancy-derived slots.  A free worker pops up to
``fetch_size`` items (serializing on the queue atomic), the cost model
assigns a duration (latency term vs. shared-bandwidth term), the
application's ``on_read`` observes shared state at the task's *read
instant*, and at completion ``on_complete`` applies writes and pushes
follow-on work.

Read-instant semantics (the Section 6.3 mechanism):

* **persistent** — a task's reads are serviced ``read_lead_ns`` before its
  completion.  Because completions serialize on the shared memory server,
  consecutive pops observe each other's writes unless their service slots
  are within the read-lead window — pop order is largely *decoupled* from
  visibility order, like warps under a hardware scheduler.
* **discrete** — every task reads at its pop instant, and the launch wave
  pops en masse at generation start, so an entire wave shares one stale
  snapshot — like CTAs of a CPU-launched kernel consuming a frontier array
  in launch order.

The persistent strategy pays one kernel launch and runs to quiescence; the
discrete strategy snapshots the queue into generations with launch+barrier
around each, preserving queue order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import AtosConfig
from repro.core.kernel import TaskKernel
from repro.queueing.broker import QueueBroker
from repro.queueing.stealing import StealingWorklist
from repro.sim.cost import task_cost
from repro.sim.engine import EventLoop
from repro.sim.memory import BandwidthServer
from repro.sim.occupancy import occupancy_for
from repro.sim.spec import V100_SPEC, GpuSpec
from repro.sim.trace import ThroughputTrace

__all__ = ["RunResult", "run", "run_persistent", "run_discrete", "SchedulerError"]

_READ = 0
_DONE = 1


class SchedulerError(RuntimeError):
    """Raised when a run exceeds its task budget (diverging application)."""


@dataclass
class RunResult:
    """Everything measured during one simulated kernel execution."""

    elapsed_ns: float
    total_tasks: int
    items_retired: int
    work_units: float
    kernel_launches: int
    generations: int
    worker_slots: int
    occupancy_fraction: float
    queue_contention_ns: float
    empty_pops: int
    mem_utilization: float
    trace: ThroughputTrace = field(repr=False, default_factory=ThroughputTrace)
    config_name: str = ""

    @property
    def elapsed_ms(self) -> float:
        """Simulated runtime in milliseconds (the paper's Table 1 unit)."""
        return self.elapsed_ns / 1e6


def _worker_slots(spec: GpuSpec, config: AtosConfig) -> tuple[int, float]:
    """Resident worker count and occupancy fraction for a configuration."""
    occ = occupancy_for(
        spec,
        threads_per_cta=config.occupancy_cta_threads,
        registers_per_thread=config.registers_per_thread,
        shared_mem_per_cta=config.shared_mem_per_cta,
    )
    if config.is_cta_worker:
        return occ.total_ctas, occ.occupancy_fraction
    if config.is_warp_worker:
        return occ.total_warps, occ.occupancy_fraction
    return occ.threads_per_sm * spec.num_sms, occ.occupancy_fraction


def _jitter(worker: int, seq: int, amplitude: float) -> float:
    """Deterministic pseudo-random stagger for persistent-kernel pops."""
    if amplitude <= 0.0:
        return 0.0
    h = (worker * 2654435761 + seq * 40503 + 12345) & 0xFFFF
    return (h / 65536.0) * amplitude


def run(
    kernel: TaskKernel,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
) -> RunResult:
    """Execute ``kernel`` under ``config`` (dispatches on kernel strategy)."""
    if config.is_persistent:
        return run_persistent(kernel, config, spec=spec, max_tasks=max_tasks)
    return run_discrete(kernel, config, spec=spec, max_tasks=max_tasks)


class _Engine:
    """Shared machinery of the persistent and discrete strategies."""

    def __init__(
        self,
        kernel: TaskKernel,
        config: AtosConfig,
        spec: GpuSpec,
        max_tasks: int,
        *,
        persistent: bool,
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.spec = spec
        self.max_tasks = max_tasks
        self.persistent = persistent
        self.mem = BandwidthServer(spec.mem_edges_per_ns)
        self.loop = EventLoop()
        self.trace = ThroughputTrace()
        self.slots, self.occupancy = _worker_slots(spec, config)
        self.idle: list[int] = []
        self.in_flight = 0
        self.total_tasks = 0
        self.items_retired = 0
        self.work_units = 0.0
        self.pop_seq = 0
        self.queue: QueueBroker | None = None  # set per run/generation
        self.pending_pushes: list[np.ndarray] = []  # discrete: next generation

    # ------------------------------------------------------------------
    def new_queue(self, name: str):
        if self.config.worklist == "stealing":
            self.queue = StealingWorklist(
                max(2, self.config.num_queues),
                capacity=self.config.queue_capacity,
                atomic_ns=self.spec.atomic_queue_ns,
                name=name,
            )
        else:
            self.queue = QueueBroker(
                self.config.num_queues,
                capacity=self.config.queue_capacity,
                atomic_ns=self.spec.atomic_queue_ns,
                name=name,
            )
        return self.queue

    def try_pop(self, worker: int, t: float) -> bool:
        """Attempt a pop; on success schedules the task's READ event."""
        items, t_acq = self.queue.pop(self.config.fetch_size, t, home=worker)
        if items.size == 0:
            self.idle.append(worker)
            return False
        self.pop_seq += 1
        self.total_tasks += 1
        if self.total_tasks > self.max_tasks:
            raise SchedulerError(
                f"run exceeded max_tasks={self.max_tasks}; "
                "the application appears not to converge"
            )
        edge_work, max_degree = self.kernel.work_estimate(items)
        # deterministic per-task latency jitter (cache misses, scheduling
        # noise); reuses the pop-stagger hash on a different stream
        u = _jitter(worker, self.pop_seq + 7919, 1.0)
        cost = task_cost(
            self.spec,
            self.mem,
            start=t_acq,
            worker_threads=self.config.worker_threads,
            num_items=int(items.size),
            edge_counts_sum=edge_work,
            max_degree=max_degree,
            use_internal_lb=self.config.internal_lb,
            latency_scale=1.0 + self.spec.duration_jitter * u,
        )
        lead = (
            self.spec.read_lead_ns
            if self.persistent
            else self.spec.discrete_read_lead_ns
        )
        t_read = max(t_acq, cost.finish_time - lead)
        self.loop.schedule(t_read, (_READ, worker, items, cost.finish_time))
        self.in_flight += 1
        return True

    def wake_idle(self, t: float) -> None:
        """Hand queued work to parked workers."""
        jitter_amp = self.spec.persistent_jitter_ns if self.persistent else 0.0
        while self.idle and self.queue.size > 0:
            worker = self.idle.pop()
            if not self.try_pop(worker, t + _jitter(worker, self.pop_seq, jitter_amp)):
                break

    def seed_workers(self, t: float) -> None:
        """Initial wave: give every worker that can be fed a first pop."""
        jitter_amp = self.spec.persistent_jitter_ns if self.persistent else 0.0
        needed = min(self.slots, max(1, -(-self.queue.size // self.config.fetch_size)))
        for w in range(self.slots):
            if w < needed:
                self.try_pop(w, t + _jitter(w, 0, jitter_amp))
            else:
                self.idle.append(w)

    def drain_events(self, *, push_to_queue: bool) -> float:
        """Process READ/DONE events until the loop empties.

        ``push_to_queue=False`` (discrete) collects pushes for the next
        generation instead of making them immediately poppable.
        """
        end = self.loop.now
        while self.loop:
            t, ev = self.loop.pop()
            if ev[0] == _READ:
                _, worker, items, finish = ev
                payload = self.kernel.on_read(items, t)
                self.loop.schedule(finish, (_DONE, worker, items, payload))
                continue
            _, worker, items, payload = ev
            self.in_flight -= 1
            result = self.kernel.on_complete(items, payload, t)
            end = max(end, t)
            self.items_retired += result.items_retired
            self.work_units += result.work_units
            self.trace.record(t, result.items_retired, result.work_units)
            if result.new_items.size:
                if push_to_queue:
                    self.queue.push(result.new_items, t, home=worker)
                else:
                    self.pending_pushes.append(result.new_items)
            jit = _jitter(worker, self.pop_seq, self.spec.persistent_jitter_ns) if self.persistent else 0.0
            self.try_pop(worker, t + jit)
            self.wake_idle(t)
        assert self.in_flight == 0, "event loop drained with tasks in flight"
        return end


# ---------------------------------------------------------------------------
# Persistent strategy
# ---------------------------------------------------------------------------

def run_persistent(
    kernel: TaskKernel,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
) -> RunResult:
    """Single launch; workers loop on the shared queue until quiescence."""
    eng = _Engine(kernel, config, spec, max_tasks, persistent=True)
    queue = eng.new_queue(f"{config.name}-wl")
    queue.push(kernel.initial_items(), 0.0, home=0)

    t0 = spec.kernel_launch_ns
    eng.seed_workers(t0)
    end = t0
    while True:
        end = max(end, eng.drain_events(push_to_queue=True))
        extra = kernel.final_check(end)
        if extra.size == 0:
            break
        queue.push(extra, end, home=0)
        eng.wake_idle(end)
        if not eng.loop:
            break

    backing = queue.queues if hasattr(queue, "queues") else queue.deques
    empty_pops = sum(q.stats.empty_pops for q in backing)
    return RunResult(
        elapsed_ns=end,
        total_tasks=eng.total_tasks,
        items_retired=eng.items_retired,
        work_units=eng.work_units,
        kernel_launches=1,
        generations=1,
        worker_slots=eng.slots,
        occupancy_fraction=eng.occupancy,
        queue_contention_ns=queue.total_contention_wait(),
        empty_pops=empty_pops,
        mem_utilization=eng.mem.utilization(end),
        trace=eng.trace,
        config_name=config.name,
    )


# ---------------------------------------------------------------------------
# Discrete strategy
# ---------------------------------------------------------------------------

def run_discrete(
    kernel: TaskKernel,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
) -> RunResult:
    """One kernel per queue generation, global barrier in between.

    Within a generation, tasks issue to workers in strict queue order with
    no scheduler jitter — CPU-launched kernels run in launch order
    (Section 6.3) — and pushes go to the *next* generation's queue.
    """
    eng = _Engine(kernel, config, spec, max_tasks, persistent=False)
    t = 0.0
    launches = 0
    generations = 0
    contention = 0.0
    current = kernel.initial_items()

    while True:
        if current.size == 0:
            extra = kernel.final_check(t)
            if extra.size == 0:
                break
            current = extra
        generations += 1
        launches += 1
        t += spec.kernel_launch_ns
        queue = eng.new_queue(f"{config.name}-gen{generations}")
        queue.push(current, t, home=0)
        # a fresh event clock per generation would break the shared
        # bandwidth server, so the loop keeps global time; workers all
        # start at the generation launch instant
        eng.idle = []
        for w in range(eng.slots):
            eng.idle.append(w)
        # issue strictly in order: lowest worker ids pop first, same time
        eng.idle.reverse()  # wake_idle pops from the end
        eng.wake_idle(t)
        gen_end = eng.drain_events(push_to_queue=False)
        contention += queue.total_contention_wait()
        t = max(t, gen_end) + spec.barrier_ns
        current = (
            np.concatenate(eng.pending_pushes)
            if eng.pending_pushes
            else np.empty(0, dtype=np.int64)
        )
        eng.pending_pushes = []
        # Workers whose pops fail at the end of a generation run the
        # application's f2 function (paper Listing 3) — for PageRank that is
        # the residual check scan.  Kernels express it via the optional
        # ``generation_check`` hook.
        gen_hook = getattr(kernel, "generation_check", None)
        if gen_hook is not None:
            extra = gen_hook(t)
            if extra.size:
                current = np.concatenate([current, extra])

    return RunResult(
        elapsed_ns=t,
        total_tasks=eng.total_tasks,
        items_retired=eng.items_retired,
        work_units=eng.work_units,
        kernel_launches=launches,
        generations=generations,
        worker_slots=eng.slots,
        occupancy_fraction=eng.occupancy,
        queue_contention_ns=contention,
        empty_pops=0,
        mem_utilization=eng.mem.utilization(t) if t > 0 else 0.0,
        trace=eng.trace,
        config_name=config.name,
    )
