"""Single-source shortest paths: speculative relaxation vs. Bellman-Ford.

Not one of the paper's three case studies, but the comparison its Section
3.1 related-work discussion turns on: Hassaan et al. compare work-efficient
ordered (Dijkstra) against *unordered* Bellman-Ford, whose workload is
``diameter x |E|``; the paper argues its relaxed-barrier speculation stays
"within a small constant factor" of the ordered workload.  This module lets
the claim be measured:

* :func:`run_bellman_ford` — the BSP unordered baseline: every iteration
  relaxes every edge of the current frontier until a fixed point;
* :class:`SpeculativeSsspKernel` — the Atos formulation: exactly the
  speculative BFS kernel generalised to weighted edges (atomicMin on
  tentative distances, push on improvement).

Weights live in a parallel array aligned with ``Csr.indices`` — the same
layout a weighted CSR uses on the GPU.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import (
    EMPTY_ITEMS,
    AppAdapter,
    AppResult,
    register_app,
    run_app,
)
from repro.bsp.engine import BspTimeline
from repro.core.config import AtosConfig
from repro.core.kernel import CompletionResult
from repro.graph.csr import Csr
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = [
    "UNREACHED",
    "uniform_weights",
    "random_weights",
    "SpeculativeSsspKernel",
    "run_atos",
    "run_bellman_ford",
    "reference_distances",
    "validate_distances",
]

UNREACHED = np.inf


def uniform_weights(graph: Csr, value: float = 1.0) -> np.ndarray:
    """Every edge weighted ``value`` (SSSP degenerates to scaled BFS)."""
    if value <= 0:
        raise ValueError("edge weights must be positive")
    return np.full(graph.num_edges, float(value))


def random_weights(graph: Csr, *, low: float = 1.0, high: float = 10.0, seed: int = 0) -> np.ndarray:
    """Uniform random positive weights aligned with ``graph.indices``.

    Symmetric graphs get *asymmetric* weights under this helper (each
    direction is drawn independently), which is fine for SSSP.
    """
    if not (0 < low <= high):
        raise ValueError("need 0 < low <= high")
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=graph.num_edges)


class SpeculativeSsspKernel:
    """Relaxed-barrier SSSP: speculative Dijkstra with a shared queue."""

    def __init__(self, graph: Csr, weights: np.ndarray, source: int) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (graph.num_edges,):
            raise ValueError(
                f"weights must align with indices: expected {(graph.num_edges,)}, "
                f"got {weights.shape}"
            )
        if weights.size and weights.min() <= 0:
            raise ValueError("edge weights must be positive")
        if not (0 <= source < graph.num_vertices):
            raise ValueError(f"source {source} out of range")
        self.graph = graph
        self.weights = weights
        self.source = source
        self.dist = np.full(graph.num_vertices, UNREACHED)
        self.dist[source] = 0.0
        self.edges_relaxed = 0

    def initial_items(self) -> np.ndarray:
        return np.asarray([self.source], dtype=np.int64)

    def work_estimate(self, items: np.ndarray) -> tuple[int, int]:
        if items.size == 1:
            v = int(items[0])
            deg = int(self.graph.indptr[v + 1] - self.graph.indptr[v])
            return deg, deg
        degrees = self.graph.indptr[items + 1] - self.graph.indptr[items]
        return int(degrees.sum()), int(degrees.max()) if degrees.size else 0

    def on_read(self, items: np.ndarray, t: float):
        g = self.graph
        own = self.dist[items]
        degrees = g.indptr[items + 1] - g.indptr[items]
        edge_work = int(degrees.sum())
        if edge_work == 0:
            return (EMPTY_ITEMS, np.empty(0), edge_work)
        starts = g.indptr[items]
        flat = np.concatenate(
            [np.arange(s, s + d) for s, d in zip(starts, degrees)]
        ) if items.size > 1 else np.arange(starts[0], starts[0] + degrees[0])
        nbrs = g.indices[flat]
        src_pos = np.repeat(np.arange(items.size), degrees)
        cand = own[src_pos] + self.weights[flat]
        keep = cand < self.dist[nbrs]
        return (nbrs[keep], cand[keep], edge_work)

    def on_complete(self, items: np.ndarray, payload, t: float) -> CompletionResult:
        nbrs, cand, edge_work = payload
        self.edges_relaxed += edge_work
        if nbrs.size == 0:
            return CompletionResult(items_retired=int(items.size), work_units=float(edge_work))
        still = cand < self.dist[nbrs]
        nb, cd = nbrs[still], cand[still]
        if nb.size > 1:
            order = np.lexsort((cd, nb))
            nb, cd = nb[order], cd[order]
            first = np.concatenate(([True], nb[1:] != nb[:-1]))
            nb, cd = nb[first], cd[first]
        np.minimum.at(self.dist, nb, cd)
        return CompletionResult(
            new_items=nb, items_retired=int(items.size), work_units=float(edge_work)
        )

    def final_check(self, t: float) -> np.ndarray:
        return EMPTY_ITEMS


def _make_kernel(graph: Csr, weights=None, source: int = 0) -> SpeculativeSsspKernel:
    if weights is None:
        weights = uniform_weights(graph)
    return SpeculativeSsspKernel(graph, weights, source)


def run_atos(
    graph: Csr,
    config: AtosConfig,
    *,
    weights: np.ndarray | None = None,
    source: int = 0,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink=None,
) -> AppResult:
    """Speculative SSSP under an Atos configuration."""
    return run_app(
        "sssp",
        graph,
        config,
        spec=spec,
        max_tasks=max_tasks,
        sink=sink,
        weights=weights,
        source=source,
    )


register_app(AppAdapter(
    name="sssp",
    description="single-source shortest paths (speculative vs. Bellman-Ford)",
    make_kernel=_make_kernel,
    output=lambda k: k.dist,
    work_units=lambda k: k.edges_relaxed,
    bsp=lambda graph, **kw: run_bellman_ford(graph, **kw),
))


def run_bellman_ford(
    graph: Csr,
    *,
    weights: np.ndarray | None = None,
    source: int = 0,
    spec: GpuSpec = V100_SPEC,
    max_iterations: int | None = None,
) -> AppResult:
    """Frontier Bellman-Ford: the unordered BSP baseline.

    Each iteration relaxes every out-edge of the vertices improved in the
    previous iteration.  Workload approaches ``depth x |E|`` on graphs
    whose shortest-path tree is deep — the inefficiency the paper's
    speculative formulation avoids.
    """
    if weights is None:
        weights = uniform_weights(graph)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (graph.num_edges,):
        raise ValueError("weights must align with indices")
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range")
    dist = np.full(n, UNREACHED)
    dist[source] = 0.0
    frontier = np.asarray([source], dtype=np.int64)
    timeline = BspTimeline(spec=spec)
    edges_relaxed = 0
    items = 0
    iterations = 0
    limit = max_iterations if max_iterations is not None else n + 1

    while frontier.size:
        iterations += 1
        if iterations > limit:
            raise RuntimeError("Bellman-Ford exceeded its iteration bound")
        degrees = graph.indptr[frontier + 1] - graph.indptr[frontier]
        starts = graph.indptr[frontier]
        total = int(degrees.sum())
        edges_relaxed += total
        items += int(frontier.size)
        if total:
            flat = np.concatenate([np.arange(s, s + d) for s, d in zip(starts, degrees)])
            nbrs = graph.indices[flat]
            src_pos = np.repeat(np.arange(frontier.size), degrees)
            cand = dist[frontier][src_pos] + weights[flat]
            # apply all relaxations, then recompute the improved set
            before = dist[nbrs].copy()
            np.minimum.at(dist, nbrs, cand)
            improved = np.unique(nbrs[dist[nbrs] < before])
        else:
            improved = EMPTY_ITEMS
        timeline.kernel(
            frontier_size=int(frontier.size),
            edge_count=total,
            strategy="lbs",
            items_retired=int(frontier.size),
            work_units=float(total),
        )
        timeline.barrier()
        timeline.end_iteration()
        frontier = improved

    return AppResult(
        app="sssp",
        impl="bellman-ford",
        dataset=graph.name,
        elapsed_ns=timeline.now,
        work_units=float(edges_relaxed),
        items_retired=items,
        iterations=iterations,
        kernel_launches=timeline.kernel_launches,
        output=dist,
        trace=timeline.trace,
    )


def reference_distances(
    graph: Csr, weights: np.ndarray, source: int = 0
) -> np.ndarray:
    """Exact distances via a binary-heap Dijkstra (validation oracle)."""
    import heapq

    n = graph.num_vertices
    dist = np.full(n, UNREACHED)
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        start, end = graph.indptr[v], graph.indptr[v + 1]
        for idx in range(start, end):
            w = int(graph.indices[idx])
            nd = d + weights[idx]
            if nd < dist[w]:
                dist[w] = nd
                heapq.heappush(heap, (nd, w))
    return dist


def validate_distances(
    graph: Csr, weights: np.ndarray, dist: np.ndarray, source: int = 0
) -> bool:
    """True when ``dist`` matches Dijkstra to float tolerance."""
    ref = reference_distances(graph, weights, source)
    both_inf = np.isinf(ref) & np.isinf(dist)
    close = np.isclose(ref, dist, rtol=1e-9, atol=1e-9)
    return bool(np.all(both_inf | close))
