"""Breadth-first search: BSP Dijkstra BFS vs. speculative (relaxed) BFS.

Paper Section 5.1.  The BSP version (Algorithm 1) advances one strict level
per kernel, so every vertex is first reached along a shortest path — it is
exactly Dijkstra on a unit-weight graph.  The speculative version
(Algorithm 2) lets asynchronous workers pop vertices of *different* levels
concurrently; a vertex may be settled through a sub-optimal path first and
re-processed when a shorter path arrives later.  The extra traversals are
the overwork of Table 4; because every improvement re-enqueues the vertex,
the final depths are still exact (a label-correcting argument — tested
against a reference BFS).

Asynchrony discipline (see :mod:`repro.core.kernel`): the popped vertex's
own depth and its neighbors' depths are **read at the task's read
instant**; the ``atomicMin`` results are **written at completion time**,
and only improvements that still hold at the write instant are pushed (the
atomic's return value decides the push, exactly as in the paper's
Listing 4).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import (
    EMPTY_ITEMS,
    AppAdapter,
    AppResult,
    register_app,
    run_app,
)
from repro.bsp.engine import BspTimeline
from repro.core.config import AtosConfig
from repro.core.kernel import CompletionResult
from repro.graph.csr import Csr
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = [
    "UNREACHED",
    "SpeculativeBfsKernel",
    "run_atos",
    "run_bsp",
    "reference_depths",
    "validate_depths",
]

#: depth value for unreached vertices (int64 "infinity")
UNREACHED = np.iinfo(np.int64).max


class SpeculativeBfsKernel:
    """Atos task kernel for relaxed-barrier BFS (paper Algorithm 2)."""

    def __init__(self, graph: Csr, source: int) -> None:
        if not (0 <= source < graph.num_vertices):
            raise ValueError(f"source {source} out of range")
        self.graph = graph
        self.source = source
        self.depth = np.full(graph.num_vertices, UNREACHED, dtype=np.int64)
        self.depth[source] = 0
        #: edge traversals performed (Table 4 currency)
        self.edges_traversed = 0

    def initial_items(self) -> np.ndarray:
        return np.asarray([self.source], dtype=np.int64)

    def work_estimate(self, items: np.ndarray) -> tuple[int, int]:
        if items.size == 1:
            v = int(items[0])
            deg = int(self.graph.indptr[v + 1] - self.graph.indptr[v])
            return deg, deg
        degrees = self.graph.indptr[items + 1] - self.graph.indptr[items]
        return int(degrees.sum()), int(degrees.max()) if degrees.size else 0

    def on_read(self, items: np.ndarray, t: float):
        g = self.graph
        if items.size == 1:
            # scalar fast path for fetch_size=1 warp tasks (the hot loop)
            v = int(items[0])
            start, end = int(g.indptr[v]), int(g.indptr[v + 1])
            if start == end:
                return (EMPTY_ITEMS, EMPTY_ITEMS, 0)
            nbrs = g.indices[start:end]
            cand_depth = int(self.depth[v]) + 1
            keep = self.depth[nbrs] > cand_depth
            kept = nbrs[keep]
            # empty+fill: same result as np.full without its wrapper cost
            cand = np.empty(kept.size, dtype=np.int64)
            cand.fill(cand_depth)
            return (kept, cand, end - start)
        # read-instant loads: own depths and neighbor depths
        own_depth = self.depth[items]
        _, nbrs = g.gather_neighbors(items)
        degrees = g.indptr[items + 1] - g.indptr[items]
        edge_work = int(degrees.sum())
        if nbrs.size:
            # candidate depth for each edge = depth(src at read) + 1
            src_pos = np.repeat(np.arange(items.size), degrees)
            cand = own_depth[src_pos] + 1
            seen = self.depth[nbrs]
            keep = cand < seen  # speculative improvement as of the read
            return (nbrs[keep], cand[keep], edge_work)
        return (EMPTY_ITEMS, EMPTY_ITEMS, edge_work)

    def on_complete(self, items: np.ndarray, payload, t: float) -> CompletionResult:
        nbrs, cand, edge_work = payload
        self.edges_traversed += edge_work
        if nbrs.size == 0:
            return CompletionResult(
                new_items=EMPTY_ITEMS,
                items_retired=int(items.size),
                work_units=float(edge_work),
            )
        # atomicMin at write time: push only edges that still improve now.
        still = cand < self.depth[nbrs]
        nb, cd = nbrs[still], cand[still]
        if nb.size > 1:
            # The task's own atomicMins serialize against each other in
            # hardware: when several fetched sources improve the same
            # neighbor, only the first atomic observes ``old > new`` and
            # pushes — collapse duplicates to the best candidate.
            order = np.lexsort((cd, nb))
            nb, cd = nb[order], cd[order]
            first = np.concatenate(([True], nb[1:] != nb[:-1]))
            nb, cd = nb[first], cd[first]
        np.minimum.at(self.depth, nb, cd)
        return CompletionResult(
            new_items=nb,
            items_retired=int(items.size),
            work_units=float(edge_work),
        )

    def final_check(self, t: float) -> np.ndarray:
        return EMPTY_ITEMS  # BFS quiesces exactly when the queue drains


def run_atos(
    graph: Csr,
    config: AtosConfig,
    *,
    source: int = 0,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink=None,
) -> AppResult:
    """Speculative BFS under an Atos configuration.

    ``sink`` attaches an observability sink (see :mod:`repro.obs`).
    """
    return run_app(
        "bfs", graph, config, spec=spec, max_tasks=max_tasks, sink=sink, source=source
    )


def run_bsp(
    graph: Csr,
    *,
    source: int = 0,
    spec: GpuSpec = V100_SPEC,
    strategy: str = "lbs",
    direction_optimized: bool = False,
    do_alpha: float = 0.05,
) -> AppResult:
    """Gunrock-style BSP BFS (paper Algorithm 1): one level per kernel.

    Each iteration runs an advance kernel (load-balancing search over the
    frontier's edges) and a filter kernel (dedup into the next frontier),
    with a barrier after each — Gunrock's standard two-kernel structure.

    ``direction_optimized=True`` enables Beamer-style push/pull switching
    (the optimization production Gunrock ships for BFS): when the frontier's
    outgoing edge count exceeds ``do_alpha`` of the graph's edges, the
    iteration runs *bottom-up* — every unvisited vertex scans its incoming
    neighbors and stops at the first parent found — which touches far fewer
    edges on the hub-heavy middle levels of scale-free graphs.
    """
    if direction_optimized:
        return _run_bsp_direction_optimized(
            graph, source=source, spec=spec, strategy=strategy, alpha=do_alpha
        )
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range")
    depth = np.full(n, UNREACHED, dtype=np.int64)
    depth[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    timeline = BspTimeline(spec=spec)
    edges_traversed = 0
    items = 0

    while frontier.size:
        _, nbrs = graph.gather_neighbors(frontier)
        edge_count = int(nbrs.size)
        edges_traversed += edge_count
        items += int(frontier.size)
        level = int(depth[frontier[0]])  # strict level synchrony
        # advance kernel: relax all frontier edges
        timeline.kernel(
            frontier_size=int(frontier.size),
            edge_count=edge_count,
            strategy=strategy,
            items_retired=int(frontier.size),
            work_units=float(edge_count),
        )
        timeline.barrier()
        if nbrs.size:
            improved = depth[nbrs] > level + 1
            fresh = np.unique(nbrs[improved])
            depth[fresh] = level + 1
        else:
            fresh = EMPTY_ITEMS
        # filter kernel: compact the output frontier (Gunrock's filter is
        # fused with idempotent dedup; it streams the new frontier, not
        # the full edge list)
        timeline.kernel(
            frontier_size=int(fresh.size),
            edge_count=0,
            strategy="none",
        )
        timeline.barrier()
        timeline.end_iteration()
        frontier = fresh

    return AppResult(
        app="bfs",
        impl="BSP",
        dataset=graph.name,
        elapsed_ns=timeline.now,
        work_units=float(edges_traversed),
        items_retired=items,
        iterations=timeline.iterations,
        kernel_launches=timeline.kernel_launches,
        output=depth,
        trace=timeline.trace,
    )


def _run_bsp_direction_optimized(
    graph: Csr,
    *,
    source: int,
    spec: GpuSpec,
    strategy: str,
    alpha: float,
) -> AppResult:
    """Push/pull BFS (Beamer's direction optimization).

    Push iterations are identical to the standard implementation.  A pull
    iteration visits every *unvisited* vertex and scans its in-neighbors
    until it finds one at the current level; the scan's early exit is
    modeled by charging only the edges actually examined.  In-neighbors are
    read through the CSR out-lists, which is exact on the symmetric graphs
    this repository evaluates (use ``graph.transpose()`` first for a
    directed input).
    """
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range")
    if not (0 < alpha < 1):
        raise ValueError("do_alpha must be in (0, 1)")
    depth = np.full(n, UNREACHED, dtype=np.int64)
    depth[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    timeline = BspTimeline(spec=spec)
    edges_traversed = 0
    items = 0
    level = 0
    pull_iterations = 0

    while frontier.size:
        frontier_edges = graph.frontier_edges(frontier)
        use_pull = frontier_edges > alpha * graph.num_edges
        if use_pull:
            pull_iterations += 1
            unvisited = np.flatnonzero(depth == UNREACHED)
            fresh_list = []
            edges_scanned = 0
            for v in unvisited:
                nbrs = graph.neighbors(int(v))
                # early-exit scan for a parent at the current level
                hits = np.flatnonzero(depth[nbrs] == level)
                if hits.size:
                    edges_scanned += int(hits[0]) + 1
                    fresh_list.append(int(v))
                else:
                    edges_scanned += int(nbrs.size)
            fresh = np.asarray(fresh_list, dtype=np.int64)
            edge_count = edges_scanned
        else:
            _, nbrs = graph.gather_neighbors(frontier)
            edge_count = int(nbrs.size)
            if nbrs.size:
                improved = depth[nbrs] > level + 1
                fresh = np.unique(nbrs[improved])
            else:
                fresh = EMPTY_ITEMS
        edges_traversed += edge_count
        items += int(frontier.size)
        if fresh.size:
            depth[fresh] = level + 1
        timeline.kernel(
            frontier_size=int(frontier.size if not use_pull else (depth == UNREACHED).sum() + fresh.size),
            edge_count=edge_count,
            strategy=strategy,
            items_retired=int(frontier.size),
            work_units=float(edge_count),
        )
        timeline.barrier()
        timeline.kernel(frontier_size=int(fresh.size), edge_count=0, strategy="none")
        timeline.barrier()
        timeline.end_iteration()
        frontier = fresh
        level += 1

    return AppResult(
        app="bfs",
        impl="BSP-DO",
        dataset=graph.name,
        elapsed_ns=timeline.now,
        work_units=float(edges_traversed),
        items_retired=items,
        iterations=timeline.iterations,
        kernel_launches=timeline.kernel_launches,
        output=depth,
        trace=timeline.trace,
        extra={"pull_iterations": pull_iterations},
    )


register_app(AppAdapter(
    name="bfs",
    description="breadth-first search (speculative vs. level-synchronous)",
    make_kernel=lambda graph, source=0: SpeculativeBfsKernel(graph, source),
    output=lambda k: k.depth,
    work_units=lambda k: k.edges_traversed,
    bsp=run_bsp,
))


def reference_depths(graph: Csr, source: int = 0) -> np.ndarray:
    """Exact BFS depths via the metrics-layer reference implementation."""
    from repro.graph.metrics import bfs_levels

    levels = bfs_levels(graph, source)
    out = np.where(levels < 0, UNREACHED, levels)
    return out.astype(np.int64)


def validate_depths(graph: Csr, depth: np.ndarray, source: int = 0) -> bool:
    """True when ``depth`` equals the exact BFS distance array."""
    return bool(np.array_equal(depth, reference_depths(graph, source)))
