"""Connected components via min-label propagation (BSP and relaxed).

A fourth application on the Listing 1 pattern, demonstrating that the Atos
formulation generalises beyond the paper's three case studies.  Every
vertex starts labelled with its own id; processing a vertex pushes its
label to each neighbor with ``atomicMin``; at quiescence every vertex in a
(weakly, on symmetric graphs: fully) connected component carries the
component's minimum vertex id.

Like PageRank, label propagation is naturally unordered — any execution
order converges to the same fixed point — so relaxing the barrier costs no
correctness and no misspeculation repair.  Like BFS, out-of-order execution
can propagate a non-minimal label first and redo work later, so Table-4
style overwork is measurable.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import (
    EMPTY_ITEMS,
    AppAdapter,
    AppResult,
    register_app,
    run_app,
)
from repro.bsp.engine import BspTimeline
from repro.core.config import AtosConfig
from repro.core.kernel import CompletionResult
from repro.graph.csr import Csr
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = [
    "AsyncCcKernel",
    "run_atos",
    "run_bsp",
    "reference_components",
    "validate_components",
]


class AsyncCcKernel:
    """Atos task kernel for asynchronous min-label propagation."""

    def __init__(self, graph: Csr) -> None:
        self.graph = graph
        self.labels = np.arange(graph.num_vertices, dtype=np.int64)
        self.out_deg = graph.out_degrees()
        self.edges_propagated = 0

    def initial_items(self) -> np.ndarray:
        return np.arange(self.graph.num_vertices, dtype=np.int64)

    def work_estimate(self, items: np.ndarray) -> tuple[int, int]:
        if items.size == 1:
            deg = self.out_deg.item(items.item(0))
            return deg, deg
        degrees = self.graph.indptr[items + 1] - self.graph.indptr[items]
        return int(degrees.sum()), int(degrees.max()) if degrees.size else 0

    def on_read(self, items: np.ndarray, t: float):
        g = self.graph
        if items.size == 1:
            v = items.item(0)
            ip = g.indptr
            start, end = ip.item(v), ip.item(v + 1)
            if start == end:
                return (EMPTY_ITEMS, EMPTY_ITEMS, 0)
            nbrs = g.indices[start:end]
            label = self.labels.item(v)
            keep = self.labels[nbrs] > label
            kept = nbrs[keep]
            # empty+fill: same result as np.full without its wrapper cost
            cand = np.empty(kept.size, dtype=np.int64)
            cand.fill(label)
            return (kept, cand, end - start)
        own = self.labels[items]
        _, nbrs = g.gather_neighbors(items)
        degrees = g.indptr[items + 1] - g.indptr[items]
        edge_work = int(degrees.sum())
        if nbrs.size == 0:
            return (EMPTY_ITEMS, EMPTY_ITEMS, edge_work)
        src_pos = np.repeat(np.arange(items.size), degrees)
        cand = own[src_pos]
        keep = cand < self.labels[nbrs]
        return (nbrs[keep], cand[keep], edge_work)

    def on_complete(self, items: np.ndarray, payload, t: float) -> CompletionResult:
        nbrs, cand, edge_work = payload
        self.edges_propagated += edge_work
        labels = self.labels
        if nbrs.size == 0:
            return CompletionResult(items_retired=int(items.size), work_units=float(edge_work))
        if nbrs.size == 1:
            # scalar fast path: warp tasks on low-degree meshes usually
            # carry a single surviving candidate after the read-time filter
            nb0 = nbrs.item(0)
            cd0 = cand.item(0)
            if cd0 < labels.item(nb0):
                labels[nb0] = cd0
                return CompletionResult(
                    new_items=nbrs, items_retired=int(items.size), work_units=float(edge_work)
                )
            return CompletionResult(items_retired=int(items.size), work_units=float(edge_work))
        still = cand < labels[nbrs]
        nb, cd = nbrs[still], cand[still]
        if nb.size > 1:
            order = np.lexsort((cd, nb))
            nb, cd = nb[order], cd[order]
            first = np.concatenate(([True], nb[1:] != nb[:-1]))
            nb, cd = nb[first], cd[first]
        # nb is duplicate-free here (single survivor or deduped-by-first),
        # and ``still`` guarantees cd < labels[nb], so minimum.at reduces to
        # a plain scatter of the candidates — identical final labels
        labels[nb] = cd
        return CompletionResult(
            new_items=nb, items_retired=int(items.size), work_units=float(edge_work)
        )

    def final_check(self, t: float) -> np.ndarray:
        return EMPTY_ITEMS


def run_atos(
    graph: Csr,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink=None,
) -> AppResult:
    """Asynchronous connected components under an Atos configuration."""
    return run_app("cc", graph, config, spec=spec, max_tasks=max_tasks, sink=sink)


register_app(AppAdapter(
    name="cc",
    description="connected components via min-label propagation",
    make_kernel=lambda graph: AsyncCcKernel(graph),
    output=lambda k: k.labels,
    work_units=lambda k: k.edges_propagated,
    extra=lambda k: {"num_components": int(np.unique(k.labels).size)},
    bsp=lambda graph, **kw: run_bsp(graph, **kw),
))


def run_bsp(
    graph: Csr,
    *,
    spec: GpuSpec = V100_SPEC,
    max_iterations: int | None = None,
) -> AppResult:
    """BSP min-label propagation: one frontier sweep per kernel."""
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    frontier = np.arange(n, dtype=np.int64)
    timeline = BspTimeline(spec=spec)
    edges_propagated = 0
    items = 0
    iterations = 0
    limit = max_iterations if max_iterations is not None else n + 1

    while frontier.size:
        iterations += 1
        if iterations > limit:
            raise RuntimeError("label propagation failed to converge")
        _, nbrs = graph.gather_neighbors(frontier)
        degrees = graph.indptr[frontier + 1] - graph.indptr[frontier]
        edge_count = int(nbrs.size)
        edges_propagated += edge_count
        items += int(frontier.size)
        if edge_count:
            src_pos = np.repeat(np.arange(frontier.size), degrees)
            cand = labels[frontier][src_pos]
            before = labels[nbrs].copy()
            np.minimum.at(labels, nbrs, cand)
            improved = np.unique(nbrs[labels[nbrs] < before])
        else:
            improved = EMPTY_ITEMS
        timeline.kernel(
            frontier_size=int(frontier.size),
            edge_count=edge_count,
            strategy="lbs",
            items_retired=int(frontier.size),
            work_units=float(edge_count),
        )
        timeline.barrier()
        timeline.end_iteration()
        frontier = improved

    return AppResult(
        app="cc",
        impl="BSP",
        dataset=graph.name,
        elapsed_ns=timeline.now,
        work_units=float(edges_propagated),
        items_retired=items,
        iterations=iterations,
        kernel_launches=timeline.kernel_launches,
        output=labels,
        trace=timeline.trace,
        extra={"num_components": int(np.unique(labels).size)},
    )


def reference_components(graph: Csr) -> np.ndarray:
    """Min-id component labels via iterative DFS (validation oracle).

    Treats the graph as undirected (follows out-edges both ways via the
    symmetric assumption; for directed inputs this computes the weakly
    connected components of the symmetrized graph).
    """
    sym = graph if graph.is_symmetric() else graph.symmetrize()
    n = sym.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        if labels[v] >= 0:
            continue
        stack = [v]
        labels[v] = v
        while stack:
            u = stack.pop()
            for w in sym.neighbors(u):
                if labels[w] < 0:
                    labels[w] = v
                    stack.append(int(w))
    return labels


def validate_components(graph: Csr, labels: np.ndarray) -> bool:
    """True when ``labels`` equals the min-id component labelling."""
    return bool(np.array_equal(labels, reference_components(graph)))
