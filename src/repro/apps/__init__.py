"""The paper's three case studies: BFS, PageRank, and graph coloring.

Each application module provides:

* an **Atos task kernel** implementing :class:`repro.core.TaskKernel` —
  the relaxed-barrier formulation (speculative BFS, asynchronous PageRank,
  asynchronous speculative coloring);
* a **BSP implementation** — the Gunrock-style baseline (or, for coloring,
  the paper's own BSP speculative-greedy implementation, since Gunrock's
  independent-set coloring is not comparable);
* a ``run_atos`` / ``run_bsp`` pair returning an :class:`AppResult` with
  timing, workload and correctness artifacts;
* validators that check the algorithm-level invariants (exact BFS depths,
  PageRank fixed point, proper coloring).
"""

from repro.apps.common import (
    APP_REGISTRY,
    AppAdapter,
    AppResult,
    app_names,
    get_adapter,
    run_app,
)
from repro.apps import bfs, cc, coloring, delta_sssp, dynamic, kcore, mis, pagerank, sssp

__all__ = [
    "AppResult",
    "AppAdapter",
    "APP_REGISTRY",
    "app_names",
    "get_adapter",
    "run_app",
    "bfs",
    "pagerank",
    "coloring",
    "sssp",
    "cc",
    "delta_sssp",
    "dynamic",
    "kcore",
    "mis",
]
