"""Maximal independent set (lexicographically-first) — BSP and relaxed.

A sixth Listing-1 application in the *speculative correction* family
(like graph coloring): compute the lexicographically-first maximal
independent set, defined by the sequential rule

    v ∈ MIS  ⇔  no neighbor u < v has u ∈ MIS.

The dependency structure is a DAG (only smaller ids influence a vertex),
so chaotic re-evaluation converges to the unique fixed point: a vertex
evaluates speculatively from its neighbors' *current* statuses, and when
its own status flips it pushes its larger neighbors for re-evaluation —
exactly the paper's "commit, then repair" speculation style (Section 3.1),
with the repair expressed as re-enqueued work.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import (
    EMPTY_ITEMS,
    AppAdapter,
    AppResult,
    register_app,
    run_app,
)
from repro.bsp.engine import BspTimeline
from repro.core.config import AtosConfig
from repro.core.kernel import CompletionResult
from repro.graph.csr import Csr
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = [
    "AsyncMisKernel",
    "run_atos",
    "run_bsp",
    "reference_mis",
    "validate_mis",
]

OUT = 0
IN = 1


class AsyncMisKernel:
    """Chaotic-iteration kernel for the lexicographic MIS."""

    def __init__(self, graph: Csr) -> None:
        self.graph = graph
        self.status = np.zeros(graph.num_vertices, dtype=np.int8)
        self.evaluations = 0
        self.in_queue = np.ones(graph.num_vertices, dtype=bool)

    def initial_items(self) -> np.ndarray:
        return np.arange(self.graph.num_vertices, dtype=np.int64)

    def work_estimate(self, items: np.ndarray) -> tuple[int, int]:
        if items.size == 1:
            v = int(items[0])
            deg = int(self.graph.indptr[v + 1] - self.graph.indptr[v])
            return deg, deg
        degrees = self.graph.indptr[items + 1] - self.graph.indptr[items]
        return int(degrees.sum()), int(degrees.max()) if degrees.size else 0

    def _evaluate(self, v: int) -> int:
        g = self.graph
        ip = g.indptr
        nbrs = g.indices[ip.item(v) : ip.item(v + 1)]
        smaller = nbrs[nbrs < v]
        # status holds only OUT=0 / IN=1, so truthiness == (== IN)
        return OUT if self.status[smaller].any() else IN

    def on_read(self, items: np.ndarray, t: float):
        self.in_queue[items] = False
        decided = np.empty(items.size, dtype=np.int8)
        if items.size == 1:
            decided[0] = self._evaluate(items.item(0))
            return decided
        for i, v in enumerate(items):
            decided[i] = self._evaluate(int(v))
        return decided

    def on_complete(self, items: np.ndarray, payload, t: float) -> CompletionResult:
        decided = payload
        if items.size == 1:
            # scalar fast path (fetch_size=1 dominates the hot loop)
            self.evaluations += 1
            v = items.item(0)
            d = decided.item(0)
            if self.status.item(v) == d:
                return CompletionResult(items_retired=1, work_units=1.0)
            self.status[v] = d
            g = self.graph
            ip = g.indptr
            nbrs = g.indices[ip.item(v) : ip.item(v + 1)]
            bigger = nbrs[nbrs > v]
            fresh = bigger[~self.in_queue[bigger]]
            if fresh.size:
                self.in_queue[fresh] = True
                return CompletionResult(
                    new_items=fresh.astype(np.int64), items_retired=1, work_units=1.0
                )
            return CompletionResult(items_retired=1, work_units=1.0)
        self.evaluations += int(items.size)
        changed = items[self.status[items] != decided]
        self.status[items] = decided
        if changed.size == 0:
            return CompletionResult(items_retired=int(items.size), work_units=float(items.size))
        # a flipped vertex invalidates its larger neighbors' decisions
        pushes = []
        for v in changed:
            nbrs = self.graph.neighbors(int(v))
            bigger = nbrs[nbrs > v]
            fresh = bigger[~self.in_queue[bigger]]
            if fresh.size:
                self.in_queue[fresh] = True
                pushes.append(fresh.astype(np.int64))
        new_items = np.concatenate(pushes) if pushes else EMPTY_ITEMS
        return CompletionResult(
            new_items=new_items,
            items_retired=int(items.size),
            work_units=float(items.size),
        )

    def final_check(self, t: float) -> np.ndarray:
        """Safety net: re-evaluate any vertex whose status is inconsistent."""
        bad = [
            v
            for v in range(self.graph.num_vertices)
            if self.status[v] != self._evaluate(v)
        ]
        if not bad:
            return EMPTY_ITEMS
        arr = np.asarray(bad, dtype=np.int64)
        self.in_queue[arr] = True
        return arr


def run_atos(
    graph: Csr,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink=None,
) -> AppResult:
    """Asynchronous lexicographic MIS under an Atos configuration."""
    return run_app("mis", graph, config, spec=spec, max_tasks=max_tasks, sink=sink)


register_app(AppAdapter(
    name="mis",
    description="lexicographically-first maximal independent set",
    make_kernel=lambda graph: AsyncMisKernel(graph),
    output=lambda k: k.status.astype(np.int64),
    work_units=lambda k: k.evaluations,
    extra=lambda k: {"mis_size": int(k.status.sum())},
    bsp=lambda graph, **kw: run_bsp(graph, **kw),
))


def run_bsp(
    graph: Csr,
    *,
    spec: GpuSpec = V100_SPEC,
    max_iterations: int | None = None,
) -> AppResult:
    """BSP chaotic iteration: re-evaluate a frontier per kernel."""
    n = graph.num_vertices
    status = np.zeros(n, dtype=np.int8)
    frontier = np.arange(n, dtype=np.int64)
    timeline = BspTimeline(spec=spec)
    evaluations = 0
    iterations = 0
    limit = max_iterations if max_iterations is not None else n + 2

    while frontier.size:
        iterations += 1
        if iterations > limit:
            raise RuntimeError("MIS iteration failed to converge")
        snapshot = status.copy()
        decided = np.empty(frontier.size, dtype=np.int8)
        for i, v in enumerate(frontier):
            nbrs = graph.neighbors(int(v))
            smaller = nbrs[nbrs < v]
            decided[i] = OUT if (snapshot[smaller] == IN).any() else IN
        evaluations += int(frontier.size)
        changed = frontier[status[frontier] != decided]
        status[frontier] = decided
        edge_count = graph.frontier_edges(frontier)
        timeline.kernel(
            frontier_size=int(frontier.size),
            edge_count=edge_count,
            strategy="lbs",
            items_retired=int(frontier.size),
            work_units=float(frontier.size),
        )
        timeline.barrier()
        timeline.end_iteration()
        if changed.size == 0:
            break
        nxt = []
        for v in changed:
            nbrs = graph.neighbors(int(v))
            nxt.append(nbrs[nbrs > v])
        frontier = np.unique(np.concatenate(nxt)) if nxt else EMPTY_ITEMS

    return AppResult(
        app="mis",
        impl="BSP",
        dataset=graph.name,
        elapsed_ns=timeline.now,
        work_units=float(evaluations),
        items_retired=evaluations,
        iterations=iterations,
        kernel_launches=timeline.kernel_launches,
        output=status.astype(np.int64),
        trace=timeline.trace,
        extra={"mis_size": int(status.sum())},
    )


def reference_mis(graph: Csr) -> np.ndarray:
    """The lexicographically-first MIS by the sequential greedy rule."""
    n = graph.num_vertices
    status = np.zeros(n, dtype=np.int64)
    for v in range(n):
        nbrs = graph.neighbors(v)
        smaller = nbrs[nbrs < v]
        status[v] = IN if not (status[smaller] == IN).any() else OUT
    return status


def validate_mis(graph: Csr, status: np.ndarray) -> bool:
    """Independent, maximal, and equal to the lexicographic fixed point."""
    if not np.array_equal(status, reference_mis(graph)):
        return False
    edges = graph.edge_array()
    mono = (status[edges[:, 0]] == IN) & (status[edges[:, 1]] == IN)
    if mono.any():
        return False  # not independent
    for v in range(graph.num_vertices):
        if status[v] == OUT:
            nbrs = graph.neighbors(v)
            if not (status[nbrs] == IN).any():
                return False  # not maximal
    return True
