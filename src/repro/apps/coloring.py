"""Graph coloring: BSP vs. asynchronous speculative greedy coloring.

Paper Section 5.3.  Both versions run the speculative greedy algorithm of
Gebremedhin & Manne: assign each vertex the smallest color not used by its
neighbors *as currently visible*, then detect conflicts (two adjacent
vertices that picked the same color) and recolor.  The speculation is in
the assignment: it may read outdated neighbor colors.

* The **BSP** implementation (paper Algorithm 5) alternates an assignment
  kernel and a conflict-detection kernel over a double-buffered frontier.
  Within the assignment kernel, vertices in the same TWC sub-bucket read
  one shared snapshot (they execute simultaneously); the three degree
  sub-buckets serialize against each other — this models the paper's note
  that Gunrock-style bucketed load balancing reduces intra-kernel
  conflicts.
* The **Atos** implementation (paper Algorithm 6) fuses both kernels into
  an uberkernel: a queue item tagged positive means "assign a color", a
  negative tag means "check for conflicts".  We encode ``+ (v+1)`` /
  ``- (v+1)`` so vertex 0 is representable.

Conflict tie-break: when adjacent vertices ``u < v`` share a color, ``v``
recolors and ``u`` keeps its color.  (The paper's pseudocode re-adds every
conflicting vertex; production implementations — including
Gebremedhin-Manne — break the tie by vertex id, which guarantees
termination.  The count of recolor operations is unaffected in the pair
case.)

Why the kernel strategies diverge so strongly here (Section 6.3): the
conflict rate is set by how many *id-adjacent* vertices observe each
other's stale colors.  Under the discrete strategy, a whole launch wave
reads one snapshot in vertex-id order, so consecutive ids — likely
neighbors on crawl-ordered datasets — collide en masse.  Under the
persistent strategy the scheduler's read-instant serialization shrinks the
stale window to the outstanding-load lead, so almost every assignment sees
its neighbors' committed colors.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import (
    EMPTY_ITEMS,
    AppAdapter,
    AppResult,
    register_app,
    run_app,
)
from repro.bsp.engine import BspTimeline
from repro.bsp.loadbalance import twc_buckets
from repro.core.config import AtosConfig
from repro.core.kernel import CompletionResult
from repro.graph.csr import Csr
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = [
    "UNCOLORED",
    "AsyncColoringKernel",
    "run_atos",
    "run_bsp",
    "validate_coloring",
    "count_conflicts",
]

UNCOLORED = -1

#: shared empty payload slots for the scalar fast path (never mutated)
_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_BOOL = np.empty(0, dtype=bool)


def _min_available_color(neighbor_colors: np.ndarray, degree: int) -> int:
    """Smallest non-negative color absent from ``neighbor_colors``.

    Greedy coloring never needs a color above ``degree``, so colors past
    that bound cannot force a higher choice and are ignored.
    """
    valid = neighbor_colors[(neighbor_colors >= 0) & (neighbor_colors <= degree)]
    if valid.size == 0:
        return 0
    present = np.zeros(degree + 2, dtype=bool)
    present[valid] = True
    return int(np.argmin(present))


def count_conflicts(graph: Csr, colors: np.ndarray) -> int:
    """Number of directed edges whose endpoints share a color."""
    edges = graph.edge_array()
    same = colors[edges[:, 0]] == colors[edges[:, 1]]
    return int(same.sum())


def validate_coloring(graph: Csr, colors: np.ndarray) -> bool:
    """True when every vertex is colored and no edge is monochromatic."""
    if np.any(colors < 0):
        return False
    return count_conflicts(graph, colors) == 0


class AsyncColoringKernel:
    """Atos uberkernel for speculative greedy coloring (Algorithm 6)."""

    def __init__(self, graph: Csr) -> None:
        self.graph = graph
        self.colors = np.full(graph.num_vertices, UNCOLORED, dtype=np.int64)
        #: color-assignment operations performed (Table 4 currency)
        self.assignments = 0
        self.conflict_checks = 0

    # -- tag encoding ---------------------------------------------------
    @staticmethod
    def assign_tag(vertices: np.ndarray) -> np.ndarray:
        return np.asarray(vertices, dtype=np.int64) + 1

    @staticmethod
    def check_tag(vertices: np.ndarray) -> np.ndarray:
        return -(np.asarray(vertices, dtype=np.int64) + 1)

    @staticmethod
    def decode(items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(assign_vertices, check_vertices)`` from a mixed item batch."""
        assign = items[items > 0] - 1
        check = -items[items < 0] - 1
        return assign, check

    # -- kernel protocol --------------------------------------------------
    def initial_items(self) -> np.ndarray:
        return self.assign_tag(np.arange(self.graph.num_vertices, dtype=np.int64))

    def work_estimate(self, items: np.ndarray) -> tuple[int, int]:
        if items.size == 1:
            tag = items.item(0)
            v = (tag if tag > 0 else -tag) - 1
            ip = self.graph.indptr
            deg = ip.item(v + 1) - ip.item(v)
            return deg, deg
        vs = np.abs(items) - 1
        degrees = self.graph.indptr[vs + 1] - self.graph.indptr[vs]
        return int(degrees.sum()), int(degrees.max()) if degrees.size else 0

    def on_read(self, items: np.ndarray, t: float):
        g = self.graph
        if items.size == 1:
            # scalar fast path: decode the single tag without the three
            # boolean-mask passes of decode() (fetch_size=1 dominates)
            tag = items.item(0)
            ip = g.indptr
            if tag > 0:
                v = tag - 1
                nbrs = g.indices[ip.item(v) : ip.item(v + 1)]
                chosen = np.empty(1, dtype=np.int64)
                chosen[0] = _min_available_color(self.colors[nbrs], nbrs.size)
                return (items - 1, chosen, EMPTY_ITEMS, _EMPTY_BOOL)
            v = -tag - 1
            nbrs = g.indices[ip.item(v) : ip.item(v + 1)]
            c = self.colors.item(v)
            conflicted = np.empty(1, dtype=bool)
            conflicted[0] = bool(((self.colors[nbrs] == c) & (nbrs < v)).any())
            return (EMPTY_ITEMS, _EMPTY_I64, -items - 1, conflicted)
        assign_vs, check_vs = self.decode(items)
        # assignment: pick min available color from currently visible
        # neighbor colors; all items in this task share one snapshot
        # (simultaneous lanes of one worker), so intra-task neighbors can
        # pick clashing colors — the fetch-size overwork effect.
        chosen = np.empty(assign_vs.size, dtype=np.int64)
        for i, v in enumerate(assign_vs):
            nbrs = g.neighbors(v)
            chosen[i] = _min_available_color(self.colors[nbrs], nbrs.size)
        # conflict check: vertex v must recolor when a *lower-id* neighbor
        # currently holds v's color (deterministic tie-break)
        conflicted = np.zeros(check_vs.size, dtype=bool)
        for i, v in enumerate(check_vs):
            nbrs = g.neighbors(v)
            c = self.colors[v]
            conflicted[i] = bool(np.any((self.colors[nbrs] == c) & (nbrs < v)))
        return (assign_vs, chosen, check_vs, conflicted)

    def on_complete(self, items: np.ndarray, payload, t: float) -> CompletionResult:
        assign_vs, chosen, check_vs, conflicted = payload
        if items.size == 1:
            # scalar fast path mirroring the generic branch below exactly
            if assign_vs.size:
                self.colors[assign_vs] = chosen
                self.assignments += 1
                return CompletionResult(
                    new_items=-(assign_vs + 1), items_retired=1, work_units=1.0
                )
            self.conflict_checks += 1
            if conflicted[0]:
                return CompletionResult(
                    new_items=check_vs + 1, items_retired=1, work_units=0.0
                )
            return CompletionResult(items_retired=1, work_units=0.0)
        pushes = []
        if assign_vs.size:
            self.colors[assign_vs] = chosen
            self.assignments += assign_vs.size
            pushes.append(self.check_tag(assign_vs))
        if check_vs.size:
            self.conflict_checks += check_vs.size
            bad = check_vs[conflicted]
            if bad.size:
                pushes.append(self.assign_tag(bad))
        new_items = np.concatenate(pushes) if pushes else EMPTY_ITEMS
        return CompletionResult(
            new_items=new_items,
            items_retired=int(items.size),
            work_units=float(assign_vs.size),
        )

    def final_check(self, t: float) -> np.ndarray:
        """Quiescence safety net: rescan for conflicts missed by stale
        check tasks (a check that read before its neighbor's commit).  The
        recolor passes it generates are counted like any other work."""
        edges = self.graph.edge_array()
        u, v = edges[:, 0], edges[:, 1]
        bad = (self.colors[u] == self.colors[v]) & (u < v)
        if not bad.any():
            return EMPTY_ITEMS
        # recolor the higher endpoint of each conflicting pair
        return self.assign_tag(np.unique(v[bad]))


def _tune_config(config: AtosConfig) -> AtosConfig:
    """Apply the paper's Section 6.3 coloring resource budgets.

    72 registers for the persistent uberkernel vs. 42 for the discrete one,
    and 46 KB of shared memory for CTA-sized workers.  A hybrid kernel must
    compile the persistent queue loop, so it carries the persistent budget.
    """
    regs = 72 if (config.is_persistent or config.is_hybrid) else 42
    smem = 46 * 1024 if config.is_cta_worker else 0
    return config.with_overrides(registers_per_thread=regs, shared_mem_per_cta=smem)


def run_atos(
    graph: Csr,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink=None,
) -> AppResult:
    """Asynchronous speculative coloring under an Atos configuration.

    Register/shared-memory budgets follow the paper's Section 6.3 report
    (see :func:`_tune_config`).
    """
    return run_app("coloring", graph, config, spec=spec, max_tasks=max_tasks, sink=sink)


register_app(AppAdapter(
    name="coloring",
    description="speculative greedy coloring (uberkernel vs. BSP rounds)",
    make_kernel=lambda graph: AsyncColoringKernel(graph),
    output=lambda k: k.colors,
    work_units=lambda k: k.assignments,
    extra=lambda k: {
        "conflict_checks": k.conflict_checks,
        "num_colors": int(k.colors.max()) + 1,
    },
    bsp=lambda graph, **kw: run_bsp(graph, **kw),
    tune_config=_tune_config,
))


def run_bsp(
    graph: Csr,
    *,
    spec: GpuSpec = V100_SPEC,
    max_iterations: int = 10_000,
) -> AppResult:
    """BSP speculative greedy coloring (paper Algorithm 5).

    Per outer iteration: an assignment kernel (TWC-bucketed; the three
    degree sub-buckets serialize, vertices within a sub-bucket share a
    snapshot) and a conflict-detection kernel, double-buffered frontiers,
    global barrier after each kernel.
    """
    n = graph.num_vertices
    colors = np.full(n, UNCOLORED, dtype=np.int64)
    frontier = np.arange(n, dtype=np.int64)
    timeline = BspTimeline(spec=spec)
    assignments = 0
    items = 0
    iterations = 0

    while frontier.size:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError("BSP coloring failed to converge")
        edge_count = graph.frontier_edges(frontier)
        items += int(frontier.size)
        assignments += int(frontier.size)
        # kernel 1: assignment, sub-bucket by degree class (buckets
        # serialize against each other), processed in simultaneous waves —
        # items within a wave share one snapshot, successive waves see
        # earlier writes (memory-system coherence across launch waves)
        buckets = twc_buckets(graph, frontier)
        wave = max(1, spec.bsp_wave_items)
        for bucket in (buckets["thread"], buckets["warp"], buckets["cta"]):
            for lo in range(0, bucket.size, wave):
                chunk = bucket[lo : lo + wave]
                snapshot = colors.copy()
                chosen = np.empty(chunk.size, dtype=np.int64)
                for i, v in enumerate(chunk):
                    nbrs = graph.neighbors(v)
                    chosen[i] = _min_available_color(snapshot[nbrs], nbrs.size)
                colors[chunk] = chosen
        timeline.kernel(
            frontier_size=int(frontier.size),
            edge_count=edge_count,
            strategy="twc",
            items_retired=int(frontier.size),
            work_units=float(frontier.size),
        )
        timeline.barrier()
        # kernel 2: conflict detection over the same frontier
        conflicted = np.zeros(frontier.size, dtype=bool)
        for i, v in enumerate(frontier):
            nbrs = graph.neighbors(v)
            conflicted[i] = bool(np.any((colors[nbrs] == colors[v]) & (nbrs < v)))
        timeline.kernel(
            frontier_size=int(frontier.size),
            edge_count=edge_count,
            strategy="twc",
        )
        timeline.barrier()
        timeline.end_iteration()
        frontier = frontier[conflicted]

    return AppResult(
        app="coloring",
        impl="BSP",
        dataset=graph.name,
        elapsed_ns=timeline.now,
        work_units=float(assignments),
        items_retired=items,
        iterations=iterations,
        kernel_launches=timeline.kernel_launches,
        output=colors,
        trace=timeline.trace,
        extra={"num_colors": int(colors.max()) + 1},
    )
