"""PageRank: BSP push PageRank vs. asynchronous (relaxed-barrier) PageRank.

Paper Section 5.2.  Both versions use the *push* (delta/residual)
formulation: every vertex carries a ``rank`` and a ``residue``; processing a
vertex folds its residue into its rank and pushes ``lambda * residue /
out_degree`` to each out-neighbor's residue.  Convergence: all residues
below ``epsilon``.

PageRank is *naturally unordered* (Dijkstra's don't-care non-determinism):
relaxing the barrier produces no misspeculation, and — as the paper finds —
often **less** work than BSP, because residue accumulates across pushes and
an asynchronously-popped hub vertex drains a larger accumulated residue in
one traversal of its edge list (Table 4 ratios below 1).

Formulation note: we use the standard delta-PageRank initialisation
(``rank = 0``, ``residue = 1 - lambda``), whose fixed point is ``n`` times
the usual sum-to-one PageRank vector.  The paper's Algorithm 3 pseudocode
scales its init differently but runs the identical kernel body; the
scheduling behaviour (what the paper studies) is unaffected, and this
version is directly checkable against a power-iteration reference.

Asynchrony discipline: the ``atomicExch`` that claims a vertex's residue is
a single atomic read-modify-write, so it executes at **pop time** (two
concurrent pops of the same vertex cannot double-claim).  The pushes to
neighbors land at **completion time**, and the ``Check_Size`` reservation
scan (Algorithm 4) also runs at completion.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import (
    EMPTY_ITEMS,
    AppAdapter,
    AppResult,
    register_app,
    run_app,
)
from repro.bsp.engine import BspTimeline
from repro.core.config import AtosConfig
from repro.core.kernel import CompletionResult
from repro.graph.csr import Csr
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = [
    "AsyncPageRankKernel",
    "run_atos",
    "run_bsp",
    "reference_ranks",
    "max_rank_error",
    "DEFAULT_LAMBDA",
    "DEFAULT_EPSILON",
]

DEFAULT_LAMBDA = 0.85
DEFAULT_EPSILON = 1e-4


class AsyncPageRankKernel:
    """Atos task kernel for asynchronous PageRank (paper Algorithm 4)."""

    def __init__(
        self,
        graph: Csr,
        *,
        lam: float = DEFAULT_LAMBDA,
        epsilon: float = DEFAULT_EPSILON,
        check_size: int = 64,
    ) -> None:
        if not (0.0 < lam < 1.0):
            raise ValueError("lambda must be in (0, 1)")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if check_size <= 0:
            raise ValueError("check_size must be positive")
        self.graph = graph
        self.lam = lam
        self.epsilon = epsilon
        self.check_size = check_size
        n = graph.num_vertices
        self.rank = np.zeros(n, dtype=np.float64)
        self.residue = np.full(n, 1.0 - lam, dtype=np.float64)
        self.out_deg = graph.out_degrees()
        #: round-robin cursor of the global check counter (Algorithm 4)
        self.check_cursor = 0
        self.edges_traversed = 0
        # In-worklist guard.  The paper's pseudocode omits it, but at our
        # scaled-down vertex counts the check counter wraps every handful of
        # tasks and would flood the queue with duplicates of the same dirty
        # vertex; production asynchronous PageRank implementations (e.g.
        # Groute) carry exactly this flag.  Stored as a per-vertex scan
        # threshold rather than a bool (repro.perf): ``epsilon`` while the
        # vertex is outside the worklist, ``+inf`` while queued, so the
        # reservation scan's two-step ``residue > eps & ~in_queue`` filter
        # collapses to one elementwise compare with identical decisions
        # (residues are finite, so ``residue > inf`` is exactly ``False``).
        self.scan_threshold = np.full(n, np.inf, dtype=np.float64)
        self._n = n
        self._check_offsets = np.arange(check_size, dtype=np.int64)
        # memoised reservation windows (repro.perf): the modular scan
        # ``unique((start + offsets) % n)`` only ever takes n/gcd(check_size,n)
        # distinct values of ``start``, so each sorted window is computed
        # once analytically and reused read-only (see _window)
        self._windows: dict[int, np.ndarray] = {}
        #: hoisted per-call constants and a reusable window-mask buffer
        self._scan_cost = max(1, check_size // 8)
        self._mask_buf = np.empty(check_size, dtype=bool)
        # True when every CSR row is strictly increasing — then a single
        # vertex's neighbor list is duplicate-free and the scalar-path
        # scatter-add can use fancy ``+=`` instead of np.add.at (identical
        # floats: exactly one addition per neighbor either way)
        self._rows_strict = self._check_rows_strict(graph)

    @staticmethod
    def _check_rows_strict(graph: Csr) -> bool:
        """Whether every neighbor list is strictly increasing (O(E), once)."""
        ind = graph.indices
        if ind.size < 2:
            return True
        increasing = ind[1:] > ind[:-1]
        row_start = np.zeros(ind.size, dtype=bool)
        starts = graph.indptr[1:-1]
        row_start[starts[starts < ind.size]] = True
        return bool(np.all(increasing | row_start[1:]))

    def initial_items(self) -> np.ndarray:
        return np.arange(self.graph.num_vertices, dtype=np.int64)

    def work_estimate(self, items: np.ndarray) -> tuple[int, int]:
        # The reservation scan reads check_size consecutive residues —
        # fully coalesced, so it costs roughly one edge-equivalent
        # transaction per 8 scanned values (precomputed in __init__).
        scan_cost = self._scan_cost
        if items.size == 1:
            deg = self.out_deg.item(items.item(0))
            return deg + scan_cost, deg
        degrees = self.graph.indptr[items + 1] - self.graph.indptr[items]
        max_deg = int(degrees.max()) if degrees.size else 0
        return int(degrees.sum()) + scan_cost, max_deg

    def on_read(self, items: np.ndarray, t: float):
        g = self.graph
        if items.size == 1:
            # Scalar fast path: fetch_size=1 warp tasks dominate the hot
            # loop (hundreds of thousands per run); skip the vectorised
            # machinery's fixed per-call overhead.
            v = items.item(0)
            residue = self.residue
            res1 = residue.item(v)
            residue[v] = 0.0
            self.rank[v] += res1
            self.scan_threshold[v] = self.epsilon
            ip = g.indptr
            start, end = ip.item(v), ip.item(v + 1)
            deg = end - start
            if res1 > 0.0 and deg:
                nbrs = g.indices[start:end]
                # scalar contribution: ``np.add.at`` broadcasts it over the
                # neighbor list exactly as the former np.full array did
                return (nbrs, self.lam * res1 / deg, deg)
            return (EMPTY_ITEMS, np.empty(0, dtype=np.float64), 0)
        # atomicExch at the read instant: claim residues, zero them, fold
        # them into the ranks (all one atomic RMW per vertex).  A duplicate
        # queue entry behaves like hardware: the first exchange claims the
        # residue, later copies observe zero — so per-copy residues are
        # zeroed for all occurrences after an item's first.
        res = self.residue[items].copy()
        if items.size > 1:
            order = np.argsort(items, kind="stable")
            sorted_items = items[order]
            later_copy = np.concatenate(([False], sorted_items[1:] == sorted_items[:-1]))
            if later_copy.any():
                dup_positions = order[later_copy]
                res[dup_positions] = 0.0
        self.residue[items] = 0.0
        np.add.at(self.rank, items, res)
        self.scan_threshold[items] = self.epsilon
        degrees = g.indptr[items + 1] - g.indptr[items]
        # only vertices with claimed residue and outgoing edges push
        active = (res > 0.0) & (degrees > 0)
        edge_work = int(degrees[active].sum())
        if edge_work:
            act_items = items[active]
            _, nbrs = g.gather_neighbors(act_items)
            contrib_per_src = self.lam * res[active] / degrees[active]
            src_pos = np.repeat(np.arange(act_items.size), degrees[active])
            contrib = contrib_per_src[src_pos]
            return (nbrs, contrib, edge_work)
        return (EMPTY_ITEMS, np.empty(0, dtype=np.float64), edge_work)

    def on_complete(self, items: np.ndarray, payload, t: float) -> CompletionResult:
        nbrs, contrib, edge_work = payload
        self.edges_traversed += edge_work
        residue = self.residue
        if nbrs.size:
            if type(contrib) is float and self._rows_strict:
                # scalar payload = one source vertex's duplicate-free
                # neighbor list: fancy += performs the same one addition
                # per neighbor as np.add.at, minus its per-element cost
                residue[nbrs] += contrib
            else:
                np.add.at(residue, nbrs, contrib)
        # Check_Size reservation: scan the next window of vertex ids and
        # re-enqueue any whose residue exceeds epsilon (paper Algorithm 4).
        # ``dirty & ~in_queue`` is one elementwise compare against the
        # per-vertex scan_threshold (epsilon when poppable, +inf when queued).
        n = self._n
        thresh = self.scan_threshold
        start = self.check_cursor
        stop = start + self.check_size
        self.check_cursor = stop % n
        if stop <= n:
            # contiguous window: slice views instead of fancy indexing (the
            # common case — one call per completed task); the mask buffer is
            # exactly check_size wide, the width of every contiguous window
            mask = np.greater(residue[start:stop], thresh[start:stop], out=self._mask_buf)
            dirty = mask.nonzero()[0]
            if dirty.size:
                dirty += start
                thresh[dirty] = np.inf
        else:
            # When check_size exceeds |V| the modular window wraps and would
            # list a vertex twice; the threshold filter reads the guard
            # *before* setting it, so duplicates would both pass and the
            # queue would accumulate copies (and the exchange would double
            # residue mass).  _window dedups and sorts analytically.
            window = self._window(start, n)
            dirty = window[residue[window] > thresh[window]]
            thresh[dirty] = np.inf
        return CompletionResult(
            new_items=dirty,
            items_retired=int(items.size),
            work_units=float(edge_work),
        )

    def _window(self, start: int, n: int) -> np.ndarray:
        """Sorted deduplicated reservation window starting at ``start``.

        Equals ``np.unique((start + self._check_offsets) % n)``: a run of
        ``check_size`` consecutive ids mod ``n`` covers all of ``[0, n)``
        when ``check_size >= n`` and is otherwise duplicate-free, so the
        sorted result is one or two plain ranges — no hashing or sorting.
        This is the single hottest line of the simulator (one call per
        completed task); windows are memoised read-only per cursor value.
        """
        cached = self._windows.get(start)
        if cached is not None:
            return cached
        cs = self.check_size
        if cs >= n:
            window = np.arange(n, dtype=np.int64)
        elif start + cs <= n:
            window = np.arange(start, start + cs, dtype=np.int64)
        else:  # wraps past n: [0, start+cs-n) then [start, n)
            window = np.concatenate(
                (
                    np.arange(start + cs - n, dtype=np.int64),
                    np.arange(start, n, dtype=np.int64),
                )
            )
        if len(self._windows) < 4096:  # bound memo growth on huge graphs
            window.setflags(write=False)
            self._windows[start] = window
        return window

    def generation_check(self, t: float) -> np.ndarray:
        """f2 sweep at the end of a discrete generation: workers that fail
        to pop scan the residue array for dirty vertices (paper Listing 3's
        f2 slot).  Without it, dirty vertices discovered late dribble
        across hundreds of near-empty generations."""
        return self.final_check(t)

    def final_check(self, t: float) -> np.ndarray:
        """Quiescence rescan: the whole residue array, once."""
        dirty = np.flatnonzero(self.residue > self.scan_threshold)
        self.scan_threshold[dirty] = np.inf
        return dirty.astype(np.int64)


def run_atos(
    graph: Csr,
    config: AtosConfig,
    *,
    lam: float = DEFAULT_LAMBDA,
    epsilon: float = DEFAULT_EPSILON,
    check_size: int = 64,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink=None,
) -> AppResult:
    """Asynchronous PageRank under an Atos configuration."""
    return run_app(
        "pagerank",
        graph,
        config,
        spec=spec,
        max_tasks=max_tasks,
        sink=sink,
        lam=lam,
        epsilon=epsilon,
        check_size=check_size,
    )


def run_bsp(
    graph: Csr,
    *,
    lam: float = DEFAULT_LAMBDA,
    epsilon: float = DEFAULT_EPSILON,
    spec: GpuSpec = V100_SPEC,
    strategy: str = "lbs",
    max_iterations: int = 10_000,
) -> AppResult:
    """BSP push PageRank (paper Algorithm 3): two kernels per iteration.

    Kernel 1 drains the residues of the frontier and pushes to neighbors;
    kernel 2 scans all vertices and builds the next frontier from residues
    above epsilon.  Global barriers separate the kernels.
    """
    n = graph.num_vertices
    rank = np.zeros(n, dtype=np.float64)
    residue = np.full(n, 1.0 - lam, dtype=np.float64)
    out_deg = graph.out_degrees()
    frontier = np.arange(n, dtype=np.int64)
    timeline = BspTimeline(spec=spec)
    edges_traversed = 0
    items = 0
    iterations = 0

    while frontier.size:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError("BSP PageRank failed to converge")
        res = residue[frontier].copy()
        residue[frontier] = 0.0
        rank[frontier] += res
        degrees = out_deg[frontier]
        active = (res > 0.0) & (degrees > 0)
        act = frontier[active]
        edge_count = int(degrees[active].sum())
        edges_traversed += edge_count
        items += int(frontier.size)
        if edge_count:
            _, nbrs = graph.gather_neighbors(act)
            contrib_per_src = lam * res[active] / degrees[active]
            contrib = np.repeat(contrib_per_src, degrees[active])
            np.add.at(residue, nbrs, contrib)
        # kernel 1: push residues along frontier edges
        timeline.kernel(
            frontier_size=int(frontier.size),
            edge_count=edge_count,
            strategy=strategy,
            items_retired=int(frontier.size),
            work_units=float(edge_count),
        )
        timeline.barrier()
        # kernel 2: full scan for the next frontier (reads every residue,
        # prefix-sums, and writes the compacted frontier — three passes)
        timeline.kernel(frontier_size=n, edge_count=2 * n, strategy="none")
        timeline.barrier()
        timeline.end_iteration()
        frontier = np.flatnonzero(residue > epsilon).astype(np.int64)

    return AppResult(
        app="pagerank",
        impl="BSP",
        dataset=graph.name,
        elapsed_ns=timeline.now,
        work_units=float(edges_traversed),
        items_retired=items,
        iterations=iterations,
        kernel_launches=timeline.kernel_launches,
        output=rank,
        trace=timeline.trace,
        extra={"residue_left": float(residue.max())},
    )


register_app(AppAdapter(
    name="pagerank",
    description="push PageRank (asynchronous residue vs. BSP iterations)",
    make_kernel=lambda graph, lam=DEFAULT_LAMBDA, epsilon=DEFAULT_EPSILON,
    check_size=64: AsyncPageRankKernel(
        graph, lam=lam, epsilon=epsilon, check_size=check_size
    ),
    output=lambda k: k.rank,
    work_units=lambda k: k.edges_traversed,
    extra=lambda k: {"residue_left": float(k.residue.max())},
    bsp=run_bsp,
))


def reference_ranks(
    graph: Csr, *, lam: float = DEFAULT_LAMBDA, tol: float = 1e-12, max_iter: int = 2000
) -> np.ndarray:
    """Power-iteration fixed point of the delta-PageRank formulation.

    Solves ``p = (1 - lam) * 1 + lam * A^T D^{-1} p`` (the vector our push
    implementations converge to; it equals ``n`` times the sum-to-one
    PageRank on graphs without dangling vertices).
    """
    n = graph.num_vertices
    out_deg = graph.out_degrees().astype(np.float64)
    safe_deg = np.maximum(out_deg, 1.0)
    p = np.full(n, 1.0 - lam, dtype=np.float64)
    edges = graph.edge_array()
    src, dst = edges[:, 0], edges[:, 1]
    for _ in range(max_iter):
        contrib = np.zeros(n, dtype=np.float64)
        np.add.at(contrib, dst, lam * p[src] / safe_deg[src])
        new_p = (1.0 - lam) + contrib
        if np.abs(new_p - p).max() < tol:
            return new_p
        p = new_p
    return p


def max_rank_error(graph: Csr, rank: np.ndarray, *, lam: float = DEFAULT_LAMBDA) -> float:
    """Max absolute deviation of ``rank`` from the power-iteration reference."""
    ref = reference_ranks(graph, lam=lam)
    return float(np.abs(rank - ref).max())
