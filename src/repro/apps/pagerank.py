"""PageRank: BSP push PageRank vs. asynchronous (relaxed-barrier) PageRank.

Paper Section 5.2.  Both versions use the *push* (delta/residual)
formulation: every vertex carries a ``rank`` and a ``residue``; processing a
vertex folds its residue into its rank and pushes ``lambda * residue /
out_degree`` to each out-neighbor's residue.  Convergence: all residues
below ``epsilon``.

PageRank is *naturally unordered* (Dijkstra's don't-care non-determinism):
relaxing the barrier produces no misspeculation, and — as the paper finds —
often **less** work than BSP, because residue accumulates across pushes and
an asynchronously-popped hub vertex drains a larger accumulated residue in
one traversal of its edge list (Table 4 ratios below 1).

Formulation note: we use the standard delta-PageRank initialisation
(``rank = 0``, ``residue = 1 - lambda``), whose fixed point is ``n`` times
the usual sum-to-one PageRank vector.  The paper's Algorithm 3 pseudocode
scales its init differently but runs the identical kernel body; the
scheduling behaviour (what the paper studies) is unaffected, and this
version is directly checkable against a power-iteration reference.

Asynchrony discipline: the ``atomicExch`` that claims a vertex's residue is
a single atomic read-modify-write, so it executes at **pop time** (two
concurrent pops of the same vertex cannot double-claim).  The pushes to
neighbors land at **completion time**, and the ``Check_Size`` reservation
scan (Algorithm 4) also runs at completion.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import (
    EMPTY_ITEMS,
    AppAdapter,
    AppResult,
    register_app,
    run_app,
)
from repro.bsp.engine import BspTimeline
from repro.core.config import AtosConfig
from repro.core.kernel import CompletionResult
from repro.graph.csr import Csr
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = [
    "AsyncPageRankKernel",
    "run_atos",
    "run_bsp",
    "reference_ranks",
    "max_rank_error",
    "DEFAULT_LAMBDA",
    "DEFAULT_EPSILON",
]

DEFAULT_LAMBDA = 0.85
DEFAULT_EPSILON = 1e-4


class AsyncPageRankKernel:
    """Atos task kernel for asynchronous PageRank (paper Algorithm 4)."""

    def __init__(
        self,
        graph: Csr,
        *,
        lam: float = DEFAULT_LAMBDA,
        epsilon: float = DEFAULT_EPSILON,
        check_size: int = 64,
    ) -> None:
        if not (0.0 < lam < 1.0):
            raise ValueError("lambda must be in (0, 1)")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if check_size <= 0:
            raise ValueError("check_size must be positive")
        self.graph = graph
        self.lam = lam
        self.epsilon = epsilon
        self.check_size = check_size
        n = graph.num_vertices
        self.rank = np.zeros(n, dtype=np.float64)
        self.residue = np.full(n, 1.0 - lam, dtype=np.float64)
        self.out_deg = graph.out_degrees()
        #: round-robin cursor of the global check counter (Algorithm 4)
        self.check_cursor = 0
        self.edges_traversed = 0
        # In-worklist guard (one bit per vertex).  The paper's pseudocode
        # omits it, but at our scaled-down vertex counts the check counter
        # wraps every handful of tasks and would flood the queue with
        # duplicates of the same dirty vertex; production asynchronous
        # PageRank implementations (e.g. Groute) carry exactly this flag.
        self.in_queue = np.ones(n, dtype=bool)
        self._check_offsets = np.arange(check_size, dtype=np.int64)

    def initial_items(self) -> np.ndarray:
        return np.arange(self.graph.num_vertices, dtype=np.int64)

    def work_estimate(self, items: np.ndarray) -> tuple[int, int]:
        # The reservation scan reads check_size consecutive residues —
        # fully coalesced, so it costs roughly one edge-equivalent
        # transaction per 8 scanned values.
        scan_cost = max(1, self.check_size // 8)
        if items.size == 1:
            v = int(items[0])
            deg = int(self.graph.indptr[v + 1] - self.graph.indptr[v])
            return deg + scan_cost, deg
        degrees = self.graph.indptr[items + 1] - self.graph.indptr[items]
        max_deg = int(degrees.max()) if degrees.size else 0
        return int(degrees.sum()) + scan_cost, max_deg

    def on_read(self, items: np.ndarray, t: float):
        g = self.graph
        if items.size == 1:
            # Scalar fast path: fetch_size=1 warp tasks dominate the hot
            # loop (hundreds of thousands per run); skip the vectorised
            # machinery's fixed per-call overhead.
            v = int(items[0])
            res1 = float(self.residue[v])
            self.residue[v] = 0.0
            self.rank[v] += res1
            self.in_queue[v] = False
            start, end = int(g.indptr[v]), int(g.indptr[v + 1])
            deg = end - start
            if res1 > 0.0 and deg:
                nbrs = g.indices[start:end]
                contrib = np.full(deg, self.lam * res1 / deg)
                return (nbrs, contrib, deg)
            return (EMPTY_ITEMS, np.empty(0, dtype=np.float64), 0)
        # atomicExch at the read instant: claim residues, zero them, fold
        # them into the ranks (all one atomic RMW per vertex).  A duplicate
        # queue entry behaves like hardware: the first exchange claims the
        # residue, later copies observe zero — so per-copy residues are
        # zeroed for all occurrences after an item's first.
        res = self.residue[items].copy()
        if items.size > 1:
            order = np.argsort(items, kind="stable")
            sorted_items = items[order]
            later_copy = np.concatenate(([False], sorted_items[1:] == sorted_items[:-1]))
            if later_copy.any():
                dup_positions = order[later_copy]
                res[dup_positions] = 0.0
        self.residue[items] = 0.0
        np.add.at(self.rank, items, res)
        self.in_queue[items] = False
        degrees = g.indptr[items + 1] - g.indptr[items]
        # only vertices with claimed residue and outgoing edges push
        active = (res > 0.0) & (degrees > 0)
        edge_work = int(degrees[active].sum())
        if edge_work:
            act_items = items[active]
            _, nbrs = g.gather_neighbors(act_items)
            contrib_per_src = self.lam * res[active] / degrees[active]
            src_pos = np.repeat(np.arange(act_items.size), degrees[active])
            contrib = contrib_per_src[src_pos]
            return (nbrs, contrib, edge_work)
        return (EMPTY_ITEMS, np.empty(0, dtype=np.float64), edge_work)

    def on_complete(self, items: np.ndarray, payload, t: float) -> CompletionResult:
        nbrs, contrib, edge_work = payload
        self.edges_traversed += edge_work
        if nbrs.size:
            np.add.at(self.residue, nbrs, contrib)
        # Check_Size reservation: scan the next window of vertex ids and
        # re-enqueue any whose residue exceeds epsilon (paper Algorithm 4).
        n = self.graph.num_vertices
        start = self.check_cursor
        self.check_cursor = (start + self.check_size) % n
        # When check_size exceeds |V| the modular window wraps and would
        # list a vertex twice; the in_queue filter reads the guard *before*
        # setting it, so duplicates would both pass and the queue would
        # accumulate copies (and the exchange would double residue mass).
        window = np.unique((start + self._check_offsets) % n)
        dirty = window[(self.residue[window] > self.epsilon) & ~self.in_queue[window]]
        self.in_queue[dirty] = True
        return CompletionResult(
            new_items=dirty,
            items_retired=int(items.size),
            work_units=float(edge_work),
        )

    def generation_check(self, t: float) -> np.ndarray:
        """f2 sweep at the end of a discrete generation: workers that fail
        to pop scan the residue array for dirty vertices (paper Listing 3's
        f2 slot).  Without it, dirty vertices discovered late dribble
        across hundreds of near-empty generations."""
        return self.final_check(t)

    def final_check(self, t: float) -> np.ndarray:
        """Quiescence rescan: the whole residue array, once."""
        dirty = np.flatnonzero((self.residue > self.epsilon) & ~self.in_queue)
        self.in_queue[dirty] = True
        return dirty.astype(np.int64)


def run_atos(
    graph: Csr,
    config: AtosConfig,
    *,
    lam: float = DEFAULT_LAMBDA,
    epsilon: float = DEFAULT_EPSILON,
    check_size: int = 64,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink=None,
) -> AppResult:
    """Asynchronous PageRank under an Atos configuration."""
    return run_app(
        "pagerank",
        graph,
        config,
        spec=spec,
        max_tasks=max_tasks,
        sink=sink,
        lam=lam,
        epsilon=epsilon,
        check_size=check_size,
    )


def run_bsp(
    graph: Csr,
    *,
    lam: float = DEFAULT_LAMBDA,
    epsilon: float = DEFAULT_EPSILON,
    spec: GpuSpec = V100_SPEC,
    strategy: str = "lbs",
    max_iterations: int = 10_000,
) -> AppResult:
    """BSP push PageRank (paper Algorithm 3): two kernels per iteration.

    Kernel 1 drains the residues of the frontier and pushes to neighbors;
    kernel 2 scans all vertices and builds the next frontier from residues
    above epsilon.  Global barriers separate the kernels.
    """
    n = graph.num_vertices
    rank = np.zeros(n, dtype=np.float64)
    residue = np.full(n, 1.0 - lam, dtype=np.float64)
    out_deg = graph.out_degrees()
    frontier = np.arange(n, dtype=np.int64)
    timeline = BspTimeline(spec=spec)
    edges_traversed = 0
    items = 0
    iterations = 0

    while frontier.size:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError("BSP PageRank failed to converge")
        res = residue[frontier].copy()
        residue[frontier] = 0.0
        rank[frontier] += res
        degrees = out_deg[frontier]
        active = (res > 0.0) & (degrees > 0)
        act = frontier[active]
        edge_count = int(degrees[active].sum())
        edges_traversed += edge_count
        items += int(frontier.size)
        if edge_count:
            _, nbrs = graph.gather_neighbors(act)
            contrib_per_src = lam * res[active] / degrees[active]
            contrib = np.repeat(contrib_per_src, degrees[active])
            np.add.at(residue, nbrs, contrib)
        # kernel 1: push residues along frontier edges
        timeline.kernel(
            frontier_size=int(frontier.size),
            edge_count=edge_count,
            strategy=strategy,
            items_retired=int(frontier.size),
            work_units=float(edge_count),
        )
        timeline.barrier()
        # kernel 2: full scan for the next frontier (reads every residue,
        # prefix-sums, and writes the compacted frontier — three passes)
        timeline.kernel(frontier_size=n, edge_count=2 * n, strategy="none")
        timeline.barrier()
        timeline.end_iteration()
        frontier = np.flatnonzero(residue > epsilon).astype(np.int64)

    return AppResult(
        app="pagerank",
        impl="BSP",
        dataset=graph.name,
        elapsed_ns=timeline.now,
        work_units=float(edges_traversed),
        items_retired=items,
        iterations=iterations,
        kernel_launches=timeline.kernel_launches,
        output=rank,
        trace=timeline.trace,
        extra={"residue_left": float(residue.max())},
    )


register_app(AppAdapter(
    name="pagerank",
    description="push PageRank (asynchronous residue vs. BSP iterations)",
    make_kernel=lambda graph, lam=DEFAULT_LAMBDA, epsilon=DEFAULT_EPSILON,
    check_size=64: AsyncPageRankKernel(
        graph, lam=lam, epsilon=epsilon, check_size=check_size
    ),
    output=lambda k: k.rank,
    work_units=lambda k: k.edges_traversed,
    extra=lambda k: {"residue_left": float(k.residue.max())},
    bsp=run_bsp,
))


def reference_ranks(
    graph: Csr, *, lam: float = DEFAULT_LAMBDA, tol: float = 1e-12, max_iter: int = 2000
) -> np.ndarray:
    """Power-iteration fixed point of the delta-PageRank formulation.

    Solves ``p = (1 - lam) * 1 + lam * A^T D^{-1} p`` (the vector our push
    implementations converge to; it equals ``n`` times the sum-to-one
    PageRank on graphs without dangling vertices).
    """
    n = graph.num_vertices
    out_deg = graph.out_degrees().astype(np.float64)
    safe_deg = np.maximum(out_deg, 1.0)
    p = np.full(n, 1.0 - lam, dtype=np.float64)
    edges = graph.edge_array()
    src, dst = edges[:, 0], edges[:, 1]
    for _ in range(max_iter):
        contrib = np.zeros(n, dtype=np.float64)
        np.add.at(contrib, dst, lam * p[src] / safe_deg[src])
        new_p = (1.0 - lam) + contrib
        if np.abs(new_p - p).max() < tol:
            return new_p
        p = new_p
    return p


def max_rank_error(graph: Csr, rank: np.ndarray, *, lam: float = DEFAULT_LAMBDA) -> float:
    """Max absolute deviation of ``rank`` from the power-iteration reference."""
    ref = reference_ranks(graph, lam=lam)
    return float(np.abs(rank - ref).max())
