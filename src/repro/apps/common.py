"""Shared application plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.sim.trace import ThroughputTrace

__all__ = ["AppResult", "EMPTY_ITEMS"]

EMPTY_ITEMS = np.empty(0, dtype=np.int64)


@dataclass
class AppResult:
    """Uniform result record for one application run (BSP or Atos).

    ``work_units`` is the application's Table 4 currency: edge traversals
    for BFS and PageRank, color-assignment operations for graph coloring.
    ``output`` holds the algorithm artifact (depth array, rank array, color
    array) for validation.
    """

    app: str
    impl: str  # "BSP", "persist-warp", ...
    dataset: str
    elapsed_ns: float
    work_units: float
    items_retired: int
    iterations: int
    kernel_launches: int
    output: np.ndarray = field(repr=False)
    trace: ThroughputTrace = field(repr=False, default_factory=ThroughputTrace)
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def elapsed_ms(self) -> float:
        """Simulated runtime in milliseconds (Table 1 unit)."""
        return self.elapsed_ns / 1e6

    def speedup_over(self, baseline: "AppResult") -> float:
        """``baseline_time / self_time`` — the parenthesised Table 1 number."""
        if self.elapsed_ns <= 0:
            raise ValueError("cannot compute speedup of a zero-time run")
        return baseline.elapsed_ns / self.elapsed_ns

    def workload_ratio(self, baseline_work: float) -> float:
        """``self_work / baseline_work`` — the Table 4 number."""
        if baseline_work <= 0:
            raise ValueError("baseline work must be positive")
        return self.work_units / baseline_work
