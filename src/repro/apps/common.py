"""Shared application plumbing: result record + the app dispatch registry.

Every application used to carry its own ``run_atos`` glue — construct the
kernel, call the scheduler, copy a dozen ``RunResult`` fields into an
:class:`AppResult`.  The :class:`AppAdapter` registry replaces those
copies with one dispatch path:

* an adapter describes how to build the app's task kernel, read its
  artifact/work counters, and (optionally) run its BSP frontier engine;
* :func:`run_app` resolves the execution policy from the config
  (:func:`repro.core.policy.policy_for`), routes app-level policies (BSP)
  to the adapter's frontier function and engine-level policies through
  :func:`repro.core.policy.run_policy`, and assembles the uniform
  :class:`AppResult` — including one consistent ``extra`` metrics block
  for every app.

App modules self-register at import time (``register_app`` at module
bottom); importing :mod:`repro.apps` loads all eight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.config import AtosConfig
from repro.core.engine import RunResult
from repro.core.policy import policy_for, run_policy
from repro.sim.spec import V100_SPEC, GpuSpec
from repro.sim.trace import ThroughputTrace

__all__ = [
    "AppResult",
    "EMPTY_ITEMS",
    "AppAdapter",
    "APP_REGISTRY",
    "register_app",
    "app_names",
    "get_adapter",
    "run_app",
]

EMPTY_ITEMS = np.empty(0, dtype=np.int64)


@dataclass
class AppResult:
    """Uniform result record for one application run (BSP or Atos).

    ``work_units`` is the application's Table 4 currency: edge traversals
    for BFS and PageRank, color-assignment operations for graph coloring.
    ``output`` holds the algorithm artifact (depth array, rank array, color
    array) for validation.
    """

    app: str
    impl: str  # "BSP", "persist-warp", ...
    dataset: str
    elapsed_ns: float
    work_units: float
    items_retired: int
    iterations: int
    kernel_launches: int
    output: np.ndarray = field(repr=False)
    trace: ThroughputTrace = field(repr=False, default_factory=ThroughputTrace)
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def elapsed_ms(self) -> float:
        """Simulated runtime in milliseconds (Table 1 unit)."""
        return self.elapsed_ns / 1e6

    def speedup_over(self, baseline: "AppResult") -> float:
        """``baseline_time / self_time`` — the parenthesised Table 1 number."""
        if self.elapsed_ns <= 0:
            raise ValueError("cannot compute speedup of a zero-time run")
        return baseline.elapsed_ns / self.elapsed_ns

    def workload_ratio(self, baseline_work: float) -> float:
        """``self_work / baseline_work`` — the Table 4 number."""
        if baseline_work <= 0:
            raise ValueError("baseline work must be positive")
        return self.work_units / baseline_work


# ---------------------------------------------------------------------------
# App adapter registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AppAdapter:
    """How the dispatch layer drives one application.

    ``make_kernel(graph, **params)`` builds the app's task kernel (None for
    BSP-only apps like delta-stepping SSSP); ``output`` / ``work_units`` /
    ``extra`` read the artifact and counters back off the finished kernel;
    ``bsp`` is the app-level frontier engine for the BSP policy;
    ``tune_config`` applies app-specific resource budgets (e.g. coloring's
    Section 6.3 register/shared-memory figures) before the run.

    ``dynamic`` marks incremental (multi-epoch) variants whose kernels
    implement the ``rebase`` hook (:mod:`repro.apps.dynamic`).  They run
    through :func:`repro.apps.dynamic.replay_app`, not a single
    ``run_app`` call, so static enumeration surfaces — the bench matrix,
    the all-apps oracle sweep — skip them.
    """

    name: str
    description: str
    make_kernel: Callable[..., Any] | None
    output: Callable[[Any], np.ndarray] | None = None
    work_units: Callable[[Any], float] | None = None
    extra: Callable[[Any], dict[str, Any]] | None = None
    bsp: Callable[..., "AppResult"] | None = None
    tune_config: Callable[[AtosConfig], AtosConfig] | None = None
    dynamic: bool = False


APP_REGISTRY: dict[str, AppAdapter] = {}


def register_app(adapter: AppAdapter) -> AppAdapter:
    """Register an application adapter (called at app-module import)."""
    APP_REGISTRY[adapter.name] = adapter
    return adapter


def _ensure_registered() -> None:
    # App modules self-register on import; importing the package pulls in
    # all of them.  Deferred to avoid a common <-> apps import cycle.
    if not APP_REGISTRY:
        import repro.apps  # noqa: F401


def app_names() -> list[str]:
    """Sorted names of every registered application."""
    _ensure_registered()
    return sorted(APP_REGISTRY)


def get_adapter(app: str) -> AppAdapter:
    """Look up an application adapter by name."""
    _ensure_registered()
    try:
        return APP_REGISTRY[app]
    except KeyError:
        raise KeyError(f"unknown app {app!r}; known: {sorted(APP_REGISTRY)}") from None


def _base_extra(res: RunResult) -> dict[str, Any]:
    """The scheduler-level metrics every Atos-policy run reports."""
    extra = {
        "worker_slots": res.worker_slots,
        "occupancy": res.occupancy_fraction,
        "queue_contention_ns": res.queue_contention_ns,
        "total_tasks": res.total_tasks,
        "mem_utilization": res.mem_utilization,
        "empty_pops": res.empty_pops,
        "steals": res.steals,
        "failed_steals": res.failed_steals,
        "policy_switches": res.policy_switches,
        "queue_pushes": res.queue_pushes,
        "queue_pops": res.queue_pops,
        "queue_items_pushed": res.queue_items_pushed,
        "queue_items_popped": res.queue_items_popped,
        "queue_items_banked": res.queue_items_banked,
    }
    # device-dimension block only on multi-device runs, so the extra dict
    # (and everything serialized from it) is unchanged for devices=1
    if res.devices > 1:
        extra["devices"] = res.devices
        extra["remote_pushes"] = res.remote_pushes
        extra["remote_items"] = res.remote_items
        extra["remote_steals"] = res.remote_steals
        extra["comm_ns"] = res.comm_ns
        if res.device_stats is not None:
            extra["device_stats"] = res.device_stats
    return extra


def run_app(
    app: str,
    graph,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink=None,
    validate: bool = False,
    metrics=False,
    perturb=None,
    backend: str | None = None,
    **params,
) -> AppResult:
    """Run application ``app`` on ``graph`` under ``config``'s policy.

    The single entry point behind every per-app ``run_atos`` wrapper, the
    :class:`~repro.harness.runner.Lab` matrix and the ``python -m repro
    run`` CLI.  ``params`` are forwarded to the adapter's kernel factory
    (or, for the BSP policy, to its frontier engine): e.g. ``source=`` for
    BFS/SSSP, ``epsilon=`` for PageRank.

    ``validate=True`` checks the finished output against the app's answer
    oracle (:func:`repro.check.oracles.validate`) and raises
    :class:`repro.check.oracles.OracleError` on a wrong answer — works
    for every policy, BSP included.  On engine-level policies it also
    attaches a live :class:`~repro.check.invariants.InvariantMonitor`,
    composed with any user ``sink`` through
    :class:`~repro.obs.events.MultiSink`, and raises
    :class:`~repro.check.invariants.InvariantViolation` if the run broke
    a model law (previously a user sink and the monitor were mutually
    exclusive).

    ``metrics=True`` (or a pre-configured
    :class:`~repro.metrics.sink.MetricsSink`) streams the run's telemetry
    and stores the :func:`~repro.metrics.summary.summarize` document in
    ``result.extra["metrics"]``.  Sinks are passive, so attaching any
    combination leaves simulated results bit-identical.

    ``perturb`` is the engine's pop-stagger hook (see
    :meth:`~repro.core.engine.ExecutionEngine.pop_stagger`); it requires
    an engine-level policy.

    ``backend`` overrides the engine inner loop
    (:mod:`repro.core.backend`; ``None`` keeps ``config.backend``).  The
    configuration's name is untouched, so results and digests stay
    comparable across backends — every backend is observably
    bit-identical.  App-level policies (BSP) have no engine and ignore it.
    """
    if backend is not None and backend != config.backend:
        config = config.with_overrides(backend=backend)
    adapter = get_adapter(app)
    policy = policy_for(config)
    if policy.app_level:
        if adapter.bsp is None:
            raise ValueError(f"app {app!r} has no BSP implementation")
        if perturb is not None:
            raise ValueError(
                f"policy {policy.name!r} runs at application level; "
                "perturb requires an engine-level policy"
            )
        if metrics:
            raise ValueError(
                f"policy {policy.name!r} runs at application level and emits "
                "no engine events; metrics requires an engine-level policy"
            )
        result = adapter.bsp(graph, spec=spec, **params)
        if validate:
            _validate_output(app, graph, result, params)
        return result
    if adapter.make_kernel is None:
        raise ValueError(
            f"app {app!r} is BSP-only and cannot run under an Atos policy"
        )
    if adapter.tune_config is not None:
        config = adapter.tune_config(config)
    kernel = adapter.make_kernel(graph, **params)
    metrics_sink = None
    if metrics:
        from repro.metrics.sink import MetricsSink

        metrics_sink = metrics if isinstance(metrics, MetricsSink) else MetricsSink()
    monitor = None
    if validate:
        from repro.check.invariants import InvariantMonitor

        monitor = InvariantMonitor()
    effective_sink = sink
    if metrics_sink is not None or monitor is not None:
        from repro.obs.events import MultiSink

        attached = [s for s in (sink, metrics_sink, monitor) if s is not None]
        effective_sink = attached[0] if len(attached) == 1 else MultiSink(*attached)
    res = run_policy(
        kernel, config, policy=policy, spec=spec, max_tasks=max_tasks,
        sink=effective_sink, perturb=perturb,
    )
    extra = _base_extra(res)
    if adapter.extra is not None:
        extra.update(adapter.extra(kernel))
    result = AppResult(
        app=adapter.name,
        impl=config.name,
        dataset=graph.name,
        elapsed_ns=res.elapsed_ns,
        work_units=float(adapter.work_units(kernel)),
        items_retired=res.items_retired,
        iterations=res.generations,
        kernel_launches=res.kernel_launches,
        output=adapter.output(kernel),
        trace=res.trace,
        extra=extra,
    )
    if metrics_sink is not None:
        from repro.metrics.summary import summarize

        result.extra["metrics"] = summarize(
            metrics_sink,
            app=adapter.name,
            dataset=graph.name,
            config=config.name,
            elapsed_ns=res.elapsed_ns,
        )
    if monitor is not None:
        monitor.reconcile(result)
        monitor.assert_clean()
    if validate:
        _validate_output(app, graph, result, params)
    return result


def _validate_output(app: str, graph, result: AppResult, params: dict) -> None:
    """Oracle-check a finished run (raises on a wrong answer).

    Imported lazily: :mod:`repro.check` depends on this module for the
    fuzzer's run plumbing, so the import must not run at module load.
    """
    from repro.check.oracles import validate as oracle_validate

    oracle_validate(app, graph, result, **params).assert_valid()
