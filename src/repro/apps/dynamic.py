"""Incremental BFS, CC and PageRank over a mutating graph.

The static kernels answer "solve this graph"; the incremental variants
here answer "the graph just changed — repair the answer".  Each subclass
keeps its parent's execution semantics bit-for-bit (the same ``on_read``
/ ``on_complete`` bodies drive the same label-correcting convergence)
and adds the :meth:`rebase` hook :func:`repro.core.dynamic.iterate_epochs`
calls between epochs: given the new CSR snapshot and the *effective*
edge changes (:class:`~repro.graph.delta.AppliedBatch`), ``rebase``
invalidates exactly the state the edits could have corrupted and stages
a repair worklist — which the next ``initial_items()`` returns — so the
engine converges from the previous fixpoint instead of recomputing.

Why each rebase is sound (the differential harness then proves it):

* **BFS** — a deleted edge ``(u, v)`` only matters if it certified
  ``v``'s depth (``depth[v] == depth[u] + 1``).  The invalid region is
  the closure of such victims over *new-graph* edges that chain the
  certification (``depth[y] == depth[x] + 1``); every vertex outside the
  closure keeps some entirely-surviving shortest path (induction on
  depth: a vertex whose surviving shortest parents all sit in the
  closure joins the closure; one whose shortest-parent edges were all
  deleted is itself a victim).  Closure members reset to ``UNREACHED``;
  seeds are the still-reached frontier pointing *into* the closure plus
  the sources of inserted edges — the label-correcting kernel re-pushes
  every improved vertex, so repairs cascade.
* **CC** — labels carry no distance structure, so deletions are repaired
  component-locally: every component containing a deleted endpoint is
  reset to singleton labels and fully re-seeded (its min-label fixpoint
  is recomputed from scratch *inside* the component, which is the only
  place its labels could have depended on the deleted edges — on the
  symmetric graphs CC targets, no edge leaves a component).  Inserted
  edges can only merge components: seeding both endpoints lets the
  smaller label flood the other component.
* **PageRank** — push PageRank maintains
  ``residue = (1-λ)·1 + λ·AᵀD⁻¹·rank − rank`` as an exact algebraic
  invariant.  A topology change perturbs only the columns of sources
  whose out-edges changed, so ``rebase`` restores the invariant directly:
  for each such source ``u`` it withdraws ``λ·rank[u]/deg_old`` from the
  old neighbors and deposits ``λ·rank[u]/deg_new`` on the new ones.
  Withdrawals make residues *signed*, which the static kernel's
  ``residue > 0`` claims would strand — the overrides below claim and
  scan on ``|residue|`` instead (``residue != 0`` to claim,
  ``|residue| > threshold`` to re-enqueue), converging to the new
  fixpoint with two-sided residual ``|r| ≤ ε``.

The adapters register as ``bfs-inc`` / ``cc-inc`` / ``pagerank-inc``
with ``dynamic=True``, so static enumeration surfaces (the bench matrix,
all-apps oracle sweeps) skip them; :func:`replay_app` is their entry
point and the differential edit-replay harness: one kernel, one sink,
one digest across every epoch, with the per-epoch output validated
against the from-scratch oracle on the materialized snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace

import numpy as np

from repro.apps.bfs import UNREACHED, SpeculativeBfsKernel
from repro.apps.cc import AsyncCcKernel
from repro.apps.common import (
    EMPTY_ITEMS,
    AppAdapter,
    AppResult,
    _base_extra,
    _validate_output,
    get_adapter,
    register_app,
)
from repro.apps.pagerank import DEFAULT_EPSILON, DEFAULT_LAMBDA, AsyncPageRankKernel
from repro.core.config import AtosConfig
from repro.core.dynamic import iterate_epochs
from repro.graph.csr import Csr
from repro.graph.delta import AppliedBatch, EditScript, parse_edits
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = [
    "IncrementalBfsKernel",
    "IncrementalCcKernel",
    "IncrementalPageRankKernel",
    "EpochResult",
    "DynamicAppResult",
    "replay_totals",
    "replay_app",
]


# ---------------------------------------------------------------------------
# Incremental BFS
# ---------------------------------------------------------------------------

class IncrementalBfsKernel(SpeculativeBfsKernel):
    """Speculative BFS plus delete-closure invalidation and re-seeding."""

    def __init__(self, graph: Csr, source: int = 0) -> None:
        super().__init__(graph, source)
        self._pending = np.asarray([source], dtype=np.int64)

    def initial_items(self) -> np.ndarray:
        return self._pending

    def rebase(self, graph: Csr, applied: AppliedBatch) -> None:
        depth = self.depth
        # 1. victims: heads of deleted edges the old depths certified.
        #    Guard on finite tail depth *before* the +1 (UNREACHED + 1
        #    wraps in int64).
        if applied.deleted.size:
            u, v = applied.deleted[:, 0], applied.deleted[:, 1]
            fin = depth[u] != UNREACHED
            victim = np.zeros(u.size, dtype=bool)
            victim[fin] = depth[v[fin]] == depth[u[fin]] + 1
            frontier = np.unique(v[victim])
        else:
            frontier = EMPTY_ITEMS
        # 2. closure over NEW-graph certification edges, on the old depths:
        #    x invalid, x->y an edge, depth[y] == depth[x] + 1  =>  y invalid.
        #    Members are finite by construction, so no overflow guard needed.
        n = graph.num_vertices
        invalid = np.zeros(n, dtype=bool)
        invalid[frontier] = True
        while frontier.size:
            degrees = graph.indptr[frontier + 1] - graph.indptr[frontier]
            _, nbrs = graph.gather_neighbors(frontier)
            if nbrs.size == 0:
                break
            d_src = np.repeat(depth[frontier], degrees)
            grow = (~invalid[nbrs]) & (depth[nbrs] == d_src + 1)
            frontier = np.unique(nbrs[grow])
            invalid[frontier] = True
        members = np.flatnonzero(invalid)
        depth[members] = UNREACHED
        # 3. seeds: (a) still-reached vertices with a new-graph edge into
        #    the invalid region (they re-certify it), (b) sources of
        #    inserted edges (they may shorten paths), both post-reset.
        seeds = []
        if members.size:
            dst_invalid = invalid[graph.indices]
            pos = np.flatnonzero(dst_invalid)
            if pos.size:
                src = np.searchsorted(graph.indptr, pos, side="right") - 1
                border = np.unique(src)
                seeds.append(border[depth[border] != UNREACHED])
        if applied.inserted.size:
            ins_src = np.unique(applied.inserted[:, 0])
            seeds.append(ins_src[depth[ins_src] != UNREACHED])
        self.graph = graph
        self._pending = (
            np.unique(np.concatenate(seeds)) if seeds else EMPTY_ITEMS
        )


# ---------------------------------------------------------------------------
# Incremental CC
# ---------------------------------------------------------------------------

class IncrementalCcKernel(AsyncCcKernel):
    """Min-label propagation plus component-local reset and re-seeding."""

    def __init__(self, graph: Csr) -> None:
        super().__init__(graph)
        self._pending = np.arange(graph.num_vertices, dtype=np.int64)

    def initial_items(self) -> np.ndarray:
        return self._pending

    def rebase(self, graph: Csr, applied: AppliedBatch) -> None:
        labels = self.labels
        seeds = []
        if applied.deleted.size:
            hit = np.unique(labels[applied.deleted.ravel()])
            members = np.flatnonzero(np.isin(labels, hit))
            labels[members] = members
            seeds.append(members)
        if applied.inserted.size:
            seeds.append(np.unique(applied.inserted.ravel()))
        self.graph = graph
        self.out_deg = graph.out_degrees()
        self._pending = (
            np.unique(np.concatenate(seeds)) if seeds else EMPTY_ITEMS
        )


# ---------------------------------------------------------------------------
# Incremental PageRank
# ---------------------------------------------------------------------------

class IncrementalPageRankKernel(AsyncPageRankKernel):
    """Push PageRank with signed residues and invariant-restoring rebase.

    The overridden methods are modified copies of the parent's (the
    parent stays untouched so static digests cannot move): every
    ``residue > x`` claim/scan becomes its two-sided form.  For a purely
    static run the behaviours coincide — static residues are never
    negative — but the dynamic harness digests this class on its own.
    """

    def __init__(
        self,
        graph: Csr,
        *,
        lam: float = DEFAULT_LAMBDA,
        epsilon: float = DEFAULT_EPSILON,
        check_size: int = 64,
    ) -> None:
        super().__init__(graph, lam=lam, epsilon=epsilon, check_size=check_size)
        self._pending = np.arange(graph.num_vertices, dtype=np.int64)

    def initial_items(self) -> np.ndarray:
        return self._pending

    def rebase(self, graph: Csr, applied: AppliedBatch) -> None:
        # Restore residue = (1-λ)·1 + λ·A'ᵀD'⁻¹·rank − rank for the new
        # topology: only columns of sources with changed out-edges moved.
        # Withdraw each such source's entire old contribution and deposit
        # the new one (neighbor rows are duplicate-free in both CSRs).
        # Effective edits only — a no-op insert must not perturb mass.
        old = self.graph
        lam, rank, residue = self.lam, self.rank, self.residue
        changed = np.unique(
            np.concatenate([applied.inserted[:, 0], applied.deleted[:, 0]])
        )
        for u in changed:
            r_u = rank.item(u)
            if r_u != 0.0:
                old_nbrs = old.neighbors(int(u))
                if old_nbrs.size:
                    residue[old_nbrs] -= lam * r_u / old_nbrs.size
                new_nbrs = graph.neighbors(int(u))
                if new_nbrs.size:
                    residue[new_nbrs] += lam * r_u / new_nbrs.size
        self.graph = graph
        self.out_deg = graph.out_degrees()
        self._rows_strict = self._check_rows_strict(graph)
        dirty = np.flatnonzero(np.abs(residue) > self.scan_threshold)
        self.scan_threshold[dirty] = np.inf
        self._pending = dirty.astype(np.int64)

    # -- two-sided residue variants of the parent's hot paths ----------

    def on_read(self, items: np.ndarray, t: float):
        g = self.graph
        if items.size == 1:
            v = items.item(0)
            residue = self.residue
            res1 = residue.item(v)
            residue[v] = 0.0
            self.rank[v] += res1
            self.scan_threshold[v] = self.epsilon
            ip = g.indptr
            start, end = ip.item(v), ip.item(v + 1)
            deg = end - start
            if res1 != 0.0 and deg:  # signed: any claimed mass propagates
                nbrs = g.indices[start:end]
                return (nbrs, self.lam * res1 / deg, deg)
            return (EMPTY_ITEMS, np.empty(0, dtype=np.float64), 0)
        res = self.residue[items].copy()
        if items.size > 1:
            order = np.argsort(items, kind="stable")
            sorted_items = items[order]
            later_copy = np.concatenate(([False], sorted_items[1:] == sorted_items[:-1]))
            if later_copy.any():
                dup_positions = order[later_copy]
                res[dup_positions] = 0.0
        self.residue[items] = 0.0
        np.add.at(self.rank, items, res)
        self.scan_threshold[items] = self.epsilon
        degrees = g.indptr[items + 1] - g.indptr[items]
        active = (res != 0.0) & (degrees > 0)  # signed claim
        edge_work = int(degrees[active].sum())
        if edge_work:
            act_items = items[active]
            _, nbrs = g.gather_neighbors(act_items)
            contrib_per_src = self.lam * res[active] / degrees[active]
            src_pos = np.repeat(np.arange(act_items.size), degrees[active])
            contrib = contrib_per_src[src_pos]
            return (nbrs, contrib, edge_work)
        return (EMPTY_ITEMS, np.empty(0, dtype=np.float64), edge_work)

    def on_complete(self, items, payload, t):
        from repro.core.kernel import CompletionResult

        nbrs, contrib, edge_work = payload
        self.edges_traversed += edge_work
        residue = self.residue
        if nbrs.size:
            if type(contrib) is float and self._rows_strict:
                residue[nbrs] += contrib
            else:
                np.add.at(residue, nbrs, contrib)
        n = self._n
        thresh = self.scan_threshold
        start = self.check_cursor
        stop = start + self.check_size
        self.check_cursor = stop % n
        if stop <= n:
            # two-sided reservation scan: |residue| against the threshold
            mask = np.greater(
                np.abs(residue[start:stop]), thresh[start:stop], out=self._mask_buf
            )
            dirty = mask.nonzero()[0]
            if dirty.size:
                dirty += start
                thresh[dirty] = np.inf
        else:
            window = self._window(start, n)
            dirty = window[np.abs(residue[window]) > thresh[window]]
            thresh[dirty] = np.inf
        return CompletionResult(
            new_items=dirty,
            items_retired=int(items.size),
            work_units=float(edge_work),
        )

    def final_check(self, t: float) -> np.ndarray:
        dirty = np.flatnonzero(np.abs(self.residue) > self.scan_threshold)
        self.scan_threshold[dirty] = np.inf
        return dirty.astype(np.int64)

    def generation_check(self, t: float) -> np.ndarray:
        return self.final_check(t)


# ---------------------------------------------------------------------------
# Registry entries (dynamic=True keeps them off static enumeration paths)
# ---------------------------------------------------------------------------

register_app(AppAdapter(
    name="bfs-inc",
    description="incremental BFS over edit batches (dynamic graph)",
    make_kernel=lambda graph, source=0: IncrementalBfsKernel(graph, source),
    output=lambda k: k.depth,
    work_units=lambda k: k.edges_traversed,
    dynamic=True,
))

register_app(AppAdapter(
    name="cc-inc",
    description="incremental connected components over edit batches (dynamic graph)",
    make_kernel=lambda graph: IncrementalCcKernel(graph),
    output=lambda k: k.labels,
    work_units=lambda k: k.edges_propagated,
    extra=lambda k: {"num_components": int(np.unique(k.labels).size)},
    dynamic=True,
))

register_app(AppAdapter(
    name="pagerank-inc",
    description="incremental push PageRank over edit batches (dynamic graph)",
    make_kernel=lambda graph, lam=DEFAULT_LAMBDA, epsilon=DEFAULT_EPSILON,
    check_size=64: IncrementalPageRankKernel(
        graph, lam=lam, epsilon=epsilon, check_size=check_size
    ),
    output=lambda k: k.rank,
    work_units=lambda k: k.edges_traversed,
    extra=lambda k: {"residue_left": float(np.abs(k.residue).max())},
    dynamic=True,
))


# ---------------------------------------------------------------------------
# Edit-replay entry point
# ---------------------------------------------------------------------------

@dataclass
class EpochResult:
    """One epoch of a replay: its snapshot, its edits, its app result.

    ``result.output`` is a *copy* of the kernel's artifact at the end of
    the epoch (the kernel keeps mutating it); ``result.work_units`` and
    ``result.elapsed_ns`` are per-epoch deltas, so epoch > 0 rows expose
    exactly what the repair cost.  ``graph`` is the epoch's materialized
    snapshot — what a from-scratch recompute (the differential oracle)
    runs against.
    """

    epoch: int
    graph: Csr = field(repr=False)
    applied: AppliedBatch | None = field(repr=False)
    result: AppResult = field(repr=False)


@dataclass
class DynamicAppResult:
    """A full edit-replay: per-epoch results plus replay-level totals."""

    app: str
    impl: str
    dataset: str
    edits: str
    epochs: list[EpochResult] = field(repr=False)

    @property
    def total_elapsed_ns(self) -> float:
        return sum(e.result.elapsed_ns for e in self.epochs)

    @property
    def total_work_units(self) -> float:
        return sum(e.result.work_units for e in self.epochs)

    @property
    def final(self) -> AppResult:
        return self.epochs[-1].result


#: scheduler counters summed over every epoch of a replay — the numbers a
#: cross-epoch InvariantMonitor accumulates, so reconcile() can cross-check
#: a whole replay the way it cross-checks a single run
_SUMMED_COUNTERS = (
    "total_tasks", "items_retired", "empty_pops", "queue_pushes",
    "queue_pops", "queue_items_pushed", "queue_items_popped",
    "queue_items_banked", "steals", "kernel_launches",
    "policy_switches", "remote_pushes", "remote_items", "remote_steals",
)


def replay_totals(epochs: list[EpochResult]) -> dict[str, int]:
    """Replay-level counter sums for cross-epoch reconciliation."""
    totals: dict[str, int] = {}
    for e in epochs:
        extra = e.result.extra
        for key in _SUMMED_COUNTERS:
            value = extra.get(key, getattr(e.result, key, None))
            if value is not None:
                totals[key] = totals.get(key, 0) + int(value)
        totals["worker_slots"] = extra["worker_slots"]
    return totals


def replay_app(
    app: str,
    graph: Csr,
    config: AtosConfig,
    edits: EditScript | str,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink=None,
    validate: bool = False,
    perturb=None,
    backend: str | None = None,
    **params,
) -> DynamicAppResult:
    """Replay an edit script through an incremental app, epoch by epoch.

    The dynamic counterpart of :func:`repro.apps.common.run_app` and the
    differential harness's engine: one kernel built on the base ``graph``
    is carried through epoch 0 plus one epoch per edit batch
    (:func:`repro.core.dynamic.iterate_epochs`), all epochs sharing one
    ``sink`` — so a single :class:`~repro.obs.collector.Collector` digest
    pins the entire replay, bit-identical across engine backends.

    ``validate=True`` is the differential oracle: after **every** epoch
    the kernel's output is checked against the app's oracle on that
    epoch's materialized snapshot (for BFS/CC that is exact equality with
    a from-scratch recompute), a live
    :class:`~repro.check.invariants.InvariantMonitor` rides the whole
    stream (asserting quiescent epoch boundaries), and the replay-summed
    counters are reconciled against the summed event totals.

    ``edits`` is an :class:`~repro.graph.delta.EditScript` or a spec
    string like ``"3x32@7"`` (see :func:`~repro.graph.delta.parse_edits`).
    """
    if backend is not None and backend != config.backend:
        config = config.with_overrides(backend=backend)
    adapter = get_adapter(app)
    if not adapter.dynamic:
        raise ValueError(
            f"app {app!r} is not a dynamic adapter; replay_app needs an "
            "incremental kernel (bfs-inc, cc-inc, pagerank-inc)"
        )
    script = parse_edits(edits, graph) if isinstance(edits, str) else edits
    if script.graph is not graph:
        raise ValueError("edit script was generated against a different graph")
    if adapter.tune_config is not None:
        config = adapter.tune_config(config)
    kernel = adapter.make_kernel(graph, **params)
    monitor = None
    if validate:
        from repro.check.invariants import InvariantMonitor

        monitor = InvariantMonitor()
    effective_sink = sink
    if monitor is not None:
        from repro.obs.events import MultiSink

        effective_sink = monitor if sink is None else MultiSink(sink, monitor)

    epochs: list[EpochResult] = []
    prev_work = 0.0
    for out in iterate_epochs(
        kernel, config, script, spec=spec, max_tasks=max_tasks,
        sink=effective_sink, perturb=perturb,
    ):
        res = out.result
        extra = _base_extra(res)
        if adapter.extra is not None:
            extra.update(adapter.extra(kernel))
        if out.applied is not None:
            extra["edits_inserted"] = int(out.applied.inserted.shape[0])
            extra["edits_deleted"] = int(out.applied.deleted.shape[0])
        work_total = float(adapter.work_units(kernel))
        result = AppResult(
            app=adapter.name,
            impl=config.name,
            dataset=out.graph.name,
            elapsed_ns=res.elapsed_ns,
            work_units=work_total - prev_work,
            items_retired=res.items_retired,
            iterations=res.generations,
            kernel_launches=res.kernel_launches,
            output=np.array(adapter.output(kernel), copy=True),
            trace=res.trace,
            extra=extra,
        )
        prev_work = work_total
        if validate:
            # the differential oracle: this epoch's incremental state
            # versus a from-scratch reference on the materialized snapshot
            _validate_output(app, out.graph, result, params)
        epochs.append(EpochResult(
            epoch=out.epoch, graph=out.graph, applied=out.applied, result=result,
        ))

    if monitor is not None:
        monitor.reconcile(SimpleNamespace(extra=replay_totals(epochs)))
        monitor.assert_clean()
    return DynamicAppResult(
        app=adapter.name,
        impl=config.name,
        dataset=graph.name,
        edits=script.spec,
        epochs=epochs,
    )
