"""k-core decomposition by iterative peeling (BSP and relaxed).

A fifth Listing-1 application: compute each vertex's *core number* — the
largest ``k`` such that the vertex belongs to a subgraph where every vertex
has degree ≥ ``k``.  The standard parallel algorithm peels: repeatedly
remove vertices of effective degree < ``k``, incrementing ``k`` when the
peel converges.

The BSP version peels one frontier per kernel.  The relaxed version keeps
the peeling *within one k-level* asynchronous — removing a vertex
decrements its neighbors' effective degrees at completion time and pushes
any neighbor that falls below the threshold; the k-level increments happen
at quiescence via the ``final_check`` hook, so the whole decomposition runs
in a single persistent kernel.  Removal order within a level is a
don't-care (like PageRank), so relaxation is safe — and tested against an
exact reference.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import (
    EMPTY_ITEMS,
    AppAdapter,
    AppResult,
    register_app,
    run_app,
)
from repro.bsp.engine import BspTimeline
from repro.core.config import AtosConfig
from repro.core.kernel import CompletionResult
from repro.graph.csr import Csr
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = [
    "AsyncKcoreKernel",
    "run_atos",
    "run_bsp",
    "reference_core_numbers",
    "validate_core_numbers",
]


class AsyncKcoreKernel:
    """Single-persistent-kernel k-core peeling.

    State: ``eff_degree`` (remaining degree), ``core`` (assigned core
    number, -1 while alive), ``k`` (current peel level).  A queue item is a
    vertex to peel at the current level.
    """

    def __init__(self, graph: Csr) -> None:
        if not graph.is_symmetric():
            raise ValueError("k-core requires a symmetric (undirected) graph")
        self.graph = graph
        self.eff_degree = graph.out_degrees().astype(np.int64)
        self.core = np.full(graph.num_vertices, -1, dtype=np.int64)
        self.k = 0
        self.edges_touched = 0
        self.in_queue = np.zeros(graph.num_vertices, dtype=bool)

    def _below_threshold(self) -> np.ndarray:
        alive = self.core < 0
        return np.flatnonzero(alive & (self.eff_degree < self.k) & ~self.in_queue)

    def initial_items(self) -> np.ndarray:
        # k starts at 0: isolated vertices peel immediately
        seeds = self._below_threshold()
        self.in_queue[seeds] = True
        return seeds.astype(np.int64)

    def work_estimate(self, items: np.ndarray) -> tuple[int, int]:
        if items.size == 1:
            v = int(items[0])
            deg = int(self.graph.indptr[v + 1] - self.graph.indptr[v])
            return deg, deg
        degrees = self.graph.indptr[items + 1] - self.graph.indptr[items]
        return int(degrees.sum()), int(degrees.max()) if degrees.size else 0

    def on_read(self, items: np.ndarray, t: float):
        # claim: mark peeled now (atomic CAS on core) so a vertex peels
        # once; np.unique also collapses any duplicate queue entries, which
        # would otherwise double-decrement neighbor degrees
        fresh = np.unique(items[self.core[items] < 0])
        self.core[fresh] = max(self.k - 1, 0)
        return fresh

    def on_complete(self, items: np.ndarray, payload, t: float) -> CompletionResult:
        fresh = payload
        self.in_queue[items] = False
        if fresh.size == 0:
            return CompletionResult(items_retired=int(items.size))
        _, nbrs = self.graph.gather_neighbors(fresh)
        self.edges_touched += int(nbrs.size)
        if nbrs.size:
            np.subtract.at(self.eff_degree, nbrs, 1)
        # Incremental form of _below_threshold(): every alive sub-threshold
        # vertex is in_queue at entry (initial_items / final_check / prior
        # completions flagged it; in_queue only clears for vertices already
        # peeled dead, and k only advances inside final_check's full
        # rescan), so only the just-decremented vertices can newly satisfy
        # the predicate.  np.unique returns the same ascending order the
        # full flatnonzero scan produced.
        cand = np.unique(nbrs)
        ready = cand[
            (self.core[cand] < 0) & (self.eff_degree[cand] < self.k) & ~self.in_queue[cand]
        ]
        self.in_queue[ready] = True
        return CompletionResult(
            new_items=ready.astype(np.int64),
            items_retired=int(items.size),
            work_units=float(nbrs.size),
        )

    def final_check(self, t: float) -> np.ndarray:
        """Quiescence: advance k until a peelable vertex appears or all
        vertices are assigned."""
        while (self.core < 0).any():
            ready = self._below_threshold()
            if ready.size:
                self.in_queue[ready] = True
                return ready.astype(np.int64)
            self.k += 1
        return EMPTY_ITEMS


def run_atos(
    graph: Csr,
    config: AtosConfig,
    *,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    sink=None,
) -> AppResult:
    """Asynchronous k-core decomposition under an Atos configuration."""
    return run_app("kcore", graph, config, spec=spec, max_tasks=max_tasks, sink=sink)


register_app(AppAdapter(
    name="kcore",
    description="k-core decomposition by asynchronous peeling",
    make_kernel=lambda graph: AsyncKcoreKernel(graph),
    output=lambda k: k.core,
    work_units=lambda k: k.edges_touched,
    extra=lambda k: {"max_core": int(k.core.max()) if k.core.size else 0},
    bsp=lambda graph, **kw: run_bsp(graph, **kw),
))


def run_bsp(
    graph: Csr,
    *,
    spec: GpuSpec = V100_SPEC,
    max_iterations: int | None = None,
) -> AppResult:
    """BSP peeling: one frontier of sub-threshold vertices per kernel."""
    if not graph.is_symmetric():
        raise ValueError("k-core requires a symmetric (undirected) graph")
    n = graph.num_vertices
    eff = graph.out_degrees().astype(np.int64)
    core = np.full(n, -1, dtype=np.int64)
    k = 0
    timeline = BspTimeline(spec=spec)
    edges_touched = 0
    items = 0
    iterations = 0
    limit = max_iterations if max_iterations is not None else 10 * n + 100

    while (core < 0).any():
        iterations += 1
        if iterations > limit:
            raise RuntimeError("k-core peeling failed to converge")
        frontier = np.flatnonzero((core < 0) & (eff < k))
        if frontier.size == 0:
            k += 1
            continue
        core[frontier] = max(k - 1, 0)
        _, nbrs = graph.gather_neighbors(frontier)
        edges_touched += int(nbrs.size)
        items += int(frontier.size)
        if nbrs.size:
            np.subtract.at(eff, nbrs, 1)
        timeline.kernel(
            frontier_size=int(frontier.size),
            edge_count=int(nbrs.size),
            strategy="lbs",
            items_retired=int(frontier.size),
            work_units=float(nbrs.size),
        )
        timeline.barrier()
        timeline.end_iteration()

    return AppResult(
        app="kcore",
        impl="BSP",
        dataset=graph.name,
        elapsed_ns=timeline.now,
        work_units=float(edges_touched),
        items_retired=items,
        iterations=iterations,
        kernel_launches=timeline.kernel_launches,
        output=core,
        trace=timeline.trace,
        extra={"max_core": int(core.max()) if core.size else 0},
    )


def reference_core_numbers(graph: Csr) -> np.ndarray:
    """Exact core numbers by sequential min-degree peeling."""
    if not graph.is_symmetric():
        raise ValueError("k-core requires a symmetric (undirected) graph")
    n = graph.num_vertices
    eff = graph.out_degrees().astype(np.int64)
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    k = 0
    for _ in range(n):
        candidates = np.flatnonzero(alive)
        if candidates.size == 0:
            break
        v = candidates[np.argmin(eff[candidates])]
        k = max(k, int(eff[v]))
        core[v] = k
        alive[v] = False
        nbrs = graph.neighbors(v)
        live_nbrs = nbrs[alive[nbrs]]
        np.subtract.at(eff, live_nbrs, 1)
    return core


def validate_core_numbers(graph: Csr, core: np.ndarray) -> bool:
    """True when ``core`` equals the exact decomposition."""
    return bool(np.array_equal(core, reference_core_numbers(graph)))
