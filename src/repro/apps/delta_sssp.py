"""Delta-stepping SSSP over the bucketed work list.

The third point on the ordering spectrum the paper's Section 3.1 sketches:

* **ordered** (Dijkstra) — work-optimal, serial bottleneck;
* **unordered** (Bellman-Ford, :func:`repro.apps.sssp.run_bellman_ford`) —
  maximal parallelism, workload up to ``depth x |E|``;
* **delta-stepping** (this module) — bucket-synchronous middle ground: all
  vertices within the current ``delta``-wide distance bucket are relaxed in
  parallel, buckets execute in order.

Delta-stepping is inherently *bucket-synchronous*, so it runs on the BSP
timeline (one kernel per bucket sweep) with the bucketed work list from
:mod:`repro.queueing.priority` supplying the ordering structure.  Comparing
its workload against the paper-style speculative formulation
(:mod:`repro.apps.sssp`) quantifies how much ordering the relaxed-barrier
approach gives up — and how little it costs on the graphs studied.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import EMPTY_ITEMS, AppAdapter, AppResult, register_app
from repro.apps.sssp import UNREACHED, uniform_weights
from repro.bsp.engine import BspTimeline
from repro.graph.csr import Csr
from repro.queueing.priority import BucketedWorklist
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = ["run_delta_stepping", "suggest_delta"]


def suggest_delta(weights: np.ndarray) -> float:
    """The classic heuristic: delta ~ mean edge weight."""
    w = np.asarray(weights, dtype=np.float64)
    if w.size == 0:
        return 1.0
    return float(max(w.mean(), 1e-12))


def run_delta_stepping(
    graph: Csr,
    *,
    weights: np.ndarray | None = None,
    source: int = 0,
    delta: float | None = None,
    spec: GpuSpec = V100_SPEC,
    max_rounds: int | None = None,
) -> AppResult:
    """Bucket-synchronous delta-stepping SSSP.

    Each round drains the lowest non-empty bucket: pop all its vertices,
    relax their edges (one BSP kernel), and scatter improved neighbors back
    into buckets by tentative distance.  Vertices whose distance improved
    after they were popped re-enter a bucket, so each pop re-validates
    against the distance array (the standard lazy-deletion trick).
    """
    if weights is None:
        weights = uniform_weights(graph)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (graph.num_edges,):
        raise ValueError("weights must align with indices")
    if weights.size and weights.min() <= 0:
        raise ValueError("edge weights must be positive")
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range")
    if delta is None:
        delta = suggest_delta(weights)

    dist = np.full(n, UNREACHED)
    dist[source] = 0.0
    worklist = BucketedWorklist(delta, atomic_ns=spec.atomic_queue_ns)
    timeline = BspTimeline(spec=spec)
    worklist.push(np.asarray([source], dtype=np.int64), np.asarray([0.0]), timeline.now)
    edges_relaxed = 0
    items = 0
    rounds = 0
    limit = max_rounds if max_rounds is not None else 50 * n + 100

    while worklist:
        rounds += 1
        if rounds > limit:
            raise RuntimeError("delta-stepping exceeded its round bound")
        popped, t = worklist.pop(1 << 62, timeline.now)
        # lazy deletion: drop entries whose bucket no longer matches their
        # (possibly improved) distance — they re-entered a lower bucket
        current_bucket = worklist.cursor
        live = popped[
            (dist[popped] < UNREACHED)
            & ((dist[popped] / delta).astype(np.int64) % worklist.num_buckets == current_bucket)
        ]
        live = np.unique(live)
        if live.size == 0:
            continue
        degrees = graph.indptr[live + 1] - graph.indptr[live]
        total = int(degrees.sum())
        edges_relaxed += total
        items += int(live.size)
        if total:
            _, nbrs = graph.gather_neighbors(live)
            starts = graph.indptr[live]
            flat = np.concatenate(
                [np.arange(s, s + d) for s, d in zip(starts, degrees)]
            )
            src_pos = np.repeat(np.arange(live.size), degrees)
            cand = dist[live][src_pos] + weights[flat]
            before = dist[nbrs].copy()
            np.minimum.at(dist, nbrs, cand)
            improved = np.unique(nbrs[dist[nbrs] < before])
        else:
            improved = EMPTY_ITEMS
        timeline.kernel(
            frontier_size=int(live.size),
            edge_count=total,
            strategy="lbs",
            items_retired=int(live.size),
            work_units=float(total),
        )
        timeline.barrier()
        timeline.end_iteration()
        if improved.size:
            worklist.push(improved, dist[improved], timeline.now)

    return AppResult(
        app="sssp",
        impl=f"delta-stepping(d={delta:.2g})",
        dataset=graph.name,
        elapsed_ns=timeline.now,
        work_units=float(edges_relaxed),
        items_retired=items,
        iterations=rounds,
        kernel_launches=timeline.kernel_launches,
        output=dist,
        trace=timeline.trace,
        extra={"delta": delta},
    )


register_app(AppAdapter(
    name="delta-sssp",
    description="bucket-synchronous delta-stepping SSSP (BSP-only)",
    make_kernel=None,
    bsp=lambda graph, **kw: run_delta_stepping(graph, **kw),
))
