"""Command-line entry point: regenerate paper artifacts from a shell.

Usage::

    python -m repro list                     # show available experiments
    python -m repro table1 --app bfs         # one Table 1 sub-table
    python -m repro table2                   # dataset stats
    python -m repro table3                   # challenge classification
    python -m repro table4 --app coloring    # workload ratios
    python -m repro fig --app bfs --dataset road_usa
    python -m repro sweep --app bfs --dataset soc-LiveJournal1
    python -m repro permute                  # the Section 6.3 study
    python -m repro report                   # paper-vs-measured verdicts
    python -m repro all                      # everything (slow)

Common options: ``--size {tiny,small,default}`` (default ``small``).
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiments import EXPERIMENTS, SCALE_FREE
from repro.harness.runner import Lab


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Atos paper's tables and figures.",
    )
    parser.add_argument(
        "command",
        choices=[
            "list", "table1", "table2", "table3", "table4",
            "fig", "sweep", "permute", "report", "all",
        ],
    )
    parser.add_argument("--app", default="bfs", choices=["bfs", "pagerank", "coloring"])
    parser.add_argument("--dataset", default="soc-LiveJournal1")
    parser.add_argument("--size", default="small", choices=["tiny", "small", "default"])
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for key, exp in EXPERIMENTS.items():
            print(f"{key:16s} {exp.paper_artifact:24s} {exp.description}")
        return 0

    lab = Lab(size=args.size)
    if args.command == "table1":
        print(lab.format_table1(args.app))
    elif args.command == "table2":
        print(lab.format_table2())
    elif args.command == "table3":
        print(lab.format_table3())
    elif args.command == "table4":
        print(lab.format_table4(args.app))
    elif args.command == "fig":
        print(lab.format_figure(args.app, args.dataset))
    elif args.command == "sweep":
        print(lab.format_sweep(args.app, args.dataset))
    elif args.command == "permute":
        print(lab.format_permutation_study(SCALE_FREE))
    elif args.command == "report":
        from repro.harness.report import shape_report

        print(shape_report(lab))
    elif args.command == "all":
        print(lab.format_table2(), end="\n\n")
        for app in ("bfs", "pagerank", "coloring"):
            print(lab.format_table1(app), end="\n\n")
            print(lab.format_table4(app), end="\n\n")
        print(lab.format_table3(), end="\n\n")
        print(lab.format_permutation_study(SCALE_FREE))
    return 0


if __name__ == "__main__":
    sys.exit(main())
