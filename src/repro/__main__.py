"""Command-line entry point: regenerate paper artifacts from a shell.

Usage::

    python -m repro list                     # show available experiments
    python -m repro table1 --app bfs         # one Table 1 sub-table
    python -m repro table2                   # dataset stats
    python -m repro table3                   # challenge classification
    python -m repro table4 --app coloring    # workload ratios
    python -m repro fig --app bfs --dataset road_usa
    python -m repro sweep --app bfs --dataset soc-LiveJournal1
    python -m repro permute                  # the Section 6.3 study
    python -m repro report                   # paper-vs-measured verdicts
    python -m repro all                      # everything (slow)
    python -m repro trace bfs roadnet_ca_sim --config persist-warp --out trace.json
    python -m repro run bfs road_usa --config hybrid-CTA   # one cell, summary
    python -m repro run --list-configs       # named configurations
    python -m repro run --list-apps          # registered applications
    python -m repro run bfs-inc rmat8 --edits 3x32@7     # edit-script replay
    python -m repro check bfs rmat8 --seeds 5    # oracle + invariant + fuzz
    python -m repro check coloring grid_mesh --config hybrid-CTA
    python -m repro check cc-inc rmat8 --edits 3x32@7    # differential replay
    python -m repro perf --size tiny             # wall-clock benchmark
    python -m repro perf --out BENCH_perf.json --repeats 3
    python -m repro metrics bfs roadNet-CA --config persist-warp --out summary.json
    python -m repro metrics --write-baseline BENCH_metrics_baseline.json
    python -m repro diff summary.json BENCH_metrics_baseline.json
    python -m repro diff new_baseline.json BENCH_metrics_baseline.json
    python -m repro serve --port 8321            # scheduler-as-a-service broker
    python -m repro submit bfs roadNet-CA --config persist-CTA --port 8321
    python -m repro submit --job '{"app":"bfs","dataset":"roadNet-CA"}' --tenant ci
    python -m repro submit --stats --port 8321   # broker/cache health document
    python -m repro service-bench --out BENCH_service.json
    python -m repro diff BENCH_service.json committed/BENCH_service.json

Common options: ``--size {tiny,small,default}`` (default ``small``).
``run``, ``check`` and ``perf`` also take ``--backend {event,batched}``
(the engine inner loop, :mod:`repro.core.backend`): simulated results are
bit-identical across backends, only wall-clock changes.

The ``trace`` subcommand runs one (app, dataset, config) cell with a
:class:`repro.obs.Collector` attached, writes a Chrome ``trace_event``
JSON file (load it at ``chrome://tracing`` or https://ui.perfetto.dev),
and prints the ASCII time-sink profile.  Traces are deterministic: the
same invocation always produces a byte-identical file.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiments import EXPERIMENTS, SCALE_FREE
from repro.harness.runner import Lab


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Atos paper's tables and figures.",
    )
    parser.add_argument(
        "command",
        choices=[
            "list", "table1", "table2", "table3", "table4",
            "fig", "sweep", "permute", "report", "all",
        ],
    )
    parser.add_argument("--app", default="bfs", choices=["bfs", "pagerank", "coloring"])
    parser.add_argument("--dataset", default="soc-LiveJournal1")
    parser.add_argument("--size", default="small", choices=["tiny", "small", "default"])
    return parser


def _build_trace_parser() -> argparse.ArgumentParser:
    from repro.apps.common import app_names

    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Run one scheduler configuration with observability attached; "
            "write a Chrome trace_event JSON and print the time-sink profile."
        ),
    )
    parser.add_argument("app", choices=app_names())
    parser.add_argument("dataset", help="dataset name or alias (e.g. roadnet_ca_sim)")
    parser.add_argument(
        "--config",
        default="persist-warp",
        help="named Atos variant (default: persist-warp)",
    )
    parser.add_argument("--out", default="trace.json", help="output trace path")
    parser.add_argument("--size", default="small", choices=["tiny", "small", "default"])
    return parser


def _run_trace(argv: list[str]) -> int:
    from repro.core.config import variant_by_name
    from repro.graph.datasets import resolve_dataset
    from repro.obs import Collector, flat_metrics, format_profile, write_chrome_trace

    args = _build_trace_parser().parse_args(argv)
    config = variant_by_name(args.config)
    dataset = resolve_dataset(args.dataset)
    sink = Collector()
    lab = Lab(size=args.size)
    result = lab.run_config(args.app, dataset, config, sink=sink)
    write_chrome_trace(sink, args.out)

    print(
        f"traced {args.app} on {dataset} [{config.name}] "
        f"size={args.size}: {len(sink.events)} events -> {args.out}"
    )
    print(f"digest: {sink.digest()}")
    metrics = flat_metrics(sink, elapsed_ns=result.elapsed_ns)
    print(
        "reconcile: "
        f"tasks={metrics['tasks']} retired={metrics['items_retired']} "
        f"empty_pops={metrics['empty_pops']} steals={metrics['steals']} "
        f"final_queue_depth={metrics['final_queue_depth']}"
    )
    print()
    print(
        format_profile(
            sink,
            elapsed_ns=result.elapsed_ns,
            worker_slots=result.extra.get("worker_slots"),
            config_name=config.name,
        )
    )
    return 0


def _add_device_args(parser: argparse.ArgumentParser) -> None:
    """The multi-device flags ``run``/``check``/``perf`` share.

    ``--devices N`` (N > 1) rebases every engine-level config onto the
    distributed strategy (:mod:`repro.core.distributed`): the graph is
    partitioned across N simulated GPUs and cross-device work pays the
    interconnect.  Unlike ``--backend`` this changes simulated results.
    """
    from repro.graph.partition import PARTITION_CHOICES

    parser.add_argument(
        "--devices",
        type=int,
        default=None,
        metavar="N",
        help="simulate on N devices via the distributed strategy (default: 1)",
    )
    parser.add_argument(
        "--partition",
        default=None,
        choices=list(PARTITION_CHOICES),
        help=(
            "graph partition for --devices: edge/vertex (greedy cut of that "
            "kind) or a method name (hash/contiguous/greedy edge-cut)"
        ),
    )


def _build_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="Run one (app, dataset, config) cell and print a summary.",
    )
    parser.add_argument("app", nargs="?", help="application name (see --list-apps)")
    parser.add_argument("dataset", nargs="?", help="dataset name or alias")
    parser.add_argument(
        "--config",
        default="persist-CTA",
        help="named configuration (default: persist-CTA; see --list-configs)",
    )
    parser.add_argument("--size", default="small", choices=["tiny", "small", "default"])
    parser.add_argument(
        "--backend",
        default=None,
        choices=["event", "batched"],
        help="engine inner loop (bit-identical results; default: the config's own)",
    )
    _add_device_args(parser)
    parser.add_argument(
        "--edits",
        default=None,
        metavar="SPEC",
        help=(
            "replay an edit script through a dynamic app (bfs-inc/cc-inc/"
            "pagerank-inc): EPOCHSxBATCH@SEED[dFRAC], e.g. 3x32@7 or 4x64@1d0.5"
        ),
    )
    parser.add_argument("--permuted", action="store_true", help="randomly permute vertex ids")
    parser.add_argument(
        "--list-configs", action="store_true", help="list named configurations and exit"
    )
    parser.add_argument(
        "--list-apps", action="store_true", help="list registered applications and exit"
    )
    return parser


def _run_run(argv: list[str]) -> int:
    from repro.apps.common import APP_REGISTRY, app_names
    from repro.core.config import CONFIGS, variant_by_name
    from repro.graph.datasets import resolve_dataset

    args = _build_run_parser().parse_args(argv)
    if args.list_configs:
        from repro.sim.spec import CLUSTERS

        for name, cfg in CONFIGS.items():
            kind = cfg.strategy.value
            dist = (
                f" devices={cfg.devices} partition={cfg.partition} "
                f"ic={cfg.interconnect}"
                if cfg.devices > 1
                else ""
            )
            print(
                f"{name:14s} {kind:10s} workers={cfg.worker_threads:<4d} "
                f"fetch={cfg.fetch_size:<4d} lb={'on' if cfg.internal_lb else 'off'}"
                f"{dist}"
            )
        print()
        print("cluster presets (repro.sim.spec.CLUSTERS):")
        for name, cluster in CLUSTERS.items():
            ic = cluster.interconnect
            print(
                f"{name:16s} {cluster.num_devices} x {cluster.devices[0].name}  "
                f"{ic.name}: {ic.items_per_ns:g} items/ns, "
                f"{ic.latency_ns:g} ns latency"
            )
        return 0
    if args.list_apps:
        for name in app_names():
            print(f"{name:12s} {APP_REGISTRY[name].description}")
        return 0
    if not args.app or not args.dataset:
        _build_run_parser().error("app and dataset are required (or use --list-*)")
    if args.edits is not None or (
        args.app in APP_REGISTRY and APP_REGISTRY[args.app].dynamic
    ):
        return _run_replay(args)
    config = variant_by_name(args.config)
    dataset = resolve_dataset(args.dataset)
    lab = Lab(
        size=args.size, backend=args.backend,
        devices=args.devices, partition=args.partition,
    )
    result = lab.run(args.app, dataset, config.name, permuted=args.permuted)

    backend_tag = f" backend={args.backend}" if args.backend else ""
    if args.devices and args.devices > 1:
        backend_tag += f" devices={args.devices}"
        if args.partition:
            backend_tag += f" partition={args.partition}"
    print(f"{args.app} on {dataset} [{config.name}] size={args.size}{backend_tag}")
    print(f"  elapsed          {result.elapsed_ms:.3f} ms")
    print(f"  work units       {result.work_units:.0f}")
    print(f"  items retired    {result.items_retired}")
    print(f"  iterations       {result.iterations}")
    print(f"  kernel launches  {result.kernel_launches}")
    for key in sorted(result.extra):
        val = result.extra[key]
        if key == "device_stats":
            for d in val:
                print(
                    f"  device {d['device']}: slots={d['worker_slots']} "
                    f"tasks={d['tasks']} retired={d['items_retired']} "
                    f"work={d['work_units']:.0f}"
                )
            continue
        shown = f"{val:.4g}" if isinstance(val, float) else val
        print(f"  {key:16s} {shown}")
    return 0


#: default edit script for dynamic apps when ``--edits`` is omitted
DEFAULT_EDITS = "3x32@7"


def _run_replay(args) -> int:
    """``repro run`` routed through the edit-replay harness.

    Reached when ``--edits`` is given or the app is a dynamic adapter;
    runs :func:`repro.apps.dynamic.replay_app` and prints one row per
    epoch (per-epoch deltas: what each repair cost) plus replay totals.
    """
    from repro.apps.common import get_adapter
    from repro.apps.dynamic import replay_app
    from repro.core.config import variant_by_name

    adapter = get_adapter(args.app)
    if not adapter.dynamic:
        _build_run_parser().error(
            f"--edits needs a dynamic app (bfs-inc, cc-inc, pagerank-inc); "
            f"{args.app!r} is static"
        )
    edits = args.edits or DEFAULT_EDITS
    config = variant_by_name(args.config)
    graph = _check_graph(args.dataset, args.size)
    dres = replay_app(
        args.app, graph, config, edits, backend=args.backend, validate=True,
    )

    backend_tag = f" backend={args.backend}" if args.backend else ""
    print(
        f"{args.app} on {graph.name} [{config.name}] edits={edits} "
        f"size={args.size}{backend_tag}"
    )
    print("  epoch  +ins  -del  elapsed_ms     work  retired  dataset")
    for e in dres.epochs:
        r = e.result
        ins = r.extra.get("edits_inserted", 0)
        dele = r.extra.get("edits_deleted", 0)
        print(
            f"  {e.epoch:>5d} {ins:>5d} {dele:>5d} {r.elapsed_ns / 1e6:>11.3f} "
            f"{r.work_units:>8.0f} {r.items_retired:>8d}  {r.dataset}"
        )
    print(
        f"  total elapsed {dres.total_elapsed_ns / 1e6:.3f} ms  "
        f"work {dres.total_work_units:.0f}  (all epochs oracle-validated)"
    )
    return 0


def _build_check_parser() -> argparse.ArgumentParser:
    from repro.check.oracles import oracle_names

    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description=(
            "Validate one app x dataset cell: run under each named config, "
            "check the answer against the app's oracle with an invariant "
            "monitor attached, then run the schedule-perturbation fuzzer."
        ),
    )
    parser.add_argument("app", choices=oracle_names())
    parser.add_argument(
        "dataset",
        help="dataset name/alias (e.g. roadnet_ca_sim) or a test graph (rmat8, grid_mesh)",
    )
    parser.add_argument(
        "--config",
        action="append",
        default=None,
        help="named config to check (repeatable; default: every engine-level preset)",
    )
    parser.add_argument("--seeds", type=int, default=10, help="fuzzer seeds (default 10)")
    parser.add_argument(
        "--amplitude", type=float, default=200.0, help="perturbation amplitude in ns"
    )
    parser.add_argument(
        "--edits",
        default=None,
        metavar="SPEC",
        help=(
            "edit script for dynamic apps (EPOCHSxBATCH@SEED[dFRAC], e.g. "
            f"3x32@7); implied at {DEFAULT_EDITS!r} for bfs-inc/cc-inc/"
            "pagerank-inc, which run the differential edit-replay check"
        ),
    )
    parser.add_argument("--size", default="small", choices=["tiny", "small", "default"])
    parser.add_argument(
        "--backend",
        default=None,
        choices=["event", "batched"],
        help="engine inner loop to validate (default: each config's own)",
    )
    _add_device_args(parser)
    return parser


def _check_graph(dataset: str, size: str):
    """Resolve a dataset alias, or build one of the small test graphs.

    ``rmat8`` / ``grid_mesh`` are the fuzzer's reference graphs (as in
    ``tests/``): small enough that a multi-seed fuzz finishes in seconds.
    They are symmetrized so every app (k-core needs an undirected graph)
    accepts them.
    """
    from repro.graph.generators import grid_mesh, rmat

    if dataset == "rmat8":
        g = rmat(8, edge_factor=6, seed=7, name="rmat8")
        return g if g.is_symmetric() else g.symmetrize()
    if dataset == "grid_mesh":
        return grid_mesh(8, 6)
    from repro.graph.datasets import load_dataset, resolve_dataset

    return load_dataset(resolve_dataset(dataset), size)


def _run_check(argv: list[str]) -> int:
    from repro.apps.common import get_adapter, run_app
    from repro.check.fuzz import fuzz_app
    from repro.check.invariants import InvariantMonitor
    from repro.check.oracles import validate
    from repro.core.config import CONFIGS, variant_by_name
    from repro.core.policy import policy_for
    from repro.sim.spec import V100_SPEC

    args = _build_check_parser().parse_args(argv)
    graph = _check_graph(args.dataset, args.size)
    adapter = get_adapter(args.app)
    if args.edits is not None and not adapter.dynamic:
        _build_check_parser().error(
            f"--edits needs a dynamic app (bfs-inc, cc-inc, pagerank-inc); "
            f"{args.app!r} is static"
        )
    bsp_only = adapter.make_kernel is None
    if args.config:
        configs = [variant_by_name(name) for name in args.config]
    elif bsp_only:
        configs = [CONFIGS["BSP"]]
    else:
        configs = [
            cfg for cfg in CONFIGS.values() if not policy_for(cfg).app_level
        ]
    if args.backend:
        # rebasing the configs (rather than threading a run_app keyword)
        # routes the override through the oracle checks AND the fuzzer below
        configs = [
            cfg if policy_for(cfg).app_level else cfg.with_overrides(backend=args.backend)
            for cfg in configs
        ]
    if args.devices and args.devices > 1:
        from repro.core.config import KernelStrategy

        overrides: dict = {
            "strategy": KernelStrategy.DISTRIBUTED,
            "devices": args.devices,
        }
        if args.partition:
            overrides["partition"] = args.partition
        configs = [
            cfg if policy_for(cfg).app_level else cfg.with_overrides(**overrides)
            for cfg in configs
        ]
    if adapter.dynamic:
        return _check_replay(args, graph, configs)
    failures = 0

    print(f"check {args.app} on {graph.name} ({graph.num_vertices} vertices)")
    for config in configs:
        if policy_for(config).app_level:
            result = run_app(args.app, graph, config, spec=V100_SPEC)
            report = validate(args.app, graph, result)
            bad = [str(c) for c in report.failures]
        else:
            monitor = InvariantMonitor()
            result = run_app(args.app, graph, config, spec=V100_SPEC, sink=monitor)
            monitor.reconcile(result)
            report = validate(args.app, graph, result)
            bad = [str(v) for v in monitor.violations] + [str(c) for c in report.failures]
        status = "PASS" if not bad else "FAIL (" + "; ".join(bad[:4]) + ")"
        if bad:
            failures += 1
        print(f"  {config.name:14s} oracle+invariants {status}")

    fuzz_configs = [c for c in configs if not policy_for(c).app_level]
    for config in fuzz_configs[:2]:  # fuzz the first two engine configs requested
        report = fuzz_app(
            args.app,
            graph,
            config,
            seeds=args.seeds,
            amplitude_ns=args.amplitude,
            spec=V100_SPEC,
        )
        if not report.ok:
            failures += 1
        print(report.summary())
    if failures:
        print(f"check FAILED: {failures} failing cell(s)")
        return 1
    print("check PASSED")
    return 0


def _check_replay(args, graph, configs) -> int:
    """``repro check`` for dynamic apps: the differential edit-replay.

    Per engine config, one unperturbed replay (seed 0, amplitude 0 —
    the fuzzer machinery with zero delay *is* the plain replay) checks
    every epoch's output against the from-scratch oracle on that epoch's
    snapshot with a cross-epoch invariant monitor attached; then the
    first two configs get the full schedule-perturbation fuzz.
    """
    from repro.check.fuzz import fuzz_dynamic
    from repro.core.policy import policy_for
    from repro.sim.spec import V100_SPEC

    edits = args.edits or DEFAULT_EDITS
    engine_configs = [c for c in configs if not policy_for(c).app_level]
    failures = 0
    print(
        f"check {args.app} on {graph.name} ({graph.num_vertices} vertices) "
        f"edits={edits}"
    )
    for config in engine_configs:
        rep = fuzz_dynamic(
            args.app, graph, config, edits, seeds=[0], amplitude_ns=0.0,
            spec=V100_SPEC,
        )
        run = rep.runs[0]
        bad = [str(v) for v in run.violations] + [str(c) for c in run.oracle.failures]
        status = "PASS" if not bad else "FAIL (" + "; ".join(bad[:4]) + ")"
        if bad:
            failures += 1
        print(f"  {config.name:14s} differential+invariants {status}")

    for config in engine_configs[:2]:
        report = fuzz_dynamic(
            args.app, graph, config, edits,
            seeds=args.seeds, amplitude_ns=args.amplitude, spec=V100_SPEC,
        )
        if not report.ok:
            failures += 1
        print(report.summary())
    if failures:
        print(f"check FAILED: {failures} failing cell(s)")
        return 1
    print("check PASSED")
    return 0


def _build_perf_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro perf",
        description=(
            "Run the wall-clock benchmark scenario (8 apps x engine presets "
            "x 2 datasets) and report cells/sec and sim-ns-per-wall-ms."
        ),
    )
    parser.add_argument("--size", default="small", choices=["tiny", "small", "default"])
    parser.add_argument(
        "--backend",
        default=None,
        choices=["event", "batched"],
        help="engine inner loop for every timed cell (default: preset default)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="timed repeats (default 3)")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-parallel workers (default: serial)",
    )
    parser.add_argument("--out", default=None, help="write the JSON report to this path")
    parser.add_argument(
        "--pre-wall-s",
        type=float,
        default=None,
        help=(
            "wall seconds of the identical scenario measured on the "
            "pre-optimization engine (records speedup_vs_pre in the report)"
        ),
    )
    parser.add_argument(
        "--check-against",
        default=None,
        help="compare against a committed BENCH_perf.json and print the delta",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "re-run the METRICS_CELLS subset untimed with a streaming "
            "MetricsSink and embed the summaries in the report"
        ),
    )
    _add_device_args(parser)
    return parser


def _run_perf(argv: list[str]) -> int:
    from repro.perf.bench import (
        format_report,
        load_report,
        run_bench,
        validate_report,
        write_report,
    )

    args = _build_perf_parser().parse_args(argv)
    doc = run_bench(
        size=args.size,
        repeats=args.repeats,
        workers=args.workers,
        pre_wall_s=args.pre_wall_s,
        metrics=args.metrics,
        backend=args.backend,
        devices=args.devices,
        partition=args.partition,
    )
    problems = validate_report(doc)
    print(format_report(doc))
    if args.out:
        write_report(doc, args.out)
        print(f"report -> {args.out}")
    if args.check_against:
        base = load_report(args.check_against)
        if base.get("size") != doc["size"]:
            print(f"baseline size {base.get('size')!r} != {doc['size']!r}; no comparison")
        else:
            # normalise by the calibration spin so a slower machine does
            # not read as an engine regression
            scale = doc["calibration_loop_ns"] / base["calibration_loop_ns"]
            normalized = doc["cells_per_s"] * scale
            ratio = normalized / base["cells_per_s"]
            print(
                f"vs {args.check_against}: {doc['cells_per_s']:.3f} cells/s "
                f"(normalized {normalized:.3f}) vs {base['cells_per_s']:.3f} "
                f"baseline -> {ratio:.2f}x"
            )
    if problems:
        print("report INVALID: " + "; ".join(problems))
        return 1
    return 0


def _build_metrics_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description=(
            "Run one (app, dataset, config) cell with the streaming "
            "MetricsSink attached, print the sparkline dashboard, and "
            "optionally export the MetricsSummary (JSON), Prometheus text, "
            "JSONL or CSV."
        ),
    )
    parser.add_argument("app", nargs="?", help="application name")
    parser.add_argument("dataset", nargs="?", help="dataset name or alias")
    parser.add_argument(
        "--config",
        default="persist-warp",
        help="named Atos variant (default: persist-warp)",
    )
    parser.add_argument("--size", default="small", choices=["tiny", "small", "default"])
    parser.add_argument("--out", default=None, help="write the MetricsSummary JSON here")
    parser.add_argument("--prom", default=None, help="write Prometheus text exposition here")
    parser.add_argument("--jsonl", default=None, help="write JSONL metric records here")
    parser.add_argument("--csv", default=None, help="write the time-series CSV here")
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help=(
            "instead of one cell, run the committed baseline sweep "
            "(repro.metrics.baseline.BASELINE_CELLS at --size, default tiny) "
            "and write the cell-keyed baseline document"
        ),
    )
    return parser


def _run_metrics(argv: list[str]) -> int:
    from repro.core.config import variant_by_name
    from repro.graph.datasets import resolve_dataset
    from repro.harness.runner import Lab
    from repro.metrics import (
        collect_baseline,
        format_dashboard,
        series_csv,
        to_jsonl,
        to_prometheus,
        validate_baseline,
        validate_summary,
        write_summary,
    )

    args = _build_metrics_parser().parse_args(argv)
    if args.write_baseline:
        size = args.size if "--size" in argv else "tiny"
        doc = collect_baseline(size=size)
        problems = validate_baseline(doc)
        if problems:
            print("baseline INVALID: " + "; ".join(problems))
            return 1
        write_summary(doc, args.write_baseline)
        print(
            f"baseline ({len(doc['cells'])} cells, size={size}) -> {args.write_baseline}"
        )
        return 0
    if not args.app or not args.dataset:
        _build_metrics_parser().error("app and dataset are required (or --write-baseline)")
    config = variant_by_name(args.config)
    dataset = resolve_dataset(args.dataset)
    lab = Lab(size=args.size)
    result = lab.run_config(args.app, dataset, config, metrics=True)
    summary = result.extra["metrics"]
    problems = validate_summary(summary)
    print(format_dashboard(summary))
    if args.out:
        write_summary(summary, args.out)
        print(f"summary -> {args.out}")
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(to_prometheus(summary))
        print(f"prometheus -> {args.prom}")
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as fh:
            fh.write(to_jsonl(summary))
        print(f"jsonl -> {args.jsonl}")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(series_csv(summary))
        print(f"csv -> {args.csv}")
    if problems:
        print("summary INVALID: " + "; ".join(problems))
        return 1
    return 0


def _build_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro diff",
        description=(
            "Compare two metrics documents (MetricsSummary, cell-keyed "
            "baseline, or BENCH_perf.json) with per-metric relative-delta "
            "thresholds; exits non-zero on regression.  The NEW document "
            "comes first, the BASE (anchor) second."
        ),
    )
    parser.add_argument("new", help="the candidate document (JSON path)")
    parser.add_argument(
        "base",
        nargs="?",
        default=None,
        help="the anchor document (default: BENCH_metrics_baseline.json)",
    )
    parser.add_argument(
        "--threshold",
        action="append",
        default=None,
        metavar="METRIC=REL",
        help=(
            "per-metric relative-delta override, e.g. elapsed_ns=0.10 or "
            "'histograms.*=0.5' (repeatable)"
        ),
    )
    parser.add_argument(
        "--default-threshold",
        type=float,
        default=None,
        help="fallback relative-delta threshold (default 0.05)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print every compared metric"
    )
    return parser


def _run_diff(argv: list[str]) -> int:
    from repro.metrics.baseline import BASELINE_PATH
    from repro.metrics.diff import DEFAULT_THRESHOLD, diff_docs
    from repro.metrics.summary import load_summary

    args = _build_diff_parser().parse_args(argv)
    base_path = args.base or BASELINE_PATH
    thresholds = {}
    for spec in args.threshold or ():
        metric, _, value = spec.partition("=")
        if not value:
            _build_diff_parser().error(f"--threshold must be METRIC=REL, got {spec!r}")
        thresholds[metric] = float(value)
    report = diff_docs(
        load_summary(base_path),
        load_summary(args.new),
        thresholds=thresholds,
        default_threshold=(
            DEFAULT_THRESHOLD if args.default_threshold is None else args.default_threshold
        ),
        base_label=base_path,
        new_label=args.new,
    )
    print(report.format(verbose=args.verbose))
    return 0 if report.ok else 1


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Run the scheduler-as-a-service broker: an HTTP JSON API over "
            "the async job broker with content-addressed result caching "
            "(POST /v1/jobs, GET /v1/stats, GET /v1/timeseries, GET /v1/traces, "
            "GET /dash, GET /metrics, GET /healthz)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument("--workers", type=int, default=4, help="broker worker count")
    parser.add_argument(
        "--no-tracing", action="store_true",
        help="disable span tracing (on by default; ~µs per job)",
    )
    parser.add_argument(
        "--trace-events", action="store_true",
        help="capture full engine event streams per traced job (expensive)",
    )
    parser.add_argument(
        "--trace-capacity", type=int, default=256,
        help="retained traces before FIFO eviction (default 256)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=64,
        help="per-tenant queue bound; a full queue answers HTTP 429 (default 64)",
    )
    parser.add_argument(
        "--cache-mb", type=int, default=256, help="result cache byte budget in MiB"
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="per-attempt job timeout seconds"
    )
    parser.add_argument(
        "--attempts", type=int, default=3, help="max executions per job (default 3)"
    )
    fault = parser.add_argument_group("fault injection (testing only)")
    fault.add_argument("--fault-seed", type=int, default=0)
    fault.add_argument("--kill-prob", type=float, default=0.0)
    fault.add_argument("--delay-prob", type=float, default=0.0)
    fault.add_argument("--delay-s", type=float, default=0.0)
    fault.add_argument("--poison-prob", type=float, default=0.0)
    return parser


def _run_serve(argv: list[str]) -> int:
    import asyncio
    import signal

    from repro.service import Broker, BrokerConfig, FaultInjector, ServiceServer

    args = _build_serve_parser().parse_args(argv)
    config = BrokerConfig(
        workers=args.workers,
        tenant_queue_limit=args.queue_limit,
        cache_bytes=args.cache_mb * 1024 * 1024,
        job_timeout_s=args.timeout,
        max_attempts=args.attempts,
        tracing=not args.no_tracing,
        trace_events=args.trace_events,
        trace_capacity=args.trace_capacity,
        faults=FaultInjector(
            seed=args.fault_seed,
            kill_prob=args.kill_prob,
            delay_prob=args.delay_prob,
            delay_s=args.delay_s,
            poison_prob=args.poison_prob,
        ),
    )

    async def _serve() -> int:
        server = ServiceServer(Broker(config), host=args.host, port=args.port)
        try:
            port = await server.start()
        except OSError as exc:
            print(
                f"serve: cannot bind {args.host}:{args.port}: "
                f"{exc.strerror or exc} (is another server running?)",
                file=sys.stderr,
            )
            return 1
        print(
            f"repro service listening on http://{args.host}:{port}  "
            f"workers={args.workers} queue-limit={args.queue_limit} "
            f"cache={args.cache_mb}MiB "
            f"tracing={'off' if args.no_tracing else 'on'}",
            flush=True,
        )
        if not args.no_tracing:
            print(f"dashboard: http://{args.host}:{port}/dash", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        await stop.wait()
        print("serve: draining (finishing accepted jobs) ...", flush=True)
        await server.stop()
        print("serve: drained, bye")
        return 0

    return asyncio.run(_serve())


def _build_submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description=(
            "Submit one job to a running repro service and print the result; "
            "or fetch the service stats document with --stats."
        ),
    )
    parser.add_argument("app", nargs="?", help="application name")
    parser.add_argument("dataset", nargs="?", help="dataset name or alias")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument("--config", default="persist-CTA")
    parser.add_argument("--size", default="small", choices=["tiny", "small", "default"])
    parser.add_argument("--seed", type=int, default=0, help="schedule-perturbation seed")
    parser.add_argument("--edits", default=None, metavar="SPEC", help="dynamic edit script")
    parser.add_argument("--backend", default=None, choices=["event", "batched"])
    _add_device_args(parser)
    parser.add_argument("--permuted", action="store_true")
    parser.add_argument("--tenant", default="default")
    parser.add_argument(
        "--job",
        default=None,
        metavar="JSON",
        help="full job object as JSON (overrides the positional/flag spec)",
    )
    parser.add_argument("--stats", action="store_true", help="print service stats and exit")
    parser.add_argument("--json", action="store_true", help="print the raw result document")
    parser.add_argument("--timeout", type=float, default=120.0, help="client timeout seconds")
    return parser


def _run_submit(argv: list[str]) -> int:
    import json

    from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable

    parser = _build_submit_parser()
    args = parser.parse_args(argv)
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    if args.job is not None:
        try:
            job = json.loads(args.job)
        except json.JSONDecodeError as exc:
            print(f"submit: malformed --job JSON: {exc}", file=sys.stderr)
            return 2
    elif not args.stats:
        if not args.app or not args.dataset:
            parser.error("app and dataset are required (or use --job / --stats)")
        job = {
            "app": args.app,
            "dataset": args.dataset,
            "config": args.config,
            "size": args.size,
        }
        if args.seed:
            job["seed"] = args.seed
        for name in ("edits", "backend", "devices", "partition"):
            value = getattr(args, name)
            if value is not None:
                job[name] = value
        if args.permuted:
            job["permuted"] = True
    try:
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        doc = client.submit(job, tenant=args.tenant)
    except ServiceUnavailable as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    j = doc["job"]
    tag = " (cached)" if doc["cached"] else f" attempts={doc['attempts']}"
    print(
        f"{j['app']} on {j['dataset']} [{j['config']}] size={j['size']}: "
        f"digest={doc['digest']} elapsed={doc['elapsed_ms']:.3f} ms "
        f"wall={doc['wall_ms']:.3f} ms{tag}"
    )
    return 0


def _build_dash_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro dash",
        description=(
            "Write a static dashboard snapshot: capture a running service's "
            "live state (default), or render one traced engine run offline "
            "with --app/--dataset (no service needed)."
        ),
    )
    parser.add_argument(
        "--snapshot", default="dash.html", metavar="PATH",
        help="output HTML path (default: dash.html)",
    )
    live = parser.add_argument_group("live mode (capture a running service)")
    live.add_argument("--host", default="127.0.0.1")
    live.add_argument("--port", type=int, default=8321)
    live.add_argument(
        "--detail-limit", type=int, default=20,
        help="newest traces fetched in full for offline drill-down (default 20)",
    )
    off = parser.add_argument_group("offline mode (render one engine run)")
    off.add_argument("--app", default=None, help="application name (enables offline mode)")
    off.add_argument("--dataset", default=None, help="dataset name or alias")
    off.add_argument("--config", default="persist-CTA", help="named Atos variant")
    off.add_argument("--size", default="small", choices=["tiny", "small", "default"])
    return parser


def _run_dash(argv: list[str]) -> int:
    from repro.dash import collector_snapshot, service_snapshot, write_snapshot

    parser = _build_dash_parser()
    args = parser.parse_args(argv)
    if args.app is not None:
        if not args.dataset:
            parser.error("--app needs --dataset (offline mode renders one run)")
        from repro.core.config import variant_by_name
        from repro.graph.datasets import resolve_dataset

        config = variant_by_name(args.config)
        dataset = resolve_dataset(args.dataset)
        lab = Lab(size=args.size)
        result, sink = lab.collect(args.app, dataset, config, metrics=True)
        snapshot = collector_snapshot(sink, result, config=config.name)
        path = write_snapshot(snapshot, args.snapshot)
        print(
            f"dash: {args.app} on {dataset} [{config.name}] size={args.size}: "
            f"{len(sink.events)} events -> {path}"
        )
        return 0

    from repro.service.client import ServiceClient, ServiceUnavailable

    client = ServiceClient(args.host, args.port)
    try:
        snapshot = service_snapshot(client, detail_limit=args.detail_limit)
    except ServiceUnavailable as exc:
        print(f"dash: {exc}", file=sys.stderr)
        return 1
    path = write_snapshot(snapshot, args.snapshot)
    traces = snapshot["traces"].get("traces", [])
    print(
        f"dash: captured {args.host}:{args.port} "
        f"({len(traces)} traces, {len(snapshot['details'])} in full) -> {path}"
    )
    return 0


def _build_service_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro service-bench",
        description=(
            "Run the service load benchmark (cold misses, then a warm "
            "multi-tenant storm of concurrent clients against an in-process "
            "broker) and report latency, throughput and digest-match ratio."
        ),
    )
    parser.add_argument("--size", default="small", choices=["tiny", "small", "default"])
    parser.add_argument("--clients", type=int, default=1000, help="warm-phase clients")
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", default=None, help="write the JSON report to this path")
    parser.add_argument(
        "--check-against",
        default=None,
        help="diff against a committed BENCH_service.json (exits non-zero on regression)",
    )
    return parser


def _run_service_bench(argv: list[str]) -> int:
    from repro.service.bench import (
        format_service_report,
        load_service_report,
        run_service_bench,
        validate_service_report,
        write_service_report,
    )

    args = _build_service_bench_parser().parse_args(argv)
    doc = run_service_bench(
        size=args.size, clients=args.clients, tenants=args.tenants, workers=args.workers
    )
    problems = validate_service_report(doc)
    print(format_service_report(doc))
    if args.out:
        write_service_report(doc, args.out)
        print(f"report -> {args.out}")
    status = 0
    if args.check_against:
        from repro.metrics.diff import diff_docs

        report = diff_docs(
            load_service_report(args.check_against),
            doc,
            base_label=args.check_against,
            new_label="this run",
        )
        print(report.format())
        if not report.ok:
            status = 1
    if problems:
        print("report INVALID: " + "; ".join(problems))
        return 1
    return status


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "trace":
        return _run_trace(argv[1:])
    if argv and argv[0] == "perf":
        return _run_perf(argv[1:])
    if argv and argv[0] == "run":
        return _run_run(argv[1:])
    if argv and argv[0] == "check":
        return _run_check(argv[1:])
    if argv and argv[0] == "metrics":
        return _run_metrics(argv[1:])
    if argv and argv[0] == "diff":
        return _run_diff(argv[1:])
    if argv and argv[0] == "serve":
        return _run_serve(argv[1:])
    if argv and argv[0] == "submit":
        return _run_submit(argv[1:])
    if argv and argv[0] == "dash":
        return _run_dash(argv[1:])
    if argv and argv[0] == "service-bench":
        return _run_service_bench(argv[1:])
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for key, exp in EXPERIMENTS.items():
            print(f"{key:16s} {exp.paper_artifact:24s} {exp.description}")
        return 0

    lab = Lab(size=args.size)
    if args.command == "table1":
        print(lab.format_table1(args.app))
    elif args.command == "table2":
        print(lab.format_table2())
    elif args.command == "table3":
        print(lab.format_table3())
    elif args.command == "table4":
        print(lab.format_table4(args.app))
    elif args.command == "fig":
        print(lab.format_figure(args.app, args.dataset))
    elif args.command == "sweep":
        print(lab.format_sweep(args.app, args.dataset))
    elif args.command == "permute":
        print(lab.format_permutation_study(SCALE_FREE))
    elif args.command == "report":
        from repro.harness.report import shape_report

        print(shape_report(lab))
    elif args.command == "all":
        print(lab.format_table2(), end="\n\n")
        for app in ("bfs", "pagerank", "coloring"):
            print(lab.format_table1(app), end="\n\n")
            print(lab.format_table4(app), end="\n\n")
        print(lab.format_table3(), end="\n\n")
        print(lab.format_permutation_study(SCALE_FREE))
    return 0


if __name__ == "__main__":
    sys.exit(main())
