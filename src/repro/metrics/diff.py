"""Run-to-run regression diffing over ``MetricsSummary`` documents.

:func:`diff_summaries` flattens two summaries into scalar metrics and
compares them with per-metric relative-delta thresholds.  Metrics carry a
*polarity*: for ``lower``-is-better metrics (elapsed time, launch/barrier
overhead, queue wait, task latency, empty pops) only an increase past the
threshold is a regression; everything else is an *anchor* metric —
simulated runs are deterministic, so drift in either direction beyond the
threshold means the engine's behavior changed and the diff flags it.

:func:`diff_docs` dispatches on the document schema, so one CLI
(``python -m repro diff``) covers every committed artifact family:

* two ``MetricsSummary`` docs (or a summary against the matching cell of
  a committed ``BENCH_metrics_baseline.json``);
* two cell-keyed baseline docs — per-cell summary diffs plus missing /
  extra cell detection (the schema-drift gate CI runs);
* two ``BENCH_perf.json`` wall-clock reports — throughput compared after
  calibration normalization, so a slower machine does not read as an
  engine regression;
* two ``BENCH_service.json`` service load reports — latency/throughput
  calibration-normalized the same way, with zero tolerance on the
  digest-match ratio (service answers must stay bit-identical).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.metrics.sink import HISTOGRAM_NAMES, SERIES_NAMES
from repro.metrics.summary import SUMMARY_SCHEMA, validate_summary

__all__ = [
    "DiffEntry",
    "DiffReport",
    "DEFAULT_THRESHOLD",
    "DEFAULT_THRESHOLDS",
    "flatten_summary",
    "diff_summaries",
    "diff_docs",
]

DEFAULT_THRESHOLD = 0.05

#: per-metric overrides; a trailing ``*`` matches by prefix.  Histogram
#: quantiles are bucket-quantized (quarter-octave buckets are up to ~25%
#: wide) and rate-series peaks move with stride rescaling, so both get
#: looser gates than exact counters.
DEFAULT_THRESHOLDS: dict[str, float] = {
    "histograms.*": 0.30,
    "series.*": 0.25,
    "events_seen": 0.02,
    "counters.task_pops": 0.02,
    "counters.items_retired": 0.02,
    "counters.queue_items_pushed": 0.02,
    "counters.queue_items_popped": 0.02,
    # wall-clock bench metrics (BENCH_perf.json) are noisy even normalized
    "bench.*": 0.25,
    # service load-bench metrics (BENCH_service.json): sub-millisecond hit
    # latencies are the noisiest wall numbers we gate, so the generic gate
    # is loose; the exact/structural numbers below get tight ones
    "service.*": 0.50,
    # responses must stay digest-identical to serial runs — zero tolerance
    "service.digest_match_ratio": 0.0,
    # hit ratio is determined by the seeded workload mix, not wall speed
    "service.hit_ratio": 0.10,
    # the speedup *ratio* is machine-independent; validate_service_report
    # separately enforces the hard >= 100x acceptance floor
    "service.warm_speedup": 0.90,
}

#: metrics where only an increase is a regression (lower is better)
_LOWER_IS_BETTER = (
    "elapsed_ns",
    "counters.launch_ns",
    "counters.barrier_ns",
    "counters.empty_pops",
    "counters.steals",
    "counters.steal_items",
    "histograms.task_latency_ns.",
    "histograms.queue_wait_ns.",
    "service.warm_ms",
    "service.cold_ms",
)

#: metrics where only a decrease is a regression (higher is better)
_HIGHER_IS_BETTER = (
    "bench.cells_per_s",
    "bench.sim_ns_per_wall_ms",
    "service.throughput_rps",
    "service.warm_speedup",
)


def _polarity(metric: str) -> str:
    for prefix in _HIGHER_IS_BETTER:
        if metric.startswith(prefix):
            return "higher"
    for prefix in _LOWER_IS_BETTER:
        if metric.startswith(prefix):
            return "lower"
    return "anchor"


def threshold_for(metric: str, thresholds: dict[str, float], default: float) -> float:
    """Exact name, then longest ``*``-prefix match, then the default."""
    if metric in thresholds:
        return thresholds[metric]
    best: tuple[int, float] | None = None
    for pattern, value in thresholds.items():
        if pattern.endswith("*") and metric.startswith(pattern[:-1]):
            if best is None or len(pattern) > best[0]:
                best = (len(pattern), value)
    return best[1] if best is not None else default


@dataclass(frozen=True)
class DiffEntry:
    """One compared metric."""

    metric: str
    base: float
    new: float
    rel: float  # signed relative delta (new - base) / base
    threshold: float
    polarity: str  # "lower" | "higher" | "anchor"
    regressed: bool
    improved: bool

    def __str__(self) -> str:
        rel = "inf" if math.isinf(self.rel) else f"{self.rel:+.1%}"
        tag = "REGRESSED" if self.regressed else ("improved" if self.improved else "ok")
        return (
            f"{self.metric}: {self.base:g} -> {self.new:g} "
            f"({rel}, thr {self.threshold:.0%}) {tag}"
        )


@dataclass
class DiffReport:
    """Outcome of comparing two documents."""

    base_label: str
    new_label: str
    entries: list[DiffEntry] = field(default_factory=list)
    #: structural problems (schema mismatch, missing cells) — always fatal
    problems: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.problems

    def format(self, *, verbose: bool = False) -> str:
        lines = [f"diff {self.base_label} -> {self.new_label}: {len(self.entries)} metrics"]
        lines.extend(f"  problem: {p}" for p in self.problems)
        shown = self.entries if verbose else [
            e for e in self.entries if e.regressed or e.improved
        ]
        lines.extend(f"  {e}" for e in shown)
        if self.ok:
            lines.append("  OK — no regressions")
        else:
            lines.append(
                f"  FAIL — {len(self.regressions)} regression(s), "
                f"{len(self.problems)} problem(s)"
            )
        return "\n".join(lines)


def flatten_summary(doc: dict) -> dict[str, float]:
    """Scalar metrics of one summary, keyed by dotted path."""
    out: dict[str, float] = {
        "elapsed_ns": float(doc["elapsed_ns"]),
        "events_seen": float(doc["events_seen"]),
    }
    for name, value in doc["counters"].items():
        out[f"counters.{name}"] = float(value)
    for name in HISTOGRAM_NAMES:
        h = doc["histograms"][name]
        for stat in ("count", "mean", "p50", "p90", "p99", "max"):
            out[f"histograms.{name}.{stat}"] = float(h[stat])
    for name in SERIES_NAMES:
        out[f"series.{name}.peak"] = float(doc["series"][name]["peak"])
    for dev, block in sorted((doc.get("devices") or {}).items()):
        for name, value in block.items():
            out[f"devices.{dev}.{name}"] = float(value)
    return out


def _compare(
    metrics: list[tuple[str, float, float]],
    report: DiffReport,
    thresholds: dict[str, float],
    default: float,
) -> None:
    for metric, base, new in metrics:
        if base == 0.0:
            rel = 0.0 if new == 0.0 else math.inf
        else:
            rel = (new - base) / abs(base)
        thr = threshold_for(metric, thresholds, default)
        polarity = _polarity(metric)
        exceeded = abs(rel) > thr
        if polarity == "lower":
            regressed = exceeded and rel > 0
            improved = exceeded and rel < 0
        elif polarity == "higher":
            regressed = exceeded and rel < 0
            improved = exceeded and rel > 0
        else:  # anchor: any drift past the threshold is a regression
            regressed = exceeded
            improved = False
        report.entries.append(
            DiffEntry(
                metric=metric, base=base, new=new, rel=rel, threshold=thr,
                polarity=polarity, regressed=regressed, improved=improved,
            )
        )


def diff_summaries(
    base: dict,
    new: dict,
    *,
    thresholds: dict[str, float] | None = None,
    default_threshold: float = DEFAULT_THRESHOLD,
    base_label: str = "base",
    new_label: str = "new",
    prefix: str = "",
) -> DiffReport:
    """Compare two ``MetricsSummary`` docs metric by metric."""
    merged = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        merged.update(thresholds)
    report = DiffReport(base_label=base_label, new_label=new_label)
    for label, doc in (("base", base), ("new", new)):
        for problem in validate_summary(doc):
            report.problems.append(f"{label} summary invalid: {problem}")
    if report.problems:
        return report
    # a devices=1 vs devices=N comparison is a legitimate A/B (scaling
    # study), so tag the labels — same pattern as the backend tag in
    # ``_diff_bench`` — and skip the per-device metrics the other side
    # cannot have; with equal device counts a one-sided metric is drift
    ndev_a = len(base.get("devices") or {}) or 1
    ndev_b = len(new.get("devices") or {}) or 1
    if ndev_a != ndev_b:
        report.base_label = f"{base_label} [{ndev_a}dev]"
        report.new_label = f"{new_label} [{ndev_b}dev]"
    a, b = flatten_summary(base), flatten_summary(new)
    if ndev_a == ndev_b:
        for k in sorted(set(a) - set(b)):
            report.problems.append(f"metric {prefix + k} missing from new")
        for k in sorted(set(b) - set(a)):
            report.problems.append(f"metric {prefix + k} not in base")
    _compare(
        [(prefix + k, a[k], b[k]) for k in a if k in b],
        report, merged, default_threshold,
    )
    return report


# ---------------------------------------------------------------------------
# Document-level dispatch (summary / baseline / bench)
# ---------------------------------------------------------------------------

def _cell_key(doc: dict) -> str:
    return f"{doc.get('app')}:{doc.get('dataset')}:{doc.get('config')}"


def diff_docs(
    base: dict,
    new: dict,
    *,
    thresholds: dict[str, float] | None = None,
    default_threshold: float = DEFAULT_THRESHOLD,
    base_label: str = "base",
    new_label: str = "new",
) -> DiffReport:
    """Schema-dispatching diff; see module docstring for the pairings."""
    from repro.metrics.baseline import BASELINE_SCHEMA
    from repro.perf.bench import BENCH_SCHEMA

    schema_a, schema_b = base.get("schema"), new.get("schema")
    if BASELINE_SCHEMA in (schema_a, schema_b) and schema_a != schema_b:
        # one side is cell-keyed: pull the matching cell for the summary side
        baseline, summary = (base, new) if schema_a == BASELINE_SCHEMA else (new, base)
        key = _cell_key(summary)
        cell = baseline.get("cells", {}).get(key)
        if cell is None:
            report = DiffReport(base_label=base_label, new_label=new_label)
            report.problems.append(
                f"baseline has no cell {key!r}; known: {sorted(baseline.get('cells', {}))}"
            )
            return report
        pair = (cell, summary) if schema_a == BASELINE_SCHEMA else (summary, cell)
        return diff_summaries(
            *pair, thresholds=thresholds, default_threshold=default_threshold,
            base_label=base_label, new_label=new_label,
        )
    if schema_a != schema_b:
        report = DiffReport(base_label=base_label, new_label=new_label)
        report.problems.append(f"cannot diff schema {schema_a!r} against {schema_b!r}")
        return report
    if schema_a == SUMMARY_SCHEMA:
        return diff_summaries(
            base, new, thresholds=thresholds, default_threshold=default_threshold,
            base_label=base_label, new_label=new_label,
        )
    if schema_a == BASELINE_SCHEMA:
        return _diff_baselines(
            base, new, thresholds=thresholds, default_threshold=default_threshold,
            base_label=base_label, new_label=new_label,
        )
    if schema_a == BENCH_SCHEMA:
        return _diff_bench(
            base, new, thresholds=thresholds, default_threshold=default_threshold,
            base_label=base_label, new_label=new_label,
        )
    from repro.service.bench import SERVICE_BENCH_SCHEMA

    if schema_a == SERVICE_BENCH_SCHEMA:
        return _diff_service(
            base, new, thresholds=thresholds, default_threshold=default_threshold,
            base_label=base_label, new_label=new_label,
        )
    report = DiffReport(base_label=base_label, new_label=new_label)
    report.problems.append(f"unknown document schema {schema_a!r}")
    return report


def _diff_baselines(base, new, *, thresholds, default_threshold, base_label, new_label):
    report = DiffReport(base_label=base_label, new_label=new_label)
    cells_a = base.get("cells", {})
    cells_b = new.get("cells", {})
    for key in sorted(set(cells_a) - set(cells_b)):
        report.problems.append(f"cell {key!r} missing from {new_label}")
    for key in sorted(set(cells_b) - set(cells_a)):
        report.problems.append(f"cell {key!r} not in {base_label}")
    for key in sorted(set(cells_a) & set(cells_b)):
        sub = diff_summaries(
            cells_a[key], cells_b[key], thresholds=thresholds,
            default_threshold=default_threshold, base_label=base_label,
            new_label=new_label, prefix=f"{key}/",
        )
        report.entries.extend(sub.entries)
        report.problems.extend(f"{key}: {p}" for p in sub.problems)
    return report


def _diff_bench(base, new, *, thresholds, default_threshold, base_label, new_label):
    """Wall-clock report diff, calibration-normalized (BENCH_perf.json)."""
    report = DiffReport(base_label=base_label, new_label=new_label)
    if base.get("size") != new.get("size"):
        report.problems.append(
            f"bench sizes differ: {base.get('size')!r} vs {new.get('size')!r}"
        )
        return report
    # differing backends / device counts / partition methods are legitimate
    # A/B comparisons (backend moves only wall-clock; devices and partition
    # are deliberate scaling studies), so tag the labels instead of refusing
    tags_a: list[str] = []
    tags_b: list[str] = []
    for key, default, fmt in (
        ("backend", "event", "{}"),
        ("devices", 1, "{}dev"),
        ("partition", "hash", "{}"),
    ):
        va, vb = base.get(key, default), new.get(key, default)
        if va != vb:
            tags_a.append(fmt.format(va))
            tags_b.append(fmt.format(vb))
    if tags_a:
        report.base_label = f"{base_label} [{' '.join(tags_a)}]"
        report.new_label = f"{new_label} [{' '.join(tags_b)}]"
    merged = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        merged.update(thresholds)
    # a slower machine inflates the calibration spin and deflates
    # throughput alike, so scale the new run onto the base machine
    scale = new["calibration_loop_ns"] / base["calibration_loop_ns"]
    _compare(
        [
            ("bench.cells_per_s", base["cells_per_s"], new["cells_per_s"] * scale),
            (
                "bench.sim_ns_per_wall_ms",
                base["sim_ns_per_wall_ms"],
                new["sim_ns_per_wall_ms"] * scale,
            ),
        ],
        report, merged, default_threshold,
    )
    # simulated-time telemetry embedded by run_bench(metrics=True): exact,
    # so diffed cell-by-cell like a baseline (no calibration scaling)
    cells_a = base.get("metrics") or {}
    cells_b = new.get("metrics") or {}
    for key in sorted(set(cells_a) & set(cells_b)):
        sub = diff_summaries(
            cells_a[key], cells_b[key], thresholds=thresholds,
            default_threshold=default_threshold, base_label=base_label,
            new_label=new_label, prefix=f"{key}/",
        )
        report.entries.extend(sub.entries)
        report.problems.extend(f"{key}: {p}" for p in sub.problems)
    return report


def _diff_service(base, new, *, thresholds, default_threshold, base_label, new_label):
    """Service load-bench diff, calibration-normalized (BENCH_service.json).

    Latencies and throughput are rescaled onto the base machine exactly
    like ``_diff_bench``; the exact numbers — digest match ratio, hit
    ratio, the dimensionless warm speedup — are compared raw.  Validation
    problems from either side are structural (a committed report that
    fails its own acceptance floor should never pass a diff).
    """
    from repro.service.bench import validate_service_report

    report = DiffReport(base_label=base_label, new_label=new_label)
    for label, doc in (("base", base), ("new", new)):
        for problem in validate_service_report(doc):
            report.problems.append(f"{label} service report invalid: {problem}")
    if report.problems:
        return report
    for key in ("size", "clients", "tenants", "workers", "distinct_jobs"):
        if base.get(key) != new.get(key):
            report.problems.append(
                f"service bench {key} differs: {base.get(key)!r} vs {new.get(key)!r}"
            )
    if report.problems:
        return report
    merged = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        merged.update(thresholds)
    # slower machine => larger calibration spin and slower service alike:
    # scale the new run's wall numbers onto the base machine before gating
    scale = new["calibration_loop_ns"] / base["calibration_loop_ns"]
    _compare(
        [
            ("service.throughput_rps", base["throughput_rps"], new["throughput_rps"] * scale),
            ("service.warm_ms_p50", base["warm_ms_p50"], new["warm_ms_p50"] / scale),
            ("service.warm_ms_p99", base["warm_ms_p99"], new["warm_ms_p99"] / scale),
            ("service.cold_ms_mean", base["cold_ms_mean"], new["cold_ms_mean"] / scale),
            ("service.warm_speedup", base["warm_speedup"], new["warm_speedup"]),
            (
                "service.digest_match_ratio",
                base["digest_match_ratio"],
                new["digest_match_ratio"],
            ),
            ("service.hit_ratio", base["hit_ratio"], new["hit_ratio"]),
        ],
        report, merged, default_threshold,
    )
    return report
