"""The committed metrics baseline: ``BENCH_metrics_baseline.json``.

A baseline is a cell-keyed collection of ``MetricsSummary`` documents over
a small, fast sweep — the diff anchor future engine changes are compared
against (``python -m repro diff <new> BENCH_metrics_baseline.json``).
Cells run at size ``tiny`` so regeneration takes seconds; summaries hold
only simulated-time quantities, so the committed file is bit-reproducible
on any machine (same reason the golden digests are).

Regenerate after an intentional behavior change with::

    python -m repro metrics --write-baseline BENCH_metrics_baseline.json
"""

from __future__ import annotations

from typing import Iterable

from repro.metrics.summary import validate_summary

__all__ = [
    "BASELINE_SCHEMA",
    "BASELINE_CELLS",
    "BASELINE_PATH",
    "cell_key",
    "collect_baseline",
    "validate_baseline",
]

BASELINE_SCHEMA = "repro.metrics/baseline-v1"
BASELINE_PATH = "BENCH_metrics_baseline.json"

#: (app, dataset, config) — one traversal, one data-centric and one
#: speculative app (the Table 1 families) plus a hybrid, a stealing-free
#: discrete and a multi-device cell, small enough that the whole sweep is
#: a CI smoke job
BASELINE_CELLS: tuple[tuple[str, str, str], ...] = (
    ("bfs", "roadNet-CA", "persist-warp"),
    ("bfs", "road_usa", "hybrid-CTA"),
    ("pagerank", "soc-LiveJournal1", "persist-CTA"),
    ("coloring", "indochina-2004", "discrete-CTA"),
    ("sssp", "roadNet-CA", "discrete-warp"),
    ("cc", "soc-LiveJournal1", "persist-warp"),
    ("bfs", "soc-LiveJournal1", "dist-2"),
)


def cell_key(app: str, dataset: str, config: str) -> str:
    return f"{app}:{dataset}:{config}"


def collect_baseline(
    *,
    size: str = "tiny",
    cells: Iterable[tuple[str, str, str]] = BASELINE_CELLS,
) -> dict:
    """Run every baseline cell with a metrics sink and bundle the summaries."""
    from repro.harness.runner import Lab

    lab = Lab(size=size, metrics=True)
    out: dict[str, dict] = {}
    for app, dataset, config in cells:
        summary = lab.run(app, dataset, config).extra["metrics"]
        # key by the summary's own identity (dataset is the graph's name,
        # e.g. "roadNet-CA-sim") so baseline-vs-summary lookups match
        out[cell_key(summary["app"], summary["dataset"], summary["config"])] = summary
    return {
        "schema": BASELINE_SCHEMA,
        "size": size,
        "cells": out,
    }


def validate_baseline(doc: dict) -> list[str]:
    """Schema check for a baseline document (empty list = valid)."""
    if not isinstance(doc, dict):
        return [f"baseline must be a dict, got {type(doc).__name__}"]
    problems: list[str] = []
    if doc.get("schema") != BASELINE_SCHEMA:
        problems.append(f"schema {doc.get('schema')!r} != {BASELINE_SCHEMA!r}")
    if not isinstance(doc.get("size"), str):
        problems.append("missing/invalid 'size'")
    cells = doc.get("cells")
    if not isinstance(cells, dict) or not cells:
        problems.append("'cells' must be a non-empty dict")
        return problems
    for key, summary in sorted(cells.items()):
        for problem in validate_summary(summary):
            problems.append(f"cell {key!r}: {problem}")
        if isinstance(summary, dict):
            ident = cell_key(
                summary.get("app", ""), summary.get("dataset", ""), summary.get("config", "")
            )
            if ident != key:
                problems.append(f"cell {key!r} holds summary for {ident!r}")
    return problems
