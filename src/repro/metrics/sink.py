"""Streaming :class:`MetricsSink` — bounded-memory run telemetry.

The :class:`~repro.obs.collector.Collector` keeps every event; fine for a
trace you will scrub through, wasteful for the always-on telemetry the
paper's time-series arguments (frontier size vs. launch overhead, worker
occupancy, queue depth under stealing) need.  :class:`MetricsSink`
consumes the same :class:`~repro.obs.events.EventSink` stream and retains
only

* **counters** — one integer/float per lifecycle edge (pops, completes,
  retired items, queue operations, steals, launches, …);
* **histograms** (:class:`~repro.metrics.hist.LogHistogram`) — task
  latency (pop→complete), queue-atomic wait, generation span;
* **time series** (:class:`~repro.metrics.series.StrideSeries`) — queue
  depth, in-flight worker slots, retire throughput, steal rate and
  empty-pop rate on a fixed simulated-time grid.

Retained state is O(histogram buckets + series bins + live workers +
live queues) — independent of event count.  The sink is passive: it
never mutates events and attaching it (alone or composed through
:class:`~repro.obs.events.MultiSink`) leaves the simulation bit-identical,
which ``tests/test_equivalence.py`` pins against the golden digests.
"""

from __future__ import annotations

from repro.metrics.hist import LogHistogram
from repro.metrics.series import DEFAULT_MAX_BINS, DEFAULT_STRIDE_NS, StrideSeries
from repro.obs.events import (
    Barrier,
    EmptyPop,
    GenerationEnd,
    GenerationStart,
    KernelLaunch,
    PolicySwitch,
    QueuePop,
    QueuePush,
    QueueSteal,
    RemotePush,
    RemoteSteal,
    TaskComplete,
    TaskPop,
    TaskRead,
    TraceEvent,
)

__all__ = [
    "MetricsSink",
    "COUNTER_NAMES",
    "HISTOGRAM_NAMES",
    "SERIES_NAMES",
    "DEVICE_COUNTER_NAMES",
]

COUNTER_NAMES = (
    "task_pops",
    "task_reads",
    "task_completes",
    "task_items",
    "items_retired",
    "items_pushed_by_tasks",
    "work_units",
    "queue_pushes",
    "queue_pops",
    "queue_items_pushed",
    "queue_items_popped",
    "empty_pops",
    "steals",
    "steal_items",
    "kernel_launches",
    "launch_ns",
    "barriers",
    "barrier_ns",
    "policy_switches",
    "generations",
    "max_queue_depth",
    "max_in_flight",
    # multi-device counters: zero on every single-device run (the
    # distributed policy is the only emitter of Remote* events)
    "remote_pushes",
    "remote_items",
    "remote_steals",
    "comm_ns",
)

HISTOGRAM_NAMES = ("task_latency_ns", "queue_wait_ns", "generation_span_ns")

SERIES_NAMES = (
    "queue_depth", "in_flight", "retired", "steals", "empty_pops",
    "remote_items",
)

#: per-device counter keys of :attr:`MetricsSink.device_counters`
DEVICE_COUNTER_NAMES = (
    "queue_pushes",
    "queue_pops",
    "items_pushed",
    "items_popped",
    "max_depth",
    "remote_items_in",
    "remote_steals",
)


class MetricsSink:
    """EventSink deriving counters, histograms and stride series online."""

    def __init__(
        self,
        *,
        stride_ns: float = DEFAULT_STRIDE_NS,
        max_bins: int = DEFAULT_MAX_BINS,
        hist_subbuckets: int = 4,
    ) -> None:
        self.counters: dict[str, float] = {name: 0 for name in COUNTER_NAMES}
        self.counters["work_units"] = 0.0
        self.counters["launch_ns"] = 0.0
        self.counters["barrier_ns"] = 0.0
        self.counters["comm_ns"] = 0.0
        self.histograms: dict[str, LogHistogram] = {
            name: LogHistogram(subbuckets=hist_subbuckets) for name in HISTOGRAM_NAMES
        }
        self.series: dict[str, StrideSeries] = {
            "queue_depth": StrideSeries("gauge", stride_ns=stride_ns, max_bins=max_bins),
            "in_flight": StrideSeries("gauge", stride_ns=stride_ns, max_bins=max_bins),
            "retired": StrideSeries("rate", stride_ns=stride_ns, max_bins=max_bins),
            "steals": StrideSeries("rate", stride_ns=stride_ns, max_bins=max_bins),
            "empty_pops": StrideSeries("rate", stride_ns=stride_ns, max_bins=max_bins),
            "remote_items": StrideSeries("rate", stride_ns=stride_ns, max_bins=max_bins),
        }
        self.events_seen = 0
        self.end_t = 0.0
        # live (bounded) tracking state: one slot per in-flight worker,
        # one per non-empty physical queue, one open generation bracket
        self._open_pops: dict[int, float] = {}
        self._queue_depths: dict[str, int] = {}
        self._queue_total = 0
        self._in_flight = 0
        self._open_generation: tuple[int, float] | None = None
        #: per-device counters, keyed by the "@dev{i}" queue-name suffix /
        #: the device ids Remote* events carry; empty on single-device runs
        self.device_counters: dict[int, dict[str, float]] = {}

    def _device(self, dev: int) -> dict[str, float]:
        slot = self.device_counters.get(dev)
        if slot is None:
            slot = self.device_counters[dev] = {
                name: 0 for name in DEVICE_COUNTER_NAMES
            }
        return slot

    @staticmethod
    def _device_of(queue: str) -> int | None:
        """Device index from a ``{name}@dev{i}`` queue name, else ``None``."""
        _, sep, tail = queue.rpartition("@dev")
        if sep and tail.isdigit():
            return int(tail)
        return None

    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        self.events_seen += 1
        t = event.t
        c = self.counters
        if isinstance(event, (QueuePush, QueuePop)):
            wait_hist = self.histograms["queue_wait_ns"]
            wait_hist.record(event.wait_ns)
            depths = self._queue_depths
            self._queue_total += event.depth - depths.get(event.queue, 0)
            if event.depth == 0:
                depths.pop(event.queue, None)  # drained: drop the slot
            else:
                depths[event.queue] = event.depth
            total = self._queue_total
            self.series["queue_depth"].observe(t, total)
            if total > c["max_queue_depth"]:
                c["max_queue_depth"] = total
            # one deque per device in the distributed worklist, so the
            # event's own depth IS the device's depth
            dev = self._device_of(event.queue)
            slot = self._device(dev) if dev is not None else None
            if isinstance(event, QueuePush):
                c["queue_pushes"] += 1
                c["queue_items_pushed"] += event.items
                if slot is not None:
                    slot["queue_pushes"] += 1
                    slot["items_pushed"] += event.items
            else:
                c["queue_pops"] += 1
                c["queue_items_popped"] += event.items
                if slot is not None:
                    slot["queue_pops"] += 1
                    slot["items_popped"] += event.items
            if slot is not None and event.depth > slot["max_depth"]:
                slot["max_depth"] = event.depth
        elif isinstance(event, TaskPop):
            c["task_pops"] += 1
            c["task_items"] += event.items
            self._open_pops[event.worker] = t
            self._in_flight += 1
            if self._in_flight > c["max_in_flight"]:
                c["max_in_flight"] = self._in_flight
            self.series["in_flight"].observe(t, self._in_flight)
        elif isinstance(event, TaskRead):
            c["task_reads"] += 1
        elif isinstance(event, TaskComplete):
            c["task_completes"] += 1
            c["items_retired"] += event.retired
            c["items_pushed_by_tasks"] += event.pushed
            c["work_units"] += event.work
            start = self._open_pops.pop(event.worker, None)
            if start is not None:
                self.histograms["task_latency_ns"].record(t - start)
                self._in_flight -= 1
                self.series["in_flight"].observe(t, self._in_flight)
            self.series["retired"].add(t, event.retired)
        elif isinstance(event, EmptyPop):
            c["empty_pops"] += 1
            self.histograms["queue_wait_ns"].record(event.wait_ns)
            self.series["empty_pops"].add(t)
        elif isinstance(event, QueueSteal):
            c["steals"] += 1
            c["steal_items"] += event.items
            self.series["steals"].add(t)
        elif isinstance(event, RemotePush):
            c["remote_pushes"] += 1
            c["remote_items"] += event.items
            c["comm_ns"] += event.transfer_ns
            self.series["remote_items"].add(t, event.items)
            self._device(event.dst)["remote_items_in"] += event.items
        elif isinstance(event, RemoteSteal):
            c["remote_steals"] += 1
            c["comm_ns"] += event.transfer_ns
            self.series["remote_items"].add(t, event.items)
            self._device(event.thief)["remote_steals"] += 1
        elif isinstance(event, KernelLaunch):
            c["kernel_launches"] += 1
            c["launch_ns"] += event.duration_ns
            t += event.duration_ns
        elif isinstance(event, Barrier):
            c["barriers"] += 1
            c["barrier_ns"] += event.duration_ns
            t += event.duration_ns
        elif isinstance(event, GenerationStart):
            self._open_generation = (event.generation, t)
        elif isinstance(event, GenerationEnd):
            open_gen = self._open_generation
            if open_gen is not None and open_gen[0] == event.generation:
                c["generations"] += 1
                self.histograms["generation_span_ns"].record(t - open_gen[1])
            self._open_generation = None
        elif isinstance(event, PolicySwitch):
            c["policy_switches"] += 1
        if t > self.end_t:
            self.end_t = t

    # ------------------------------------------------------------------
    def retained(self) -> int:
        """Retained-object count — the bounded-memory contract.

        Sums every growable container the sink holds: histogram buckets,
        series bins, live worker slots and live queue slots.  On a run
        with 10× the events this number must not move beyond the bucket /
        stride caps (``tests/test_metrics_stream.py``).
        """
        return (
            sum(len(h) for h in self.histograms.values())
            + sum(len(s) for s in self.series.values())
            + len(self._open_pops)
            + len(self._queue_depths)
            + len(self.counters)
            + sum(len(d) for d in self.device_counters.values())
        )
