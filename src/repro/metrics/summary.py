"""The stable ``MetricsSummary`` schema: one run, one JSON document.

A summary freezes a :class:`~repro.metrics.sink.MetricsSink` into a
schema-versioned dict — counters, histogram snapshots (count/sum/min/max
plus bucket contents), and the stride time series — together with the
run's identity (app, dataset, config, size) and simulated elapsed time.
Every value is derived from *simulated* time, so summaries are
bit-deterministic for a fixed seed and machine-independent: the committed
``BENCH_metrics_baseline.json`` diffs exactly on any host.

:func:`validate_summary` is the drift gate CI runs: schema version,
required keys, internal consistency (bucket counts sum to the histogram
count, series lengths within the bin cap).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.metrics.hist import LogHistogram
from repro.metrics.sink import (
    COUNTER_NAMES,
    DEVICE_COUNTER_NAMES,
    HISTOGRAM_NAMES,
    SERIES_NAMES,
    MetricsSink,
)

__all__ = [
    "SUMMARY_SCHEMA",
    "summarize",
    "validate_summary",
    "write_summary",
    "load_summary",
]

#: v2 adds the device dimension: the ``remote_*``/``comm_ns`` counters,
#: the ``remote_items`` series and the per-device ``devices`` block
#: (empty dict on single-device runs, so v1-era values are unchanged)
SUMMARY_SCHEMA = "repro.metrics/summary-v2"


def summarize(
    sink: MetricsSink,
    *,
    app: str = "",
    dataset: str = "",
    config: str = "",
    size: str = "",
    elapsed_ns: float | None = None,
) -> dict:
    """Freeze a sink into a schema-stable ``MetricsSummary`` document."""
    return {
        "schema": SUMMARY_SCHEMA,
        "app": app,
        "dataset": dataset,
        "config": config,
        "size": size,
        "elapsed_ns": float(elapsed_ns if elapsed_ns is not None else sink.end_t),
        "events_seen": sink.events_seen,
        "counters": {name: sink.counters[name] for name in COUNTER_NAMES},
        "histograms": {name: sink.histograms[name].to_dict() for name in HISTOGRAM_NAMES},
        "series": {name: sink.series[name].to_dict() for name in SERIES_NAMES},
        # keyed by str(device index) so the document round-trips JSON
        "devices": {
            str(dev): dict(sink.device_counters[dev])
            for dev in sorted(sink.device_counters)
        },
    }


def _check_histogram(name: str, doc: Any, problems: list[str]) -> None:
    if not isinstance(doc, dict):
        problems.append(f"histogram {name!r} must be a dict")
        return
    for key in ("min_value", "subbuckets", "count", "sum", "zero", "min", "max",
                "mean", "p50", "p90", "p99", "buckets"):
        if key not in doc:
            problems.append(f"histogram {name!r} missing key {key!r}")
            return
    if not isinstance(doc["buckets"], dict):
        problems.append(f"histogram {name!r} buckets must be a dict")
        return
    bucket_total = sum(doc["buckets"].values()) + doc["zero"]
    if bucket_total != doc["count"]:
        problems.append(
            f"histogram {name!r} buckets sum to {bucket_total}, count says {doc['count']}"
        )
    if doc["count"] < 0 or any(v < 0 for v in doc["buckets"].values()):
        problems.append(f"histogram {name!r} has negative counts")


def _check_series(name: str, doc: Any, problems: list[str]) -> None:
    if not isinstance(doc, dict):
        problems.append(f"series {name!r} must be a dict")
        return
    for key in ("kind", "stride_ns", "max_bins", "rescales", "values", "peak"):
        if key not in doc:
            problems.append(f"series {name!r} missing key {key!r}")
            return
    if doc["kind"] not in ("rate", "gauge"):
        problems.append(f"series {name!r} has unknown kind {doc['kind']!r}")
    if not isinstance(doc["values"], list):
        problems.append(f"series {name!r} values must be a list")
        return
    if len(doc["values"]) > doc["max_bins"]:
        problems.append(
            f"series {name!r} holds {len(doc['values'])} bins, cap is {doc['max_bins']}"
        )
    if doc["stride_ns"] <= 0:
        problems.append(f"series {name!r} stride must be positive")


def validate_summary(doc: Any) -> list[str]:
    """Schema + consistency check; returns problems (empty = valid)."""
    if not isinstance(doc, dict):
        return [f"summary must be a dict, got {type(doc).__name__}"]
    problems: list[str] = []
    if doc.get("schema") != SUMMARY_SCHEMA:
        problems.append(f"schema {doc.get('schema')!r} != {SUMMARY_SCHEMA!r}")
    for key, typ in (
        ("app", str), ("dataset", str), ("config", str), ("size", str),
        ("elapsed_ns", (int, float)), ("events_seen", int),
        ("counters", dict), ("histograms", dict), ("series", dict),
        ("devices", dict),
    ):
        if key not in doc:
            problems.append(f"missing key {key!r}")
        elif not isinstance(doc[key], typ):
            problems.append(f"{key!r} has wrong type {type(doc[key]).__name__}")
    if problems:
        return problems
    for name in COUNTER_NAMES:
        if name not in doc["counters"]:
            problems.append(f"missing counter {name!r}")
        elif not isinstance(doc["counters"][name], (int, float)):
            problems.append(f"counter {name!r} is not a number")
        elif doc["counters"][name] < 0:
            problems.append(f"counter {name!r} is negative")
    for name in HISTOGRAM_NAMES:
        if name not in doc["histograms"]:
            problems.append(f"missing histogram {name!r}")
        else:
            _check_histogram(name, doc["histograms"][name], problems)
    for name in SERIES_NAMES:
        if name not in doc["series"]:
            problems.append(f"missing series {name!r}")
        else:
            _check_series(name, doc["series"][name], problems)
    for dev, block in sorted(doc["devices"].items()):
        if not (isinstance(dev, str) and dev.isdigit()):
            problems.append(f"device key {dev!r} must be a stringified index")
            continue
        if not isinstance(block, dict):
            problems.append(f"device {dev} block must be a dict")
            continue
        for name in DEVICE_COUNTER_NAMES:
            if name not in block:
                problems.append(f"device {dev} missing counter {name!r}")
            elif not isinstance(block[name], (int, float)) or block[name] < 0:
                problems.append(f"device {dev} counter {name!r} invalid")
    if not problems and doc["elapsed_ns"] < 0:
        problems.append("elapsed_ns must be non-negative")
    return problems


def histogram_from_summary(doc: dict, name: str) -> LogHistogram:
    """Rehydrate one histogram from a summary document."""
    return LogHistogram.from_dict(doc["histograms"][name])


def write_summary(doc: dict, path: str | Path) -> None:
    """Serialize with sorted keys: equal summaries → byte-identical files."""
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_summary(path: str | Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))
