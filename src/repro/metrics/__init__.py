"""``repro.metrics`` — bounded-memory streaming telemetry + regression diffs.

The time-series layer behind the paper's headline arguments (frontier
size vs. launch overhead, resident-worker occupancy, queue depth under
stealing), built on the :mod:`repro.obs` event stream:

* :mod:`repro.metrics.hist` — HDR-style log-bucketed histograms;
* :mod:`repro.metrics.series` — fixed-stride, auto-rescaling simulated-time
  series;
* :mod:`repro.metrics.sink` — :class:`MetricsSink`, the streaming
  ``EventSink`` (O(buckets + strides) memory, never O(events));
* :mod:`repro.metrics.summary` — the stable ``MetricsSummary`` schema;
* :mod:`repro.metrics.export` — Prometheus text, JSONL, CSV, sparklines;
* :mod:`repro.metrics.diff` — per-metric thresholded regression diffs;
* :mod:`repro.metrics.baseline` — the committed diff anchor.

Attach through the dispatch layer (``run_app(..., metrics=True)``,
``Lab(metrics=True)``) or from a shell::

    python -m repro metrics bfs roadNet-CA --config persist-warp
    python -m repro diff new_summary.json BENCH_metrics_baseline.json
"""

from repro.metrics.baseline import (
    BASELINE_CELLS,
    BASELINE_SCHEMA,
    collect_baseline,
    validate_baseline,
)
from repro.metrics.diff import DiffReport, diff_docs, diff_summaries
from repro.metrics.export import format_dashboard, series_csv, to_jsonl, to_prometheus
from repro.metrics.hist import LogHistogram
from repro.metrics.series import StrideSeries
from repro.metrics.sink import MetricsSink
from repro.metrics.summary import (
    SUMMARY_SCHEMA,
    load_summary,
    summarize,
    validate_summary,
    write_summary,
)

__all__ = [
    "LogHistogram",
    "StrideSeries",
    "MetricsSink",
    "SUMMARY_SCHEMA",
    "summarize",
    "validate_summary",
    "write_summary",
    "load_summary",
    "to_prometheus",
    "to_jsonl",
    "series_csv",
    "format_dashboard",
    "DiffReport",
    "diff_summaries",
    "diff_docs",
    "BASELINE_SCHEMA",
    "BASELINE_CELLS",
    "collect_baseline",
    "validate_baseline",
]
