"""Fixed-stride simulated-time series with bounded memory.

:class:`StrideSeries` bins observations onto a fixed simulated-time grid
of at most ``max_bins`` bins.  When an observation lands past the end of
the grid the stride *doubles* and adjacent bins fold pairwise, so a
series covering a nanosecond or an hour of simulated time retains the
same O(max_bins) state — the bounded-memory contract
``tests/test_metrics_stream.py`` asserts.

Two kinds:

* ``"rate"`` — each bin accumulates a count (events, items); the bin's
  rate is ``count / stride``.  Folding sums.
* ``"gauge"`` — each bin keeps the *last* value observed in it (in event
  stream order; queue depth and worker occupancy are step functions, so
  last-in-bin is the value the run held at the bin boundary).  Folding
  keeps the later bin's value; unobserved bins carry the previous value
  forward on export.

Rescaling is deterministic: it depends only on the observation stream,
never on wall clocks, so same-seed runs produce identical series.
"""

from __future__ import annotations

__all__ = ["StrideSeries"]

DEFAULT_MAX_BINS = 256
DEFAULT_STRIDE_NS = 1024.0

#: gauge sentinel for "no observation landed in this bin"
_UNSEEN = None


class StrideSeries:
    """Bounded-memory time series over simulated nanoseconds."""

    __slots__ = ("kind", "stride_ns", "max_bins", "bins", "hi", "rescales")

    def __init__(
        self,
        kind: str = "rate",
        *,
        stride_ns: float = DEFAULT_STRIDE_NS,
        max_bins: int = DEFAULT_MAX_BINS,
    ) -> None:
        if kind not in ("rate", "gauge"):
            raise ValueError(f"kind must be 'rate' or 'gauge', got {kind!r}")
        if stride_ns <= 0:
            raise ValueError("stride_ns must be positive")
        if max_bins < 2:
            raise ValueError("max_bins must be >= 2")
        self.kind = kind
        self.stride_ns = float(stride_ns)
        self.max_bins = int(max_bins)
        self.bins: list = [0.0 if kind == "rate" else _UNSEEN] * self.max_bins
        self.hi = -1  # highest bin index observed
        self.rescales = 0

    # ------------------------------------------------------------------
    def _rescale(self) -> None:
        """Double the stride; fold bin pairs (sum rates, keep later gauge)."""
        bins = self.bins
        half = self.max_bins // 2
        if self.kind == "rate":
            folded = [bins[2 * i] + bins[2 * i + 1] for i in range(half)]
            pad = [0.0] * (self.max_bins - half)
        else:
            folded = [
                bins[2 * i + 1] if bins[2 * i + 1] is not _UNSEEN else bins[2 * i]
                for i in range(half)
            ]
            pad = [_UNSEEN] * (self.max_bins - half)
        self.bins = folded + pad
        self.stride_ns *= 2.0
        self.hi = self.hi // 2
        self.rescales += 1

    def _bin(self, t_ns: float) -> int:
        if t_ns < 0.0:
            t_ns = 0.0
        idx = int(t_ns / self.stride_ns)
        while idx >= self.max_bins:
            self._rescale()
            idx = int(t_ns / self.stride_ns)
        if idx > self.hi:
            self.hi = idx
        return idx

    def add(self, t_ns: float, n: float = 1.0) -> None:
        """Rate series: accumulate ``n`` at simulated time ``t_ns``."""
        if self.kind != "rate":
            raise TypeError("add() is for rate series; use observe() on a gauge")
        # bind the index before touching self.bins: _bin() may rescale,
        # replacing the bins list
        idx = self._bin(t_ns)
        self.bins[idx] += n

    def observe(self, t_ns: float, value: float) -> None:
        """Gauge series: record ``value`` at simulated time ``t_ns``."""
        if self.kind != "gauge":
            raise TypeError("observe() is for gauge series; use add() on a rate")
        idx = self._bin(t_ns)
        self.bins[idx] = value

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Retained bin count (the memory bound, not the observed span)."""
        return len(self.bins)

    @property
    def n_observed(self) -> int:
        """Number of grid bins up to the last observation."""
        return self.hi + 1

    def values(self) -> list[float]:
        """The observed prefix of the grid, gauges carried forward.

        Rates are raw per-bin counts (divide by ``stride_ns`` for a true
        rate); gauge bins with no observation repeat the previous value
        (step-function semantics).  Leading unobserved bins carry the
        *first* observed value back: a gauge is a step function whose
        level is unknown before its first observation, and the first
        observation is a strictly better estimate of that opening level
        than an invented 0.0 (a queue-depth series first observed at
        depth 7 did not start the run empty).
        """
        if self.hi < 0:
            return []
        if self.kind == "rate":
            return [float(v) for v in self.bins[: self.hi + 1]]
        window = self.bins[: self.hi + 1]
        last = 0.0
        for v in window:
            if v is not _UNSEEN:
                last = float(v)
                break
        out: list[float] = []
        for v in window:
            if v is not _UNSEEN:
                last = float(v)
            out.append(last)
        return out

    def to_dict(self) -> dict:
        vals = self.values()
        return {
            "kind": self.kind,
            "stride_ns": self.stride_ns,
            "max_bins": self.max_bins,
            "rescales": self.rescales,
            "values": vals,
            "peak": max(vals, default=0.0),
        }
