"""Log-bucketed (HDR-style) streaming histograms.

:class:`LogHistogram` records a value distribution in O(buckets) memory:
each sample lands in a geometric bucket — power-of-two octaves split into
``subbuckets`` linear sub-buckets, the HdrHistogram layout — so the
retained state is one sparse ``{bucket_index: count}`` dict plus four
scalars (count, sum, min, max), never the samples themselves.

Bucket indexing is exact float arithmetic (``math.frexp``, no ``log``):
the same sample always lands in the same bucket on every platform, which
is what lets a committed :mod:`repro.metrics.summary` baseline diff
bit-exactly across machines.  ``sum`` accumulates in record order, so a
histogram rebuilt from a full :class:`~repro.obs.collector.Collector`
event dump in stream order reproduces the streaming value *exactly* —
the cross-check ``tests/test_metrics_stream.py`` pins.
"""

from __future__ import annotations

import math
from typing import Iterator

__all__ = ["LogHistogram"]

#: quarter-octave sub-bucketing: worst-case relative bucket width ~19%
DEFAULT_SUBBUCKETS = 4


class LogHistogram:
    """Streaming histogram over positive values with geometric buckets.

    ``min_value`` is the resolution floor: samples in ``(0, min_value)``
    land in bucket 0, samples ``<= 0`` in the dedicated zero bucket.
    Above the floor, bucket ``octave * subbuckets + sub`` covers
    ``[2**octave * (1 + sub/subbuckets), 2**octave * (1 + (sub+1)/subbuckets))``
    times ``min_value``.
    """

    __slots__ = ("min_value", "subbuckets", "buckets", "zero", "count", "sum", "min", "max")

    def __init__(self, *, min_value: float = 1.0, subbuckets: int = DEFAULT_SUBBUCKETS) -> None:
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        if subbuckets < 1:
            raise ValueError("subbuckets must be >= 1")
        self.min_value = float(min_value)
        self.subbuckets = int(subbuckets)
        self.buckets: dict[int, int] = {}
        self.zero = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------
    def record(self, value: float, n: int = 1) -> None:
        """Add ``n`` samples of ``value``."""
        self.count += n
        self.sum += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero += n
            return
        idx = self._index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + n

    def _index(self, value: float) -> int:
        """Bucket index for a positive value (exact frexp arithmetic)."""
        n = value / self.min_value
        if n < 1.0:
            return 0
        m, e = math.frexp(n)  # n = m * 2**e, m in [0.5, 1)
        octave = e - 1  # n in [2**octave, 2**(octave+1))
        sub = int((m - 0.5) * 2.0 * self.subbuckets)
        if sub >= self.subbuckets:  # m == 1.0 cannot happen, but guard rounding
            sub = self.subbuckets - 1
        return octave * self.subbuckets + sub

    def bucket_bounds(self, idx: int) -> tuple[float, float]:
        """``[lo, hi)`` value range covered by bucket ``idx``."""
        octave, sub = divmod(idx, self.subbuckets)
        scale = self.min_value * 2.0**octave
        lo = scale * (1.0 + sub / self.subbuckets)
        hi = scale * (1.0 + (sub + 1) / self.subbuckets)
        if idx == 0:
            lo = 0.0  # bucket 0 also absorbs (0, min_value)
        return lo, hi

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of retained (non-empty) buckets — the memory bound."""
        return len(self.buckets)

    def items(self) -> Iterator[tuple[int, int]]:
        """``(bucket_index, count)`` pairs in ascending bucket order."""
        return iter(sorted(self.buckets.items()))

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-quantile sample.

        Exact ``min``/``max`` are reported for q = 0 / 1; anything in
        between is resolved to bucket precision (≤ ~``1/subbuckets``
        relative error).  Returns 0.0 on an empty histogram.
        """
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = q * self.count
        seen = self.zero
        if rank <= seen:
            return 0.0
        for idx, cnt in self.items():
            seen += cnt
            if rank <= seen:
                hi = self.bucket_bounds(idx)[1]
                return min(hi, self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # ------------------------------------------------------------------
    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram (same layout) into this one."""
        if (other.min_value, other.subbuckets) != (self.min_value, self.subbuckets):
            raise ValueError("cannot merge histograms with different bucket layouts")
        self.count += other.count
        self.sum += other.sum
        self.zero += other.zero
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for idx, cnt in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + cnt

    def to_dict(self) -> dict:
        """JSON-stable snapshot (bucket keys stringified, sorted on dump)."""
        return {
            "min_value": self.min_value,
            "subbuckets": self.subbuckets,
            "count": self.count,
            "sum": self.sum,
            "zero": self.zero,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "buckets": {str(idx): cnt for idx, cnt in self.items()},
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "LogHistogram":
        h = cls(min_value=doc["min_value"], subbuckets=doc["subbuckets"])
        h.count = int(doc["count"])
        h.sum = float(doc["sum"])
        h.zero = int(doc["zero"])
        if h.count:
            h.min = float(doc["min"])
            h.max = float(doc["max"])
        h.buckets = {int(k): int(v) for k, v in doc["buckets"].items()}
        return h
