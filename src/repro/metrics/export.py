"""Metric exporters: Prometheus text, JSONL, CSV, sparkline dashboard.

All exporters operate on the schema-stable ``MetricsSummary`` document
(:func:`repro.metrics.summary.summarize`), not on a live sink, so a
summary written yesterday exports identically today.  Output is
deterministic — fixed ordering, fixed separators — making exported files
diffable artifacts like the Chrome traces.
"""

from __future__ import annotations

import json
import math

from repro.metrics.sink import COUNTER_NAMES, HISTOGRAM_NAMES, SERIES_NAMES

__all__ = ["to_prometheus", "to_jsonl", "series_csv", "format_dashboard"]

#: counters exported as Prometheus gauges (high-water marks, not totals)
_GAUGE_COUNTERS = {"max_queue_depth", "max_in_flight"}

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _labels(doc: dict) -> str:
    pairs = [
        (key, doc.get(key, "")) for key in ("app", "dataset", "config", "size")
    ]
    inner = ",".join(f'{k}="{v}"' for k, v in pairs if v)
    return "{" + inner + "}" if inner else ""


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def to_prometheus(doc: dict, *, prefix: str = "repro") -> str:
    """Render a summary in the Prometheus text exposition format.

    Counters become ``<prefix>_<name>_total``, high-water marks become
    gauges, histograms use the native cumulative-``le`` representation
    (bucket upper bounds from the log layout), and each series' peak is
    exported as a gauge — Prometheus has no series type; the full curves
    live in the JSONL/CSV exports.
    """
    labels = _labels(doc)
    lines: list[str] = []

    def metric(name: str, mtype: str, value: float, extra_label: str = "") -> None:
        lines.append(f"# TYPE {name} {mtype}")
        lines.append(f"{name}{extra_label or labels} {_fmt(value)}")

    metric(f"{prefix}_elapsed_ns", "gauge", doc["elapsed_ns"])
    for cname in COUNTER_NAMES:
        value = doc["counters"][cname]
        if cname in _GAUGE_COUNTERS:
            metric(f"{prefix}_{cname}", "gauge", value)
        else:
            metric(f"{prefix}_{cname}_total", "counter", value)
    for hname in HISTOGRAM_NAMES:
        h = doc["histograms"][hname]
        base = f"{prefix}_{hname}"
        lines.append(f"# TYPE {base} histogram")
        subbuckets = h["subbuckets"]
        min_value = h["min_value"]
        cumulative = h["zero"]
        for idx in sorted(int(k) for k in h["buckets"]):
            cumulative += h["buckets"][str(idx)]
            octave, sub = divmod(idx, subbuckets)
            le = min_value * 2.0**octave * (1.0 + (sub + 1) / subbuckets)
            le_labels = labels[:-1] + f',le="{le!r}"}}' if labels else f'{{le="{le!r}"}}'
            lines.append(f"{base}_bucket{le_labels} {cumulative}")
        le_labels = labels[:-1] + ',le="+Inf"}' if labels else '{le="+Inf"}'
        lines.append(f"{base}_bucket{le_labels} {h['count']}")
        lines.append(f"{base}_sum{labels} {_fmt(h['sum'])}")
        lines.append(f"{base}_count{labels} {h['count']}")
    for sname in SERIES_NAMES:
        metric(f"{prefix}_{sname}_peak", "gauge", doc["series"][sname]["peak"])
    for dev, block in sorted(
        (doc.get("devices") or {}).items(), key=lambda kv: int(kv[0])
    ):
        for cname in sorted(block):
            dev_labels = (
                labels[:-1] + f',device="{dev}"}}' if labels else f'{{device="{dev}"}}'
            )
            mname = f"{prefix}_device_{cname}"
            suffix = "" if cname == "max_depth" else "_total"
            metric(
                f"{mname}{suffix}",
                "gauge" if cname == "max_depth" else "counter",
                block[cname],
                dev_labels,
            )
    return "\n".join(lines) + "\n"


def to_jsonl(doc: dict) -> str:
    """One JSON object per line: run header, counters, histograms, series.

    Line-oriented so downstream tooling (``jq``, log shippers) can stream
    it; every line carries ``kind`` and the run identity.
    """
    ident = {key: doc.get(key, "") for key in ("app", "dataset", "config", "size")}
    records: list[dict] = [
        {"kind": "run", **ident, "elapsed_ns": doc["elapsed_ns"],
         "events_seen": doc["events_seen"], "schema": doc["schema"]},
        {"kind": "counters", **ident, **doc["counters"]},
    ]
    for hname in HISTOGRAM_NAMES:
        records.append({"kind": "histogram", "name": hname, **ident,
                        **doc["histograms"][hname]})
    for sname in SERIES_NAMES:
        payload = dict(doc["series"][sname])
        # the series' own "kind" (rate/gauge) must not clobber the record kind
        payload["series_kind"] = payload.pop("kind")
        records.append({"kind": "series", "name": sname, **ident, **payload})
    for dev, block in sorted(
        (doc.get("devices") or {}).items(), key=lambda kv: int(kv[0])
    ):
        records.append({"kind": "device", "device": int(dev), **ident, **block})
    return "\n".join(
        json.dumps(rec, sort_keys=True, separators=(",", ":")) for rec in records
    ) + "\n"


def series_csv(doc: dict) -> str:
    """Long-format CSV of every time series: ``series,bin,t_ns,value``."""
    rows = ["series,bin,t_ns,value"]
    for sname in SERIES_NAMES:
        s = doc["series"][sname]
        stride = s["stride_ns"]
        for i, value in enumerate(s["values"]):
            rows.append(f"{sname},{i},{i * stride!r},{value!r}")
    return "\n".join(rows) + "\n"


def _spark(values: list[float], width: int = 60) -> str:
    """Unicode sparkline, hardened for degenerate series.

    The scale runs 0..peak (not min..max): negative samples clamp to the
    baseline rather than index-wrapping into the tallest block, non-finite
    samples count as zero, and an empty / all-zero / all-negative series
    renders a placeholder or a flat baseline instead of raising.  A
    constant positive series is everywhere at its own peak, so it renders
    full-height — the peak label alongside carries the magnitude.
    """
    if not values:
        return "(no data)"
    values = [v if math.isfinite(v) else 0.0 for v in values]
    if len(values) > width:  # re-bin to display width by max (peaks matter)
        binned = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            binned.append(max(values[lo:hi]))
        values = binned
    peak = max(values)
    if peak <= 0:
        return _SPARK_BLOCKS[0] * len(values)
    top = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[min(top, max(0, int(v / peak * top)))] for v in values
    )


def format_dashboard(doc: dict) -> str:
    """ASCII dashboard: headline numbers + one sparkline per series."""
    c = doc["counters"]
    head = " ".join(filter(None, (doc.get("app"), doc.get("dataset"),
                                  f"[{doc.get('config')}]" if doc.get("config") else "",
                                  f"size={doc.get('size')}" if doc.get("size") else "")))
    lines = [
        f"metrics — {head}" if head else "metrics",
        f"  elapsed {doc['elapsed_ns'] / 1e6:.3f} ms   events {doc['events_seen']}   "
        f"tasks {int(c['task_pops'])}   retired {int(c['items_retired'])}",
        f"  launches {int(c['kernel_launches'])}   generations {int(c['generations'])}   "
        f"switches {int(c['policy_switches'])}   steals {int(c['steals'])}   "
        f"empty pops {int(c['empty_pops'])}",
    ]
    lat = doc["histograms"]["task_latency_ns"]
    wait = doc["histograms"]["queue_wait_ns"]
    lines.append(
        f"  task latency ns  p50={lat['p50']:.0f} p90={lat['p90']:.0f} "
        f"p99={lat['p99']:.0f} max={lat['max']:.0f}"
    )
    lines.append(
        f"  queue wait ns    p50={wait['p50']:.0f} p90={wait['p90']:.0f} "
        f"p99={wait['p99']:.0f} max={wait['max']:.0f}"
    )
    label_w = max(len(name) for name in SERIES_NAMES)
    for sname in SERIES_NAMES:
        s = doc["series"][sname]
        unit = "" if s["kind"] == "gauge" else f"/{s['stride_ns'] / 1e3:g}us"
        lines.append(
            f"  {sname:<{label_w}s} {_spark(s['values'])} peak={s['peak']:g}{unit}"
        )
    devices = doc.get("devices") or {}
    if devices:
        lines.append(
            f"  devices {len(devices)}   remote pushes {int(c['remote_pushes'])}   "
            f"remote steals {int(c['remote_steals'])}   "
            f"comm {c['comm_ns'] / 1e6:.3f} ms"
        )
        for dev, block in sorted(devices.items(), key=lambda kv: int(kv[0])):
            lines.append(
                f"    dev{dev}  pushed={int(block['items_pushed'])} "
                f"popped={int(block['items_popped'])} "
                f"remote_in={int(block['remote_items_in'])} "
                f"steals={int(block['remote_steals'])} "
                f"max_depth={int(block['max_depth'])}"
            )
    return "\n".join(lines)
