"""Live discrete-event-model invariant checking over the obs stream.

:class:`InvariantMonitor` is an :class:`~repro.obs.events.EventSink`: pass
it as the ``sink=`` of any run and it asserts, event by event, that the
simulation respects the model's conservation and ordering laws:

* **queue conservation** — every :class:`~repro.obs.events.QueuePush` /
  :class:`~repro.obs.events.QueuePop` must move the queue's reported
  depth by exactly its item count, the tracked depth never goes negative,
  and an :class:`~repro.obs.events.EmptyPop` may only happen on a queue
  the event stream says is empty.  (``drain`` emits no event and is
  terminal for a queue in every shipped policy — generation and phase
  queues are named uniquely and never reused after a drain; the stats-side
  equation covering drains is :func:`verify_queue_conservation`.)
* **per-device conservation** — on a multi-device run the worklist names
  its deques ``{name}@dev{i}``; the monitor attributes pushes/pops to
  devices by that suffix and :meth:`reconcile` asserts the conservation
  equation ``pushed_d == popped_d + depth_d`` for **every device
  individually and for the global sum**.  Items in flight on a link
  belong to no deque (a remote push only lands as a
  :class:`~repro.obs.events.RemotePush` + ``QueuePush`` at its arrival
  time), so both granularities must balance exactly once the run drains.
* **clock monotonicity** — per queue, each atomic's completion times are
  non-decreasing (push stream and pop/empty-pop stream serialize on
  separate atomics); per worker slot, the TaskPop → TaskRead →
  TaskComplete lifecycle never steps backwards in simulated time.
* **slot occupancy** — a worker holds at most one task (a second TaskPop
  before its TaskComplete is double occupancy), tasks in flight never
  exceed ``worker_slots``, and reads/completes only happen on a busy slot.
* **policy-switch consistency** — :class:`~repro.obs.events.PolicySwitch`
  events alternate persistent ↔ discrete starting with ``"persistent"``
  (the hybrid strategy's resting mode is discrete), carry non-decreasing
  times and generation ordinals, and only fire at a quiescent boundary
  (no task in flight); generation brackets pair up un-nested with
  strictly increasing ordinals.

Violations are collected (``strict=False``, the default) or raised
immediately as :class:`InvariantViolation` (``strict=True``).  After the
run, :meth:`InvariantMonitor.reconcile` cross-checks the event totals
against the run's counter block — the same numbers derived two
independent ways.  ``forward=`` chains another sink (e.g. a
:class:`~repro.obs.collector.Collector`) so monitoring does not preclude
trace capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.events import (
    Barrier,
    EmptyPop,
    EpochMark,
    EventSink,
    GenerationEnd,
    GenerationStart,
    KernelLaunch,
    PolicySwitch,
    QueuePop,
    QueuePush,
    QueueSteal,
    RemotePush,
    RemoteSteal,
    TaskComplete,
    TaskPop,
    TaskRead,
    TraceEvent,
)

__all__ = [
    "InvariantViolation",
    "Violation",
    "InvariantMonitor",
    "verify_queue_conservation",
]


class InvariantViolation(AssertionError):
    """A run broke a discrete-event-model invariant."""


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    rule: str
    detail: str
    event: TraceEvent | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.rule}: {self.detail}"


_IDLE, _POPPED, _READING = 0, 1, 2


class InvariantMonitor:
    """EventSink asserting conservation/ordering laws over a live run."""

    def __init__(
        self,
        *,
        worker_slots: int | None = None,
        forward: EventSink | None = None,
        strict: bool = False,
    ) -> None:
        self.worker_slots = worker_slots
        self.forward = forward
        self.strict = strict
        self.violations: list[Violation] = []
        # per-queue state (keyed by physical queue name)
        self._depth: dict[str, int] = {}
        self._push_t: dict[str, float] = {}
        self._pop_t: dict[str, float] = {}
        # per-device item totals (keyed by the "@dev{i}" queue-name suffix;
        # empty on single-device runs, which never tag their queues)
        self._dev_pushed: dict[int, int] = {}
        self._dev_popped: dict[int, int] = {}
        self._dev_queues: dict[int, set[str]] = {}
        # per-worker state
        self._worker_state: dict[int, int] = {}
        self._worker_t: dict[int, float] = {}
        self.in_flight = 0
        self.max_in_flight = 0
        # policy / generation state
        self._last_switch: PolicySwitch | None = None
        self._open_generation: int | None = None
        self._last_generation = 0
        # event totals for reconcile()
        self.counts: dict[str, int] = {
            "task_pops": 0,
            "task_reads": 0,
            "task_completes": 0,
            "queue_pushes": 0,
            "queue_pops": 0,
            "empty_pops": 0,
            "steals": 0,
            "kernel_launches": 0,
            "policy_switches": 0,
            "remote_pushes": 0,
            "remote_steals": 0,
        }
        self.items_retired = 0
        self.queue_items_pushed = 0
        self.queue_items_popped = 0
        self.queue_items_banked = 0
        self.remote_items = 0

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_clean(self) -> None:
        """Raise :class:`InvariantViolation` if anything was flagged."""
        if self.violations:
            lines = "; ".join(str(v) for v in self.violations[:10])
            more = len(self.violations) - 10
            if more > 0:
                lines += f"; … and {more} more"
            raise InvariantViolation(f"{len(self.violations)} invariant violation(s): {lines}")

    def _flag(self, rule: str, detail: str, event: TraceEvent | None = None) -> None:
        v = Violation(rule=rule, detail=detail, event=event)
        self.violations.append(v)
        if self.strict:
            raise InvariantViolation(str(v))

    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        if isinstance(event, QueuePush):
            self._on_queue_push(event)
        elif isinstance(event, QueuePop):
            self._on_queue_pop(event)
        elif isinstance(event, EmptyPop):
            self._on_empty_pop(event)
        elif isinstance(event, TaskPop):
            self._on_task_pop(event)
        elif isinstance(event, TaskRead):
            self._on_task_read(event)
        elif isinstance(event, TaskComplete):
            self._on_task_complete(event)
        elif isinstance(event, PolicySwitch):
            self._on_policy_switch(event)
        elif isinstance(event, GenerationStart):
            self._on_generation_start(event)
        elif isinstance(event, GenerationEnd):
            self._on_generation_end(event)
        elif isinstance(event, QueueSteal):
            self.counts["steals"] += 1
            self.queue_items_banked += event.banked
        elif isinstance(event, RemotePush):
            self.counts["remote_pushes"] += 1
            self.remote_items += event.items
        elif isinstance(event, RemoteSteal):
            self.counts["remote_steals"] += 1
        elif isinstance(event, EpochMark):
            self._on_epoch_mark(event)
        elif isinstance(event, KernelLaunch):
            self.counts["kernel_launches"] += 1
        elif isinstance(event, Barrier):
            pass
        if self.forward is not None:
            self.forward.emit(event)

    # -- queue layer ---------------------------------------------------
    @staticmethod
    def _device_of(queue: str) -> int | None:
        """Device index from a ``{name}@dev{i}`` queue name, else ``None``."""
        _, sep, tail = queue.rpartition("@dev")
        if sep and tail.isdigit():
            return int(tail)
        return None

    def _on_queue_push(self, ev: QueuePush) -> None:
        self.counts["queue_pushes"] += 1
        self.queue_items_pushed += ev.items
        dev = self._device_of(ev.queue)
        if dev is not None:
            self._dev_pushed[dev] = self._dev_pushed.get(dev, 0) + ev.items
            self._dev_queues.setdefault(dev, set()).add(ev.queue)
        prev = self._depth.get(ev.queue, 0)
        if ev.depth != prev + ev.items:
            self._flag(
                "queue-conservation",
                f"push of {ev.items} moved {ev.queue!r} depth {prev} -> {ev.depth} "
                f"(expected {prev + ev.items})",
                ev,
            )
        self._depth[ev.queue] = ev.depth
        last = self._push_t.get(ev.queue)
        if last is not None and ev.t < last:
            self._flag(
                "queue-clock",
                f"push on {ev.queue!r} completed at t={ev.t} before prior push t={last}",
                ev,
            )
        self._push_t[ev.queue] = ev.t

    def _on_queue_pop(self, ev: QueuePop) -> None:
        self.counts["queue_pops"] += 1
        self.queue_items_popped += ev.items
        dev = self._device_of(ev.queue)
        if dev is not None:
            self._dev_popped[dev] = self._dev_popped.get(dev, 0) + ev.items
            self._dev_queues.setdefault(dev, set()).add(ev.queue)
        prev = self._depth.get(ev.queue, 0)
        expected = prev - ev.items
        if ev.depth != expected or expected < 0:
            self._flag(
                "queue-conservation",
                f"pop of {ev.items} moved {ev.queue!r} depth {prev} -> {ev.depth} "
                f"(expected {expected})",
                ev,
            )
        self._depth[ev.queue] = ev.depth
        self._check_pop_clock(ev.queue, ev.t, ev)

    def _on_empty_pop(self, ev: EmptyPop) -> None:
        self.counts["empty_pops"] += 1
        prev = self._depth.get(ev.queue, 0)
        if prev != 0:
            self._flag(
                "queue-conservation",
                f"empty pop on {ev.queue!r} while tracked depth is {prev}",
                ev,
            )
        self._check_pop_clock(ev.queue, ev.t, ev)

    def _check_pop_clock(self, queue: str, t: float, ev: TraceEvent) -> None:
        last = self._pop_t.get(queue)
        if last is not None and t < last:
            self._flag(
                "queue-clock",
                f"pop on {queue!r} completed at t={t} before prior pop t={last}",
                ev,
            )
        self._pop_t[queue] = t

    # -- worker layer --------------------------------------------------
    def _check_worker_clock(self, worker: int, t: float, ev: TraceEvent) -> None:
        last = self._worker_t.get(worker)
        if last is not None and t < last:
            self._flag(
                "worker-clock",
                f"worker {worker} stepped back in time: t={t} after t={last}",
                ev,
            )
        self._worker_t[worker] = t

    def _on_task_pop(self, ev: TaskPop) -> None:
        self.counts["task_pops"] += 1
        self._check_worker_clock(ev.worker, ev.t, ev)
        if self.worker_slots is not None and not (0 <= ev.worker < self.worker_slots):
            self._flag(
                "slot-occupancy",
                f"pop on worker {ev.worker} outside slot range [0, {self.worker_slots})",
                ev,
            )
        if self._worker_state.get(ev.worker, _IDLE) != _IDLE:
            self._flag(
                "slot-occupancy",
                f"worker {ev.worker} popped a task while one is in flight",
                ev,
            )
        else:
            self.in_flight += 1
        self._worker_state[ev.worker] = _POPPED
        self.max_in_flight = max(self.max_in_flight, self.in_flight)
        if self.worker_slots is not None and self.in_flight > self.worker_slots:
            self._flag(
                "slot-occupancy",
                f"{self.in_flight} tasks in flight exceeds worker_slots={self.worker_slots}",
                ev,
            )

    def _on_task_read(self, ev: TaskRead) -> None:
        self.counts["task_reads"] += 1
        self._check_worker_clock(ev.worker, ev.t, ev)
        state = self._worker_state.get(ev.worker, _IDLE)
        if state != _POPPED:
            self._flag(
                "task-lifecycle",
                f"read on worker {ev.worker} without a pending pop (state={state})",
                ev,
            )
        self._worker_state[ev.worker] = _READING

    def _on_task_complete(self, ev: TaskComplete) -> None:
        self.counts["task_completes"] += 1
        self.items_retired += ev.retired
        self._check_worker_clock(ev.worker, ev.t, ev)
        state = self._worker_state.get(ev.worker, _IDLE)
        if state == _IDLE:
            self._flag(
                "task-lifecycle",
                f"completion on idle worker {ev.worker}",
                ev,
            )
        else:
            self.in_flight -= 1
        self._worker_state[ev.worker] = _IDLE

    # -- epoch boundaries (dynamic-graph runs) -------------------------
    def _on_epoch_mark(self, ev: EpochMark) -> None:
        """An epoch boundary must be quiescent, then resets the clocks.

        :class:`~repro.obs.events.EpochMark` is emitted between the
        per-epoch engine runs of a dynamic replay.  The boundary laws:

        * **no task in flight** — an item popped in one epoch and never
          completed before the mark has leaked across the boundary;
        * every worker slot is idle (the per-slot refinement of the same
          rule: a slot stuck in POPPED/READING holds a leaked task);
        * no generation bracket is open.

        Each epoch then runs on a *fresh engine*: simulated time restarts
        at 0 and queue names are reused (``{config}-gen1`` exists in every
        epoch), so the per-queue depth/clock maps, worker clocks,
        generation ordinals and policy-switch state are reset — carrying
        them over would flag legal epoch-2 events against epoch-1 state.
        Event totals and item counters are *not* reset: reconcile() for a
        dynamic run checks the whole replay's sums.
        """
        self.counts["epoch_marks"] = self.counts.get("epoch_marks", 0) + 1
        if self.in_flight != 0:
            self._flag(
                "epoch-boundary",
                f"epoch {ev.epoch} begins with {self.in_flight} task(s) "
                "in flight — items leaked across the epoch boundary",
                ev,
            )
        busy = sorted(w for w, s in self._worker_state.items() if s != _IDLE)
        if busy:
            self._flag(
                "epoch-boundary",
                f"epoch {ev.epoch} begins with busy worker slot(s) {busy}",
                ev,
            )
        if self._open_generation is not None:
            self._flag(
                "epoch-boundary",
                f"epoch {ev.epoch} begins inside open generation "
                f"{self._open_generation}",
                ev,
            )
        self._depth.clear()
        self._push_t.clear()
        self._pop_t.clear()
        self._worker_t.clear()
        self._worker_state.clear()
        self.in_flight = 0
        self._last_switch = None
        self._open_generation = None
        self._last_generation = 0

    # -- policy / generation layer -------------------------------------
    def _on_policy_switch(self, ev: PolicySwitch) -> None:
        self.counts["policy_switches"] += 1
        prev = self._last_switch
        if prev is None:
            if ev.policy != "persistent":
                self._flag(
                    "policy-switch",
                    f"first switch must enter persistent mode, got {ev.policy!r}",
                    ev,
                )
        else:
            if ev.policy == prev.policy:
                self._flag(
                    "policy-switch",
                    f"consecutive switches to {ev.policy!r} (must alternate)",
                    ev,
                )
            if ev.t < prev.t:
                self._flag(
                    "policy-switch",
                    f"switch at t={ev.t} before prior switch t={prev.t}",
                    ev,
                )
            if ev.generation < prev.generation:
                self._flag(
                    "policy-switch",
                    f"switch generation regressed {prev.generation} -> {ev.generation}",
                    ev,
                )
        if self.in_flight != 0:
            self._flag(
                "policy-switch",
                f"switch with {self.in_flight} tasks in flight (boundary must be quiescent)",
                ev,
            )
        self._last_switch = ev

    def _on_generation_start(self, ev: GenerationStart) -> None:
        if self._open_generation is not None:
            self._flag(
                "generation-bracket",
                f"generation {ev.generation} started inside open generation "
                f"{self._open_generation}",
                ev,
            )
        if ev.generation <= self._last_generation:
            self._flag(
                "generation-bracket",
                f"generation ordinal regressed {self._last_generation} -> {ev.generation}",
                ev,
            )
        if self.in_flight != 0:
            self._flag(
                "generation-bracket",
                f"generation {ev.generation} started with {self.in_flight} tasks in flight",
                ev,
            )
        self._open_generation = ev.generation
        self._last_generation = max(self._last_generation, ev.generation)

    def _on_generation_end(self, ev: GenerationEnd) -> None:
        if self._open_generation != ev.generation:
            self._flag(
                "generation-bracket",
                f"generation {ev.generation} ended but {self._open_generation} is open",
                ev,
            )
        if self.in_flight != 0:
            self._flag(
                "generation-bracket",
                f"generation {ev.generation} ended with {self.in_flight} tasks in flight",
                ev,
            )
        self._open_generation = None

    # ------------------------------------------------------------------
    def reconcile(self, result: Any) -> None:
        """Cross-check the event totals against a finished run's counters.

        ``result`` is a :class:`~repro.core.engine.RunResult` or an
        :class:`~repro.apps.common.AppResult` (whose scheduler counters
        live in ``extra``).  Every discrepancy is flagged as a
        ``counter-reconcile`` violation: these numbers are accumulated by
        the engine and derived from the event stream independently, so a
        mismatch means a counter (or an emit point) lies.
        """
        extra = getattr(result, "extra", None)

        def counter(name: str) -> Any:
            if extra is not None and name in extra:
                return extra[name]
            return getattr(result, name, None)

        if self.in_flight != 0:
            self._flag(
                "counter-reconcile",
                f"{self.in_flight} tasks still in flight at reconcile",
            )
        if self._open_generation is not None:
            self._flag(
                "counter-reconcile",
                f"generation {self._open_generation} never ended",
            )
        pairs = [
            ("total_tasks", self.counts["task_pops"]),
            ("items_retired", self.items_retired),
            ("empty_pops", self.counts["empty_pops"]),
            ("queue_pushes", self.counts["queue_pushes"]),
            ("queue_pops", self.counts["queue_pops"]),
            # the run reports *distinct* item totals; QueuePush/QueuePop
            # events count banked steal surplus twice, so subtract the
            # banked totals derived from the QueueSteal stream
            ("queue_items_pushed", self.queue_items_pushed - self.queue_items_banked),
            ("queue_items_popped", self.queue_items_popped - self.queue_items_banked),
            ("queue_items_banked", self.queue_items_banked),
            ("steals", self.counts["steals"]),
            ("kernel_launches", self.counts["kernel_launches"]),
            ("policy_switches", self.counts["policy_switches"]),
            ("remote_pushes", self.counts["remote_pushes"]),
            ("remote_items", self.remote_items),
            ("remote_steals", self.counts["remote_steals"]),
        ]
        for name, observed in pairs:
            reported = counter(name)
            if reported is None:
                continue
            if int(reported) != int(observed):
                self._flag(
                    "counter-reconcile",
                    f"{name}: run reports {reported}, event stream shows {observed}",
                )
        if self.counts["task_pops"] != self.counts["task_completes"]:
            self._flag(
                "counter-reconcile",
                f"{self.counts['task_pops']} pops vs "
                f"{self.counts['task_completes']} completions",
            )
        slots = counter("worker_slots")
        if slots is not None and self.max_in_flight > int(slots):
            self._flag(
                "counter-reconcile",
                f"peak {self.max_in_flight} tasks in flight exceeds "
                f"worker_slots={slots}",
            )
        self._reconcile_devices(counter)

    def _reconcile_devices(self, counter: Any) -> None:
        """Per-device and global conservation over device-tagged queues.

        Every push/pop event on a ``{name}@dev{i}`` queue was attributed
        to device ``i``; once the run drains, each device's deques must
        balance on their own (``pushed_d == popped_d + depth_d``) and the
        device totals must sum to the global equation.  Remote transfers
        cannot hide items: an item in flight was popped from the victim
        (steal) or never entered a deque (push), and lands as a tracked
        push on arrival.
        """
        if not self._dev_queues:
            return
        total_pushed = total_popped = total_depth = 0
        for dev in sorted(self._dev_queues):
            pushed = self._dev_pushed.get(dev, 0)
            popped = self._dev_popped.get(dev, 0)
            depth = sum(self._depth.get(q, 0) for q in self._dev_queues[dev])
            if pushed != popped + depth:
                self._flag(
                    "device-conservation",
                    f"device {dev} leaks items: pushed {pushed} != "
                    f"popped {popped} + live {depth}",
                )
            total_pushed += pushed
            total_popped += popped
            total_depth += depth
        if total_pushed != total_popped + total_depth:
            self._flag(
                "device-conservation",
                f"global device sum leaks items: pushed {total_pushed} != "
                f"popped {total_popped} + live {total_depth}",
            )
        devices = counter("devices")
        if devices is not None and len(self._dev_queues) > int(devices):
            self._flag(
                "device-conservation",
                f"events name {len(self._dev_queues)} devices but the run "
                f"reports devices={devices}",
            )


# ---------------------------------------------------------------------------
# Stats-side conservation (covers drains, which emit no event)
# ---------------------------------------------------------------------------

def verify_queue_conservation(worklist: Any) -> None:
    """Assert the item-conservation equation on a queue or worklist.

    For every physical :class:`~repro.queueing.mpmc.MpmcQueue` ``q``::

        q.stats.items_pushed == q.stats.items_popped
                                + q.stats.items_drained + q.size

    (see the ``MpmcQueue`` docstring).  Accepts a bare queue, a
    :class:`~repro.queueing.broker.QueueBroker` (``.queues``) or a
    :class:`~repro.queueing.stealing.StealingWorklist` (``.deques``).
    Raises :class:`InvariantViolation` on the first imbalance.
    """
    physical = getattr(worklist, "queues", None) or getattr(worklist, "deques", None)
    if physical is None:
        physical = [worklist]
    for q in physical:
        s = q.stats
        balance = s.items_popped + s.items_drained + q.size
        if s.items_pushed != balance:
            raise InvariantViolation(
                f"queue {q.name!r} leaks items: pushed {s.items_pushed} != "
                f"popped {s.items_popped} + drained {s.items_drained} "
                f"+ live {q.size}"
            )
    # worklist-level distinct-item equation: banked steal surplus appears in
    # the raw per-queue totals twice (once at the victim's pop, once at the
    # thief's banking push), so the aggregated stats() record must balance
    # after removing the double count from both sides
    stats_fn = getattr(worklist, "stats", None)
    if callable(stats_fn):
        st = stats_fn()
        banked = st.banked_items
        if not 0 <= banked <= min(st.items_pushed, st.items_popped):
            raise InvariantViolation(
                f"worklist banked {banked} items but only pushed "
                f"{st.items_pushed} / popped {st.items_popped}"
            )
        drained = sum(q.stats.items_drained for q in physical)
        distinct_pushed = st.items_pushed - banked
        distinct_popped = st.items_popped - banked
        if distinct_pushed != distinct_popped + drained + worklist.size:
            raise InvariantViolation(
                f"worklist leaks distinct items: pushed {distinct_pushed} != "
                f"popped {distinct_popped} + drained {drained} "
                f"+ live {worklist.size} (banked {banked})"
            )
