"""Answer oracles: independent reference solutions per application.

Every oracle takes ``(graph, output, **params)`` — ``output`` being the
artifact array an :class:`~repro.apps.common.AppResult` carries (depth,
distance, label, color, status, core or rank vector) — and returns a
:class:`ValidationReport` listing named pass/fail checks.  Oracles never
consult the scheduler: references are recomputed with sequential NumPy
algorithms (BFS level sweep, binary-heap Dijkstra, DFS labelling, greedy
peeling, power iteration), so a passing report means the *answer* is
right, independent of how the simulated schedule interleaved the work.

Two kinds of check appear in a report:

* **reference equality** — for schedule-invariant fixpoints (BFS depths,
  SSSP distances, CC min-labels, lexicographic MIS, core numbers) the
  output must equal the sequential reference exactly (to float tolerance
  for distances);
* **validity predicates** — properties checkable without a reference
  (edge relaxation, proper coloring, independence *and* maximality,
  coreness witnesses, the PageRank residual bound).  These catch bugs the
  equality checks would also catch, but localise the failure ("edge
  (3, 7) is monochromatic") and, for coloring/PageRank — whose outputs
  legitimately vary with ε or speculation order — they *are* the
  definition of correct.

Entry point: :func:`validate` dispatches on the registered app name; the
``ORACLES`` registry is extensible via :func:`register_oracle` the same
way apps register adapters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.graph.csr import Csr

__all__ = [
    "CheckResult",
    "OracleError",
    "ValidationReport",
    "ORACLES",
    "register_oracle",
    "oracle_names",
    "validate",
]


class OracleError(AssertionError):
    """An application's output failed oracle validation."""


@dataclass(frozen=True)
class CheckResult:
    """One named predicate's outcome."""

    name: str
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "ok" if self.ok else "FAIL"
        return f"[{mark}] {self.name}" + (f": {self.detail}" if self.detail else "")


@dataclass
class ValidationReport:
    """Everything one oracle checked about one run's output."""

    app: str
    checks: list[CheckResult] = field(default_factory=list)

    def add(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append(CheckResult(name=name, ok=bool(ok), detail=detail))

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> list[CheckResult]:
        return [c for c in self.checks if not c.ok]

    def assert_valid(self) -> None:
        """Raise :class:`OracleError` listing every failed check."""
        if not self.ok:
            lines = "; ".join(str(c) for c in self.failures)
            raise OracleError(f"{self.app} failed oracle validation: {lines}")

    def __str__(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        body = ", ".join(str(c) for c in self.checks)
        return f"{self.app}: {status} ({body})"


#: app name -> oracle ``(graph, output, **params) -> ValidationReport``
ORACLES: dict[str, Callable[..., ValidationReport]] = {}


def register_oracle(name: str) -> Callable:
    """Decorator: register an oracle for app ``name``."""

    def deco(fn: Callable[..., ValidationReport]) -> Callable[..., ValidationReport]:
        ORACLES[name] = fn
        return fn

    return deco


def oracle_names() -> list[str]:
    """Sorted names of every app with a registered oracle."""
    return sorted(ORACLES)


def validate(app: str, graph: Csr, result: Any, **params) -> ValidationReport:
    """Validate ``result`` (an AppResult or a raw output array) for ``app``.

    ``params`` are the same keyword arguments the run was given (``source``,
    ``weights``, ``epsilon``…); each oracle consumes the ones that define
    its reference answer and ignores the rest (e.g. PageRank's
    ``check_size``, which shapes the schedule but not the fixpoint).
    """
    try:
        oracle = ORACLES[app]
    except KeyError:
        raise KeyError(f"no oracle registered for app {app!r}; known: {oracle_names()}") from None
    output = getattr(result, "output", result)
    return oracle(graph, np.asarray(output), **params)


# ---------------------------------------------------------------------------
# BFS
# ---------------------------------------------------------------------------

@register_oracle("bfs")
def oracle_bfs(graph: Csr, depth: np.ndarray, *, source: int = 0, **_: Any) -> ValidationReport:
    """Depths must equal the exact BFS distances and relax every edge."""
    from repro.apps.bfs import UNREACHED, reference_depths

    rep = ValidationReport(app="bfs")
    ref = reference_depths(graph, source)
    rep.add(
        "matches-reference",
        np.array_equal(depth, ref),
        f"{int((depth != ref).sum())}/{depth.size} vertices deviate",
    )
    rep.add("source-depth-zero", depth.size > source and depth[source] == 0)
    # independent predicate: along every edge (u, v) with u reached,
    # depth[v] <= depth[u] + 1 (no edge left relaxed), and no vertex other
    # than the source claims depth 0
    edges = graph.edge_array()
    reached = depth[edges[:, 0]] != UNREACHED
    relaxed = depth[edges[:, 1]][reached] <= depth[edges[:, 0]][reached] + 1
    rep.add("edges-relaxed", bool(relaxed.all()), f"{int((~relaxed).sum())} unrelaxed edges")
    zero_claims = np.flatnonzero(depth == 0)
    rep.add("unique-root", zero_claims.size == 1 and zero_claims[0] == source)
    return rep


# ---------------------------------------------------------------------------
# SSSP (speculative and delta-stepping share one oracle)
# ---------------------------------------------------------------------------

def _oracle_sssp(
    app: str,
    graph: Csr,
    dist: np.ndarray,
    *,
    weights: np.ndarray | None = None,
    source: int = 0,
    **_: Any,
) -> ValidationReport:
    from repro.apps.sssp import reference_distances, uniform_weights

    if weights is None:
        weights = uniform_weights(graph)
    weights = np.asarray(weights, dtype=np.float64)
    rep = ValidationReport(app=app)
    ref = reference_distances(graph, weights, source)
    both_inf = np.isinf(ref) & np.isinf(dist)
    close = np.isclose(ref, dist, rtol=1e-9, atol=1e-9)
    bad = ~(both_inf | close)
    rep.add("matches-dijkstra", not bad.any(), f"{int(bad.sum())}/{dist.size} vertices deviate")
    rep.add("source-zero", dist.size > source and dist[source] == 0.0)
    # triangle inequality on every edge from a reached vertex: the
    # distance labelling must be a fixpoint of relaxation
    src_idx = np.repeat(np.arange(graph.num_vertices), np.diff(graph.indptr))
    finite = np.isfinite(dist[src_idx])
    slack = dist[graph.indices[finite]] - (dist[src_idx[finite]] + weights[finite])
    rep.add(
        "edges-relaxed",
        bool((slack <= 1e-9).all()) if slack.size else True,
        f"{int((slack > 1e-9).sum())} relaxable edges remain" if slack.size else "",
    )
    return rep


@register_oracle("sssp")
def oracle_sssp(graph: Csr, dist: np.ndarray, **params: Any) -> ValidationReport:
    """Distances must match Dijkstra and admit no further relaxation."""
    return _oracle_sssp("sssp", graph, dist, **params)


@register_oracle("delta-sssp")
def oracle_delta_sssp(graph: Csr, dist: np.ndarray, **params: Any) -> ValidationReport:
    """Delta-stepping answers the same question as SSSP; ``delta`` only
    shapes the schedule, so the distance oracle is shared (extra bucket
    parameters are ignored)."""
    params.pop("delta", None)
    params.pop("max_rounds", None)
    return _oracle_sssp("delta-sssp", graph, dist, **params)


# ---------------------------------------------------------------------------
# Connected components
# ---------------------------------------------------------------------------

@register_oracle("cc")
def oracle_cc(graph: Csr, labels: np.ndarray, **_: Any) -> ValidationReport:
    """Labels must be the min-id component labelling and edge-consistent."""
    from repro.apps.cc import reference_components

    rep = ValidationReport(app="cc")
    ref = reference_components(graph)
    rep.add(
        "matches-reference",
        np.array_equal(labels, ref),
        f"{int((labels != ref).sum())}/{labels.size} vertices deviate",
    )
    # independent predicate: both endpoints of every (symmetrized) edge
    # agree, and each label is the minimum vertex id of its class
    sym = graph if graph.is_symmetric() else graph.symmetrize()
    edges = sym.edge_array()
    agree = labels[edges[:, 0]] == labels[edges[:, 1]]
    rep.add("edge-agreement", bool(agree.all()), f"{int((~agree).sum())} split edges")
    members_ok = True
    for root in np.unique(labels):
        members = np.flatnonzero(labels == root)
        if members.size == 0 or members.min() != root:
            members_ok = False
            break
    rep.add("labels-are-min-ids", members_ok)
    return rep


# ---------------------------------------------------------------------------
# Graph coloring
# ---------------------------------------------------------------------------

@register_oracle("coloring")
def oracle_coloring(graph: Csr, colors: np.ndarray, **_: Any) -> ValidationReport:
    """Every vertex colored, no monochromatic edge, palette not absurd.

    Speculative coloring's palette depends on the schedule, so there is no
    reference array to compare against — properness *is* correctness.  The
    palette bound ``max_color <= max_degree`` (greedy never exceeds it)
    guards against wild overshoot without pinning a specific coloring.
    """
    from repro.apps.coloring import count_conflicts

    rep = ValidationReport(app="coloring")
    rep.add(
        "all-colored",
        bool((colors >= 0).all()),
        f"{int((colors < 0).sum())} uncolored vertices",
    )
    conflicts = count_conflicts(graph, colors)
    rep.add("conflict-free", conflicts == 0, f"{conflicts} monochromatic edges")
    degrees = np.diff(graph.indptr)
    max_deg = int(degrees.max()) if degrees.size else 0
    rep.add(
        "palette-bounded",
        int(colors.max(initial=0)) <= max_deg,
        f"max color {int(colors.max(initial=0))} > max degree {max_deg}",
    )
    return rep


# ---------------------------------------------------------------------------
# Maximal independent set
# ---------------------------------------------------------------------------

@register_oracle("mis")
def oracle_mis(graph: Csr, status: np.ndarray, **_: Any) -> ValidationReport:
    """Independent, maximal, and equal to the lexicographic fixed point."""
    from repro.apps.mis import IN, OUT, reference_mis

    rep = ValidationReport(app="mis")
    edges = graph.edge_array()
    mono = (status[edges[:, 0]] == IN) & (status[edges[:, 1]] == IN)
    rep.add("independent", not mono.any(), f"{int(mono.sum())} edges inside the set")
    not_maximal = 0
    for v in range(graph.num_vertices):
        if status[v] == OUT and not (status[graph.neighbors(v)] == IN).any():
            not_maximal += 1
    rep.add("maximal", not_maximal == 0, f"{not_maximal} addable vertices")
    ref = reference_mis(graph)
    rep.add(
        "lexicographically-first",
        np.array_equal(status, ref),
        f"{int((status != ref).sum())}/{status.size} vertices deviate",
    )
    return rep


# ---------------------------------------------------------------------------
# k-core decomposition
# ---------------------------------------------------------------------------

@register_oracle("kcore")
def oracle_kcore(graph: Csr, core: np.ndarray, **_: Any) -> ValidationReport:
    """Core numbers must equal the peeling reference, with local witnesses.

    The witness predicate: every vertex ``v`` must have at least
    ``core[v]`` neighbors of core number ``>= core[v]`` (membership in its
    own k-core), and ``core[v] <= degree(v)``.
    """
    from repro.apps.kcore import reference_core_numbers

    rep = ValidationReport(app="kcore")
    ref = reference_core_numbers(graph)
    rep.add(
        "matches-reference",
        np.array_equal(core, ref),
        f"{int((core != ref).sum())}/{core.size} vertices deviate",
    )
    degrees = np.diff(graph.indptr)
    rep.add("bounded-by-degree", bool((core <= degrees).all()))
    witness_fail = 0
    for v in range(graph.num_vertices):
        k = int(core[v])
        if k and int((core[graph.neighbors(v)] >= k).sum()) < k:
            witness_fail += 1
    rep.add("core-witnesses", witness_fail == 0, f"{witness_fail} vertices lack witnesses")
    return rep


# ---------------------------------------------------------------------------
# PageRank
# ---------------------------------------------------------------------------

@register_oracle("pagerank")
def oracle_pagerank(
    graph: Csr,
    rank: np.ndarray,
    *,
    lam: float | None = None,
    epsilon: float | None = None,
    **_: Any,
) -> ValidationReport:
    """Residual-bound convergence of the push-PageRank fixpoint.

    Push PageRank maintains ``residue = (1-λ)·1 + λ·AᵀD⁻¹·rank − rank``
    exactly; at quiescence every residue is in ``[0, ε]``.  The oracle
    recomputes that residual from the rank vector alone (it never trusts
    the kernel's own residue array) and additionally bounds the distance
    to the power-iteration fixpoint: each unresolved residue contributes at
    most ``ε/(1-λ)`` of rank mass, so ``|rank − p*|∞ ≤ n·ε/(1-λ)``.
    """
    from repro.apps.pagerank import DEFAULT_EPSILON, DEFAULT_LAMBDA, reference_ranks

    lam = DEFAULT_LAMBDA if lam is None else float(lam)
    epsilon = DEFAULT_EPSILON if epsilon is None else float(epsilon)
    rep = ValidationReport(app="pagerank")
    n = graph.num_vertices
    out_deg = np.maximum(graph.out_degrees().astype(np.float64), 1.0)
    edges = graph.edge_array()
    contrib = np.zeros(n, dtype=np.float64)
    np.add.at(contrib, edges[:, 1], lam * rank[edges[:, 0]] / out_deg[edges[:, 0]])
    residual = (1.0 - lam) + contrib - rank
    tol = 1e-8
    rep.add(
        "residual-nonnegative",
        bool((residual >= -tol).all()),
        f"min residual {residual.min():.3e} (rank overshoot)",
    )
    rep.add(
        "residual-converged",
        bool((residual <= epsilon + tol).all()),
        f"max residual {residual.max():.3e} > epsilon {epsilon:.1e}",
    )
    bound = n * epsilon / (1.0 - lam) + tol
    err = float(np.abs(rank - reference_ranks(graph, lam=lam)).max())
    rep.add(
        "close-to-fixpoint",
        err <= bound,
        f"max error {err:.3e} > bound {bound:.3e}",
    )
    return rep


# ---------------------------------------------------------------------------
# Incremental (dynamic-graph) variants — the differential oracle
# ---------------------------------------------------------------------------
#
# The dynamic replay harness (repro.apps.dynamic.replay_app) validates the
# incremental kernels' state after *every* epoch against the materialized
# CSR snapshot of that epoch.  BFS and CC converge to schedule-invariant
# fixpoints, so "incremental == from-scratch recompute" is literally the
# static oracle's exact reference-equality check evaluated on the mutated
# graph — the oracles delegate.  Incremental PageRank needs its own
# residual predicate: a rebase injects *signed* residues (a deleted edge
# withdraws rank mass), so at quiescence the recomputed residual lies in
# [-ε, ε] rather than [0, ε]; everything else (the residual recomputation
# from the rank vector alone, the fixpoint-distance bound) is identical.

@register_oracle("bfs-inc")
def oracle_bfs_inc(
    graph: Csr, depth: np.ndarray, *, source: int = 0, **_: Any
) -> ValidationReport:
    """Incremental BFS must exactly equal from-scratch BFS on the snapshot."""
    rep = oracle_bfs(graph, depth, source=source)
    rep.app = "bfs-inc"
    return rep


@register_oracle("cc-inc")
def oracle_cc_inc(graph: Csr, labels: np.ndarray, **_: Any) -> ValidationReport:
    """Incremental CC must exactly equal from-scratch labels on the snapshot."""
    rep = oracle_cc(graph, labels)
    rep.app = "cc-inc"
    return rep


@register_oracle("pagerank-inc")
def oracle_pagerank_inc(
    graph: Csr,
    rank: np.ndarray,
    *,
    lam: float | None = None,
    epsilon: float | None = None,
    **_: Any,
) -> ValidationReport:
    """Signed-residual convergence for incremental PageRank.

    Same recomputed residual as :func:`oracle_pagerank`, but two-sided:
    a rebase that deletes edges *withdraws* previously-pushed rank mass
    as negative residue, so converged means ``|residual| <= ε``, and the
    fixpoint-distance bound uses the same ``n·ε/(1-λ)`` envelope.
    """
    from repro.apps.pagerank import DEFAULT_EPSILON, DEFAULT_LAMBDA, reference_ranks

    lam = DEFAULT_LAMBDA if lam is None else float(lam)
    epsilon = DEFAULT_EPSILON if epsilon is None else float(epsilon)
    rep = ValidationReport(app="pagerank-inc")
    n = graph.num_vertices
    out_deg = np.maximum(graph.out_degrees().astype(np.float64), 1.0)
    edges = graph.edge_array()
    contrib = np.zeros(n, dtype=np.float64)
    np.add.at(contrib, edges[:, 1], lam * rank[edges[:, 0]] / out_deg[edges[:, 0]])
    residual = (1.0 - lam) + contrib - rank
    tol = 1e-8
    worst = float(np.abs(residual).max()) if residual.size else 0.0
    rep.add(
        "residual-converged",
        worst <= epsilon + tol,
        f"max |residual| {worst:.3e} > epsilon {epsilon:.1e}",
    )
    bound = n * epsilon / (1.0 - lam) + tol
    err = float(np.abs(rank - reference_ranks(graph, lam=lam)).max())
    rep.add(
        "close-to-fixpoint",
        err <= bound,
        f"max error {err:.3e} > bound {bound:.3e}",
    )
    return rep
