"""Schedule-perturbation fuzzing: same answers under every legal schedule.

The paper's correctness argument (Section 6) is *schedule-independence*:
relaxed pops and stale reads change how much work is done, never what is
computed.  The simulator makes that claim testable — every pop-issue
instant flows through :meth:`repro.core.engine.ExecutionEngine.pop_stagger`,
which accepts a ``perturb(worker, seq) -> extra_ns`` hook.  A perturbation
delays pops by a bounded, deterministic, per-seed pseudo-random amount:
exactly the freedom real hardware warp schedulers have, and nothing more
(delays are non-negative; nothing is reordered beyond what timing allows).

:func:`fuzz_app` re-runs one (app, graph, config) cell under ``seeds``
different perturbations, each with a live
:class:`~repro.check.invariants.InvariantMonitor` attached, then validates
the output against the app's answer oracle
(:func:`repro.check.oracles.validate`).  Any seed that breaks an engine
invariant or produces a wrong answer is a real scheduler/application bug,
not noise — the perturbations stay within the model's legal envelope.

Only engine-level policies (persistent / discrete / hybrid) can be
fuzzed: BSP runs at application level and never issues pops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.apps.common import AppResult, get_adapter, run_app
from repro.check.invariants import InvariantMonitor, InvariantViolation, Violation
from repro.check.oracles import ValidationReport, validate
from repro.core.config import AtosConfig
from repro.core.engine import _worker_slots
from repro.core.policy import policy_for
from repro.graph.csr import Csr
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = ["perturbation", "FuzzRun", "FuzzReport", "fuzz_app", "fuzz_dynamic"]

#: default pop-delay amplitude: comparable to the persistent-mode jitter
#: (150 ns) — large enough to reorder racing pops, small enough to stay a
#: scheduling perturbation rather than a different machine
DEFAULT_AMPLITUDE_NS = 200.0

_MASK64 = (1 << 64) - 1


def perturbation(seed: int, amplitude_ns: float = DEFAULT_AMPLITUDE_NS) -> Callable[[int, int], float]:
    """A deterministic pop-delay function for one fuzz seed.

    Returns ``perturb(worker, seq) -> delay_ns`` in ``[0, amplitude_ns)``,
    computed by an splitmix-style integer mix of ``(worker, seq, seed)`` —
    stateless, so replaying a seed reproduces the schedule bit-for-bit.
    """
    if amplitude_ns < 0:
        raise ValueError("amplitude_ns must be non-negative")

    def perturb(worker: int, seq: int) -> float:
        x = (
            worker * 0x9E3779B97F4A7C15
            + seq * 0xBF58476D1CE4E5B9
            + (seed + 1) * 0x94D049BB133111EB
        ) & _MASK64
        x ^= x >> 30
        x = (x * 0xBF58476D1CE4E5B9) & _MASK64
        x ^= x >> 27
        return ((x >> 40) / float(1 << 24)) * amplitude_ns

    return perturb


@dataclass
class FuzzRun:
    """Outcome of one perturbed execution."""

    seed: int
    elapsed_ns: float
    total_tasks: int
    violations: list[Violation]
    oracle: ValidationReport
    result: AppResult | None = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        return not self.violations and self.oracle.ok


@dataclass
class FuzzReport:
    """All runs of one fuzzed (app, graph, config) cell."""

    app: str
    dataset: str
    config: str
    amplitude_ns: float
    runs: list[FuzzRun] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.runs)

    @property
    def failed_seeds(self) -> list[int]:
        return [r.seed for r in self.runs if not r.ok]

    def assert_clean(self) -> None:
        """Raise :class:`InvariantViolation` naming every failing seed."""
        if self.ok:
            return
        details = []
        for r in self.runs:
            if r.ok:
                continue
            parts = [str(v) for v in r.violations[:3]]
            parts += [str(c) for c in r.oracle.failures[:3]]
            details.append(f"seed {r.seed}: " + "; ".join(parts))
        raise InvariantViolation(
            f"fuzz {self.app}/{self.dataset}/{self.config} failed on "
            f"seeds {self.failed_seeds}: " + " | ".join(details)
        )

    def summary(self) -> str:
        """One line per seed plus a verdict (the CLI's output)."""
        lines = []
        for r in self.runs:
            status = "ok" if r.ok else "FAIL"
            extra = ""
            if r.violations:
                extra = f" invariants: {len(r.violations)} violation(s)"
            if not r.oracle.ok:
                extra += f" oracle: {'; '.join(str(c) for c in r.oracle.failures)}"
            lines.append(
                f"  seed {r.seed:>3d}  {status:4s} "
                f"tasks={r.total_tasks:<8d} elapsed={r.elapsed_ns / 1e6:.3f} ms{extra}"
            )
        verdict = "PASS" if self.ok else f"FAIL ({len(self.failed_seeds)} bad seeds)"
        head = (
            f"fuzz {self.app} on {self.dataset} [{self.config}] "
            f"amplitude={self.amplitude_ns:.0f} ns x {len(self.runs)} seeds: {verdict}"
        )
        return "\n".join([head, *lines])


def fuzz_app(
    app: str,
    graph: Csr,
    config: AtosConfig,
    *,
    seeds: int | Iterable[int] = 10,
    amplitude_ns: float = DEFAULT_AMPLITUDE_NS,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    validator: Callable[..., ValidationReport] | None = None,
    **params: Any,
) -> FuzzReport:
    """Fuzz one (app, graph, config) cell across perturbation seeds.

    Each seed runs the app with a fresh :class:`InvariantMonitor` attached
    and a seeded :func:`perturbation` hook, reconciles counters against
    the event stream, and validates the output with the app's oracle
    (``validator`` overrides it, for negative tests).  ``seeds`` is a
    count (``10`` → seeds 0..9) or an explicit iterable.  Returns a
    :class:`FuzzReport`; it never raises on violations — call
    :meth:`FuzzReport.assert_clean` for the asserting form.
    """
    adapter = get_adapter(app)
    policy = policy_for(config)
    if policy.app_level:
        raise ValueError(
            f"config {config.name!r} runs at application level (no pops to perturb); "
            "fuzzing requires an engine-level policy"
        )
    if adapter.make_kernel is None:
        raise ValueError(f"app {app!r} is BSP-only and cannot be fuzzed")
    seed_list: Sequence[int] = list(range(seeds)) if isinstance(seeds, int) else list(seeds)
    tuned = adapter.tune_config(config) if adapter.tune_config is not None else config
    slots, _ = _worker_slots(spec, tuned)
    # the distributed policy runs one engine per device off a shared
    # worker-id space, so the slot-range invariant covers the whole cluster
    slots *= max(1, tuned.devices)
    check = validator if validator is not None else validate

    report = FuzzReport(
        app=app, dataset=graph.name, config=config.name, amplitude_ns=amplitude_ns
    )
    for seed in seed_list:
        monitor = InvariantMonitor(worker_slots=slots)
        result = run_app(
            app,
            graph,
            config,
            spec=spec,
            max_tasks=max_tasks,
            sink=monitor,
            perturb=perturbation(seed, amplitude_ns),
            **params,
        )
        monitor.reconcile(result)
        oracle_report = check(app, graph, result, **params)
        report.runs.append(
            FuzzRun(
                seed=seed,
                elapsed_ns=result.elapsed_ns,
                total_tasks=int(result.extra.get("total_tasks", result.items_retired)),
                violations=list(monitor.violations),
                oracle=oracle_report,
                result=result,
            )
        )
    return report


def fuzz_dynamic(
    app: str,
    graph: Csr,
    config: AtosConfig,
    edits: Any,
    *,
    seeds: int | Iterable[int] = 10,
    amplitude_ns: float = DEFAULT_AMPLITUDE_NS,
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    validator: Callable[..., ValidationReport] | None = None,
    **params: Any,
) -> FuzzReport:
    """Fuzz a dynamic app's whole edit replay across perturbation seeds.

    The multi-epoch counterpart of :func:`fuzz_app`: each seed replays the
    complete edit script (:func:`repro.apps.dynamic.replay_app`) under one
    seeded perturbation, with a *single* :class:`InvariantMonitor` riding
    the entire stream — so epoch boundaries (quiescence at every
    :class:`~repro.obs.events.EpochMark`) and replay-summed counter
    reconciliation are fuzzed alongside the per-epoch answers.  Every
    epoch's output is checked by the differential oracle against that
    epoch's materialized snapshot; one failing epoch fails the seed.

    ``edits`` is an :class:`~repro.graph.delta.EditScript` or spec string.
    Returns a :class:`FuzzReport` (one :class:`FuzzRun` per seed, whose
    ``oracle`` report concatenates the per-epoch checks under
    ``epochN:`` prefixes); never raises on violations — call
    :meth:`FuzzReport.assert_clean` for the asserting form.
    """
    from repro.apps.dynamic import replay_app, replay_totals
    from types import SimpleNamespace

    adapter = get_adapter(app)
    if not adapter.dynamic:
        raise ValueError(f"app {app!r} is not dynamic; use fuzz_app for static cells")
    policy = policy_for(config)
    if policy.app_level:
        raise ValueError(
            f"config {config.name!r} runs at application level (no pops to perturb); "
            "fuzzing requires an engine-level policy"
        )
    seed_list: Sequence[int] = list(range(seeds)) if isinstance(seeds, int) else list(seeds)
    tuned = adapter.tune_config(config) if adapter.tune_config is not None else config
    slots, _ = _worker_slots(spec, tuned)
    slots *= max(1, tuned.devices)
    check = validator if validator is not None else validate

    report = FuzzReport(
        app=app, dataset=graph.name, config=config.name, amplitude_ns=amplitude_ns
    )
    for seed in seed_list:
        monitor = InvariantMonitor(worker_slots=slots)
        dres = replay_app(
            app,
            graph,
            config,
            edits,
            spec=spec,
            max_tasks=max_tasks,
            sink=monitor,
            perturb=perturbation(seed, amplitude_ns),
            **params,
        )
        monitor.reconcile(SimpleNamespace(extra=replay_totals(dres.epochs)))
        oracle_report = ValidationReport(app=app)
        for epoch in dres.epochs:
            per_epoch = check(app, epoch.graph, epoch.result, **params)
            for c in per_epoch.checks:
                oracle_report.add(f"epoch{epoch.epoch}:{c.name}", c.ok, c.detail)
        report.runs.append(
            FuzzRun(
                seed=seed,
                elapsed_ns=dres.total_elapsed_ns,
                total_tasks=sum(
                    int(e.result.extra.get("total_tasks", e.result.items_retired))
                    for e in dres.epochs
                ),
                violations=list(monitor.violations),
                oracle=oracle_report,
                result=dres.final,
            )
        )
    return report
