"""Independent correctness machinery for the Atos reproduction.

Atos's central claim (Section 6) is that relaxed, asynchronously-scheduled
execution — stale reads between concurrently-resident workers,
priority-relaxed pops — still converges to *correct* results.  The golden
digests in ``tests/test_equivalence.py`` pin that nothing *changed*; this
package checks that what the schedulers compute is *right*, with three
independent layers:

* :mod:`repro.check.oracles` — pure-NumPy reference answers and validity
  predicates for every application, behind one entry point
  (:func:`validate`);
* :mod:`repro.check.invariants` — :class:`InvariantMonitor`, an
  :class:`~repro.obs.events.EventSink` that asserts discrete-event-model
  invariants (queue item conservation, per-worker clock monotonicity,
  slot occupancy bounds, policy-switch consistency) over a live run;
* :mod:`repro.check.fuzz` — a schedule-perturbation fuzzer that re-runs an
  app × config cell under N seeded pop-timing perturbations and asserts
  the oracles and invariants hold under every legal interleaving.

CLI: ``python -m repro check <app> <dataset>``.  See
``docs/verification.md`` for the oracle definitions and fuzzer usage.
"""

from repro.check.fuzz import FuzzReport, FuzzRun, fuzz_app, perturbation
from repro.check.invariants import (
    InvariantMonitor,
    InvariantViolation,
    Violation,
    verify_queue_conservation,
)
from repro.check.oracles import (
    CheckResult,
    OracleError,
    ValidationReport,
    oracle_names,
    register_oracle,
    validate,
)

__all__ = [
    "CheckResult",
    "OracleError",
    "ValidationReport",
    "oracle_names",
    "register_oracle",
    "validate",
    "InvariantMonitor",
    "InvariantViolation",
    "Violation",
    "verify_queue_conservation",
    "FuzzReport",
    "FuzzRun",
    "fuzz_app",
    "perturbation",
]
