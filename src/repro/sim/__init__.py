"""Discrete-event GPU model.

This subpackage stands in for the NVIDIA V100 the paper runs on.  It models
the machine at the granularity the paper's analysis operates at:

* **worker slots** — how many warps/CTAs are simultaneously resident, from
  the occupancy calculator (registers, shared memory, thread slots);
* **fixed costs** — kernel launch, device-wide barrier, queue-counter
  atomics;
* **memory bandwidth** — a shared fluid server; when many workers are in
  flight their tasks serialize on it, which is what makes aggregate
  throughput bandwidth-bound under load and latency-bound on small
  frontiers;
* **time** — simulated nanoseconds, deterministic for a fixed seed.

It deliberately does *not* model ALU pipelines, caches, or individual lanes;
none of the paper's results depend on those.
"""

from repro.sim.calibration import CalibrationReport, calibrate
from repro.sim.engine import EventLoop
from repro.sim.memory import BandwidthServer
from repro.sim.occupancy import Occupancy, occupancy_for
from repro.sim.spec import FULL_V100_SPEC, V100_SPEC, GpuSpec
from repro.sim.trace import ThroughputTrace

__all__ = [
    "GpuSpec",
    "V100_SPEC",
    "FULL_V100_SPEC",
    "Occupancy",
    "occupancy_for",
    "BandwidthServer",
    "EventLoop",
    "ThroughputTrace",
    "CalibrationReport",
    "calibrate",
]
