"""GPU machine description and cost constants.

All times are **simulated nanoseconds**.  The default :data:`V100_SPEC`
approximates the paper's NVIDIA V100 (80 SMs, 64 warp slots/SM, 64K
registers/SM, 96 KB shared memory/SM).

Calibration
-----------
The constants were chosen so the *relative* magnitudes match published
V100 behaviour; DESIGN.md §4 and EXPERIMENTS.md record the resulting
paper-vs-measured shapes.  The key anchors:

* ``mem_edges_per_ns`` — aggregate graph-traversal throughput when the
  machine is saturated.  Gunrock-class BFS moves ~3-4.5 edges/ns on a V100
  (68M edges in ~15-20 ms); we use 3.0.
* ``kernel_launch_ns`` / ``barrier_ns`` — a CUDA kernel launch costs ~5 us
  end-to-end and a device synchronization ~2 us.  These are physical
  constants that do NOT shrink with graph size — which is exactly why the
  paper's small-frontier problem exists: on high-diameter graphs the BSP
  fixed costs dominate regardless of how much work each kernel carries.
* ``warp_step_ns`` — one SIMD memory round for a warp-sized worker.  With
  thousands of resident warps the *observed* per-task time is dominated by
  the bandwidth server, so this latency term matters exactly where it does
  on hardware: on shallow queues and critical-path tails.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "GpuSpec",
    "V100_SPEC",
    "FULL_V100_SPEC",
    "InterconnectSpec",
    "NVLINK",
    "PCIE",
    "INTERCONNECTS",
    "ClusterSpec",
    "CLUSTERS",
    "cluster_for",
]


@dataclass(frozen=True)
class GpuSpec:
    """Machine model parameters (see module docstring for calibration)."""

    name: str = "V100-model-scaled"

    # --- physical shape ------------------------------------------------
    # The default machine is a V100 *scaled down 10x* (8 SMs instead of
    # 80, and bandwidth scaled to match).  The reproduction's datasets are
    # ~100x smaller than the paper's, and what the paper's effects depend
    # on is the *ratio* of resident workers to frontier/graph size — a
    # full-size V100 against a 16k-vertex graph would hold the entire
    # graph in flight at once, which no real configuration ever does.
    # ``FULL_V100_SPEC`` provides the unscaled machine for ablations.
    num_sms: int = 8
    threads_per_warp: int = 32
    max_warps_per_sm: int = 64
    max_threads_per_sm: int = 2048
    max_ctas_per_sm: int = 32
    registers_per_sm: int = 65536
    shared_mem_per_sm: int = 96 * 1024

    # --- fixed costs (ns) ----------------------------------------------
    kernel_launch_ns: float = 5000.0
    barrier_ns: float = 2000.0
    # serialized cost of one pop/push on a queue's atomic counter
    atomic_queue_ns: float = 4.0
    # fixed per-task cost (pop bookkeeping, state reads)
    task_fixed_ns: float = 60.0
    # extra fixed cost of a CTA-worker task (CTA-wide sync + LBS setup)
    cta_task_fixed_ns: float = 250.0
    # minimum busy time of any discrete/BSP kernel (dependent-load depth)
    kernel_floor_ns: float = 800.0

    # --- latency terms (ns) ---------------------------------------------
    # one 32-wide SIMD memory round of a warp worker
    warp_step_ns: float = 280.0
    # one serial edge for a thread-sized worker
    thread_edge_ns: float = 60.0
    # one T-wide round of a CTA worker (pipelined better than a lone warp)
    cta_step_ns: float = 120.0

    # --- bandwidth model --------------------------------------------------
    # aggregate edge throughput when saturated (edges per ns)
    mem_edges_per_ns: float = 0.35
    # memory transactions round up to this many lanes for a warp worker
    # without internal load balancing (wasted lanes on low-degree vertices)
    warp_lane_granularity: int = 8
    # bandwidth overhead multiplier of the in-worker load-balancing search
    lbs_bandwidth_overhead: float = 0.10

    # --- BSP engine -------------------------------------------------------
    # Vertices per simultaneous wave inside a BSP kernel: items within one
    # wave read a shared snapshot; waves observe earlier waves' writes.
    # This is the launch-wave analogue of the discrete strategy's
    # read-at-pop semantics, bounded by how many items truly overlap in
    # the memory system rather than by resident-thread count.
    bsp_wave_items: int = 256
    # data-parallel LB setup per BSP kernel (prefix-sum over the frontier)
    lb_setup_ns: float = 400.0
    lb_per_item_ns: float = 0.05
    # residual imbalance of the bucketed TWC strategy (fraction of work)
    twc_imbalance: float = 0.15

    # relative spread of per-task latency (cache misses, scheduling noise).
    # A task's latency term is scaled by a deterministic pseudo-random
    # factor in [1, 1 + duration_jitter]; the resulting out-of-order
    # completions are what let asynchronous BFS race across levels (the
    # overwork source on mesh graphs, Table 4).
    duration_jitter: float = 2.0

    # --- read/write staleness ---------------------------------------------
    # How long before a task's completion its reads of shared state are
    # actually serviced (the outstanding-load window).  In a persistent
    # kernel, pops are serialized on the memory server, so two tasks only
    # observe each other's *stale* state when their service slots fall
    # within this window; in a discrete kernel a whole launch wave reads at
    # its start.  This asymmetry is the model behind the Section 6.3
    # persistent-vs-discrete coloring-conflict result.
    read_lead_ns: float = 25.0
    # Same quantity for tasks inside a discrete kernel launch: a launch
    # wave issues its reads up front (no pop loop pacing them), so a task
    # sees no writes from anything concurrently resident — the stale
    # window is the whole in-flight worker population.  Infinity means
    # "read at pop".
    discrete_read_lead_ns: float = float("inf")

    # --- scheduling -------------------------------------------------------
    # deterministic pseudo-random stagger applied to persistent-kernel pops
    # (hardware warp schedulers do not drain the queue in strict id order)
    persistent_jitter_ns: float = 150.0
    # how long an empty-popping persistent worker waits before re-polling
    poll_retry_ns: float = 200.0

    # ------------------------------------------------------------------
    @property
    def total_warp_slots(self) -> int:
        """Upper bound on simultaneously resident warps."""
        return self.num_sms * self.max_warps_per_sm

    @property
    def total_thread_slots(self) -> int:
        """Upper bound on simultaneously resident threads."""
        return self.num_sms * self.max_threads_per_sm

    def scaled(self, **overrides: float) -> "GpuSpec":
        """A copy with some fields overridden (for ablation benches)."""
        return replace(self, **overrides)


#: Default machine model used throughout the reproduction (scaled V100).
V100_SPEC = GpuSpec()

#: The unscaled 80-SM V100 shape, for machine-scaling ablations.
FULL_V100_SPEC = GpuSpec(name="V100-model-full", num_sms=80, mem_edges_per_ns=3.5)


# ---------------------------------------------------------------------------
# Multi-device cluster description
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class InterconnectSpec:
    """Cost model of one device-to-device link.

    A transfer of ``n`` work items over a link costs ``latency_ns`` once
    plus ``n / items_per_ns`` of serialized link occupancy; remote *data*
    accesses (a task executing items another device owns) reserve their
    edge traffic on the same link.  Calibration (see ``docs/MODEL.md``):
    the constants keep the NVLink/PCIe *ratios* to device HBM bandwidth —
    NVLink ≈ 1/3 of HBM throughput with a microsecond-class P2P latency,
    PCIe 3.0 ≈ 1/50 with several microseconds — scaled to the same
    edge-units-per-ns currency as :attr:`GpuSpec.mem_edges_per_ns`.
    """

    name: str = "nvlink"
    #: payload throughput of one directed link (work items / edges per ns)
    items_per_ns: float = 0.12
    #: fixed per-transfer latency (also the cost of one remote steal probe)
    latency_ns: float = 1300.0

    def transfer_ns(self, items: int) -> float:
        """Unloaded cost of moving ``items`` across one link."""
        return self.latency_ns + items / self.items_per_ns


#: NVLink 2.0-class link (V100 DGX topology), scaled like V100_SPEC
NVLINK = InterconnectSpec(name="nvlink", items_per_ns=0.12, latency_ns=1300.0)

#: PCIe 3.0 x16-class link: ~1/15 the NVLink bandwidth, ~4x the latency
PCIE = InterconnectSpec(name="pcie", items_per_ns=0.008, latency_ns=5000.0)

#: named interconnect presets (the ``AtosConfig.interconnect`` domain)
INTERCONNECTS: dict[str, InterconnectSpec] = {
    "nvlink": NVLINK,
    "pcie": PCIE,
}


@dataclass(frozen=True)
class ClusterSpec:
    """N GPU devices plus the interconnect connecting them.

    The devices tuple makes the cost/occupancy layers per-device: every
    device gets its own :class:`~repro.sim.memory.BandwidthServer`, cost
    closure and occupancy-derived worker slots, built from *its* entry
    here.  The interconnect is all-to-all with identical directed links
    (a DGX-style fully-connected topology); per-link serialization state
    lives in the runtime (:class:`repro.queueing.device.DeviceWorklist`),
    not in this frozen description.
    """

    devices: tuple[GpuSpec, ...] = field(default_factory=lambda: (V100_SPEC,))
    interconnect: InterconnectSpec = NVLINK
    name: str = "cluster"

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a cluster needs at least one device")

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def transfer_ns(self, items: int) -> float:
        """Unloaded cost of one inter-device transfer of ``items``."""
        return self.interconnect.transfer_ns(items)

    @classmethod
    def homogeneous(
        cls,
        num_devices: int,
        spec: GpuSpec = V100_SPEC,
        interconnect: InterconnectSpec = NVLINK,
        *,
        name: str = "",
    ) -> "ClusterSpec":
        """N identical devices behind one interconnect preset."""
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        return cls(
            devices=(spec,) * num_devices,
            interconnect=interconnect,
            name=name or f"{num_devices}x{spec.name}-{interconnect.name}",
        )


#: named cluster presets, shown by ``python -m repro run --list-configs``
CLUSTERS: dict[str, ClusterSpec] = {
    "2xV100-nvlink": ClusterSpec.homogeneous(2, V100_SPEC, NVLINK),
    "4xV100-nvlink": ClusterSpec.homogeneous(4, V100_SPEC, NVLINK),
    "4xV100-pcie": ClusterSpec.homogeneous(4, V100_SPEC, PCIE),
    "8xV100-nvlink": ClusterSpec.homogeneous(8, V100_SPEC, NVLINK),
}


def cluster_for(
    devices: int,
    interconnect: str = "nvlink",
    spec: GpuSpec = V100_SPEC,
) -> ClusterSpec:
    """Build the cluster a config's ``devices``/``interconnect`` fields name."""
    try:
        link = INTERCONNECTS[interconnect]
    except KeyError:
        raise KeyError(
            f"unknown interconnect {interconnect!r}; known: {sorted(INTERCONNECTS)}"
        ) from None
    return ClusterSpec.homogeneous(devices, spec, link)
