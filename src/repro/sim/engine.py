"""Deterministic discrete-event loop.

A thin, fast priority queue of ``(time, seq, payload)`` events.  ``seq`` is a
monotonically increasing tie-breaker so that events scheduled at the same
simulated time fire in scheduling order — this makes every simulation in the
repository bit-deterministic for a fixed seed, which the regression tests
rely on.

The Atos scheduler (:mod:`repro.core.scheduler`) drives this loop directly
rather than through callbacks: profiling showed a callback-per-event design
roughly doubles Python overhead in the hot loop, and the guide material for
this domain is emphatic about keeping hot loops lean.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator

__all__ = ["EventLoop"]


class EventLoop:
    """Min-heap of timestamped events with a stable tie-break."""

    __slots__ = ("_heap", "_seq", "now")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0
        #: time of the most recently popped event
        self.now = 0.0

    def schedule(self, time: float, payload: Any) -> None:
        """Add an event; ``time`` must not precede the current time."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        heapq.heappush(self._heap, (time, self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)``; advances now."""
        time, _, payload = heapq.heappop(self._heap)
        self.now = time
        return time, payload

    def peek_time(self) -> float:
        """Time of the earliest pending event (heap must be non-empty)."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[tuple[float, Any]]:
        """Iterate events in time order until the heap is empty."""
        while self._heap:
            yield self.pop()
