"""Model calibration probes.

Small measurement routines that report what the machine model actually
delivers — the numbers DESIGN.md's calibration section cites and the
regression tests pin down.  They exist so the model's anchor quantities
are *measured from the model* rather than asserted in prose: if a future
edit to the cost model shifts an anchor, a test fails here before a
benchmark silently changes shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cost import bsp_kernel_time, task_cost
from repro.sim.memory import BandwidthServer
from repro.sim.occupancy import occupancy_for
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = ["CalibrationReport", "calibrate"]


@dataclass(frozen=True)
class CalibrationReport:
    """Measured anchors of one machine model."""

    spec_name: str
    #: saturated BSP edge throughput (edges/ns) on a huge balanced kernel
    bsp_edge_rate: float
    #: per-iteration fixed cost of one BSP step (launch + floor + barrier)
    bsp_iteration_floor_ns: float
    #: resident warp workers for a typical persistent kernel (56 regs)
    warp_worker_slots: int
    #: resident CTA workers (256 threads, 56 regs)
    cta_worker_slots: int
    #: latency of one isolated warp task over a degree-16 vertex
    warp_task_latency_ns: float
    #: ratio of saturated-queue task time to isolated task time for the
    #: same work (how much the bandwidth server stretches a busy machine)
    saturation_stretch: float


def calibrate(spec: GpuSpec = V100_SPEC) -> CalibrationReport:
    """Measure the model's anchor quantities."""
    # saturated throughput: a kernel big enough to dwarf fixed costs
    edges = int(spec.mem_edges_per_ns * 1e8)
    busy = bsp_kernel_time(spec, frontier_size=1000, edge_count=edges, strategy="none")
    bsp_edge_rate = edges / busy

    floor = (
        spec.kernel_launch_ns
        + bsp_kernel_time(spec, frontier_size=1, edge_count=1)
        + spec.barrier_ns
    )

    warp_occ = occupancy_for(spec, threads_per_cta=256, registers_per_thread=56)
    cta_occ = occupancy_for(spec, threads_per_cta=256, registers_per_thread=56)

    mem = BandwidthServer(spec.mem_edges_per_ns)
    isolated = task_cost(
        spec, mem, start=0.0, worker_threads=32,
        num_items=1, edge_counts_sum=16, max_degree=16, use_internal_lb=False,
    )
    # saturate: every resident warp already holds an average task
    mem2 = BandwidthServer(spec.mem_edges_per_ns)
    for _ in range(warp_occ.total_warps):
        task_cost(
            spec, mem2, start=0.0, worker_threads=32,
            num_items=1, edge_counts_sum=16, max_degree=16, use_internal_lb=False,
        )
    saturated = task_cost(
        spec, mem2, start=0.0, worker_threads=32,
        num_items=1, edge_counts_sum=16, max_degree=16, use_internal_lb=False,
    )
    stretch = saturated.finish_time / max(isolated.finish_time, 1e-12)

    return CalibrationReport(
        spec_name=spec.name,
        bsp_edge_rate=bsp_edge_rate,
        bsp_iteration_floor_ns=floor,
        warp_worker_slots=warp_occ.total_warps,
        cta_worker_slots=cta_occ.total_ctas,
        warp_task_latency_ns=isolated.latency_ns,
        saturation_stretch=stretch,
    )
