"""Worker-task duration model.

A task's simulated duration is the larger of two terms:

* a **latency term** — how long the worker itself needs, assuming memory
  responds instantly to everyone else: fixed overhead plus one SIMD "step"
  per ``worker_width`` edges;
* a **bandwidth term** — when the reservation on the shared
  :class:`~repro.sim.memory.BandwidthServer` comes back, which dominates
  once the machine is saturated.

Lane-granularity matters: a warp worker with no internal load balancing
issues full-width memory transactions even for degree-3 vertices, wasting
lanes; a CTA worker running the load-balancing search packs edges densely
at the price of a prefix-sum setup and a ~10% traffic overhead.  This is the
cost-side encoding of the paper's Section 3.3 trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.memory import BandwidthServer
from repro.sim.spec import GpuSpec

__all__ = ["TaskCost", "task_cost", "make_cost_fn", "bsp_kernel_time"]


@dataclass(frozen=True)
class TaskCost:
    """Outcome of costing one worker-task."""

    finish_time: float
    latency_ns: float
    bandwidth_edges: float


def task_cost(
    spec: GpuSpec,
    mem: BandwidthServer,
    *,
    start: float,
    worker_threads: int,
    num_items: int,
    edge_counts_sum: int,
    max_degree: int,
    use_internal_lb: bool,
    latency_scale: float = 1.0,
) -> TaskCost:
    """Cost one task of ``num_items`` work items totalling ``edge_counts_sum`` edges.

    Parameters
    ----------
    worker_threads:
        1 (thread worker), 32 (warp worker) or a CTA width (multiple of 32).
    use_internal_lb:
        CTA workers run the load-balancing search across their fetched
        items; warp/thread workers process items one at a time.
    latency_scale:
        multiplier on the latency term (>= 1); the scheduler uses it to
        apply deterministic per-task duration jitter.
    """
    if worker_threads < 1:
        raise ValueError("worker_threads must be >= 1")
    if num_items < 0 or edge_counts_sum < 0:
        raise ValueError("work quantities must be non-negative")

    if num_items == 0:
        return TaskCost(finish_time=start + spec.task_fixed_ns, latency_ns=spec.task_fixed_ns, bandwidth_edges=0.0)

    if use_internal_lb:
        # CTA worker: prefix-sum the fetched items, then process the flat
        # edge array in worker-width rounds.  Lanes are packed densely.
        rounds = -(-(edge_counts_sum + num_items) // worker_threads)
        latency = spec.cta_task_fixed_ns + rounds * spec.cta_step_ns
        traffic = edge_counts_sum * (1.0 + spec.lbs_bandwidth_overhead) + num_items
    elif worker_threads == 1:
        # Thread worker: fully serial edge walk.
        latency = spec.task_fixed_ns + num_items * spec.task_fixed_ns * 0.25 + edge_counts_sum * spec.thread_edge_ns
        traffic = float(edge_counts_sum + num_items)
    else:
        # Warp (or unbalanced multi-warp) worker: each item is swept in
        # width-sized SIMD steps; transactions round up to lane granularity.
        width = worker_threads
        gran = spec.warp_lane_granularity
        # steps across all fetched items (processed item-after-item)
        # ceil(d / width) per item; computed from the aggregate plus the
        # per-item remainder penalty via max_degree as an upper-bound proxy.
        steps = num_items + (edge_counts_sum // width)
        latency = spec.task_fixed_ns + steps * spec.warp_step_ns
        # lane-rounded traffic: every item's tail transaction is padded
        traffic = float(num_items * gran * ((max_degree + gran - 1) // gran) if num_items == 1 else 0)
        if num_items != 1:
            # For batched items we approximate padding with half a
            # granularity unit per item (expected tail waste).
            traffic = edge_counts_sum + num_items * (gran / 2.0)
        traffic += num_items

    latency *= latency_scale
    finish_bw = mem.reserve(start, traffic)
    finish = max(start + latency, finish_bw)
    return TaskCost(finish_time=finish, latency_ns=latency, bandwidth_edges=traffic)


def make_cost_fn(
    spec: GpuSpec,
    mem: BandwidthServer,
    *,
    worker_threads: int,
    use_internal_lb: bool,
):
    """Specialise :func:`task_cost` for one ``(spec, config)`` pair.

    The scheduler costs every popped task with the same spec, worker width
    and load-balancing mode, so the branch selection and all spec-derived
    constants can be hoisted out of the per-task call.  The returned
    closure ``fn(start, num_items, edge_counts_sum, max_degree,
    latency_scale) -> finish_time`` evaluates the **identical floating-point
    expressions in the identical order** as :func:`task_cost` — golden
    digests in ``tests/test_equivalence.py`` pin this — and skips the
    :class:`TaskCost` allocation (the engine only consumes the finish
    time).  ``tests/test_perf.py`` cross-checks the closure against
    :func:`task_cost` over randomised inputs.
    """
    if worker_threads < 1:
        raise ValueError("worker_threads must be >= 1")

    task_fixed = spec.task_fixed_ns
    # The bandwidth reservation is inlined (one closure call per task is
    # the simulator's hottest call site): the closures mutate the server's
    # fields with the exact arithmetic of BandwidthServer.reserve.  Traffic
    # is always positive here (num_items >= 1 in every branch below), so
    # reserve()'s zero/negative guards cannot fire.
    rate = mem.edges_per_ns

    if use_internal_lb:
        cta_fixed = spec.cta_task_fixed_ns
        cta_step = spec.cta_step_ns
        # precomputing (1.0 + overhead) keeps the multiplier bit-identical:
        # the product below sees the exact same float either way
        lbs_mult = 1.0 + spec.lbs_bandwidth_overhead
        width = worker_threads

        def cost_cta(start, num_items, edge_counts_sum, max_degree, latency_scale):
            if num_items == 0:
                return start + task_fixed
            rounds = -(-(edge_counts_sum + num_items) // width)
            latency = (cta_fixed + rounds * cta_step) * latency_scale
            traffic = edge_counts_sum * lbs_mult + num_items
            free = mem._free_at
            if start > free:
                free = start
            service = traffic / rate
            mem._free_at = finish_bw = free + service
            mem.total_edges += traffic
            mem.busy_time += service
            lat_end = start + latency
            return lat_end if lat_end > finish_bw else finish_bw

        return cost_cta

    if worker_threads == 1:
        thread_edge = spec.thread_edge_ns

        def cost_thread(start, num_items, edge_counts_sum, max_degree, latency_scale):
            if num_items == 0:
                return start + task_fixed
            latency = (
                task_fixed + num_items * task_fixed * 0.25 + edge_counts_sum * thread_edge
            ) * latency_scale
            traffic = float(edge_counts_sum + num_items)
            free = mem._free_at
            if start > free:
                free = start
            service = traffic / rate
            mem._free_at = finish_bw = free + service
            mem.total_edges += traffic
            mem.busy_time += service
            lat_end = start + latency
            return lat_end if lat_end > finish_bw else finish_bw

        return cost_thread

    width = worker_threads
    gran = spec.warp_lane_granularity
    half_gran = gran / 2.0
    warp_step = spec.warp_step_ns

    def cost_warp(start, num_items, edge_counts_sum, max_degree, latency_scale):
        if num_items == 0:
            return start + task_fixed
        steps = num_items + (edge_counts_sum // width)
        latency = (task_fixed + steps * warp_step) * latency_scale
        if num_items == 1:
            traffic = float(gran * ((max_degree + gran - 1) // gran)) + 1
        else:
            traffic = (edge_counts_sum + num_items * half_gran) + num_items
        free = mem._free_at
        if start > free:
            free = start
        service = traffic / rate
        mem._free_at = finish_bw = free + service
        mem.total_edges += traffic
        mem.busy_time += service
        lat_end = start + latency
        return lat_end if lat_end > finish_bw else finish_bw

    return cost_warp


def bsp_kernel_time(
    spec: GpuSpec,
    *,
    frontier_size: int,
    edge_count: int,
    strategy: str = "lbs",
) -> float:
    """Busy time of one BSP (Gunrock-style) kernel over a frontier.

    ``strategy`` selects the data-parallel load-balancing technique:

    * ``"lbs"`` — load-balancing search (near-perfect balance, prefix-sum
      setup cost proportional to the frontier);
    * ``"twc"`` — bucketed thread-warp-CTA mapping (cheaper setup, residual
      imbalance modeled as a fractional work inflation);
    * ``"none"`` — one thread per frontier vertex (imbalance proportional to
      the max/mean degree ratio is *not* modeled here; callers that want
      that behaviour should inflate ``edge_count`` themselves).
    """
    if frontier_size < 0 or edge_count < 0:
        raise ValueError("work quantities must be non-negative")
    if frontier_size == 0:
        return spec.kernel_floor_ns
    work_items = frontier_size + edge_count
    service = work_items / spec.mem_edges_per_ns
    if strategy == "lbs":
        setup = spec.lb_setup_ns + frontier_size * spec.lb_per_item_ns
        busy = setup + service
    elif strategy == "twc":
        setup = spec.lb_setup_ns * 0.5 + frontier_size * spec.lb_per_item_ns
        busy = setup + service * (1.0 + spec.twc_imbalance)
    elif strategy == "none":
        busy = service
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    return max(spec.kernel_floor_ns, busy)
