"""Occupancy calculator: how many workers are simultaneously resident.

The paper's Section 6.3 hinges on occupancy: the persistent coloring kernel
uses 72 registers/thread and reaches 43% occupancy, while the discrete one
uses 42 registers and reaches 62% — so the discrete kernel colors more
vertices simultaneously and produces more conflicts.  This module implements
the standard CUDA occupancy calculation (register, shared-memory, thread-slot
and CTA-slot limits) so those numbers fall out of the model instead of being
hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.sim.spec import GpuSpec

__all__ = ["Occupancy", "occupancy_for"]


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation for one kernel configuration."""

    ctas_per_sm: int
    warps_per_sm: int
    threads_per_sm: int
    total_ctas: int
    total_warps: int
    occupancy_fraction: float
    limiting_factor: str  # "registers" | "shared_mem" | "threads" | "ctas"


def occupancy_for(
    spec: GpuSpec,
    *,
    threads_per_cta: int,
    registers_per_thread: int = 32,
    shared_mem_per_cta: int = 0,
) -> Occupancy:
    """Resident CTAs/warps per SM under all four hardware limits.

    Registers allocate in per-warp granularity on real hardware; we keep the
    simpler per-thread model, which matches the published occupancy numbers
    to within one CTA for the configurations used here.

    Results are memoised (:class:`GpuSpec` and :class:`Occupancy` are both
    frozen): sweeps and parallel grids recompute the same handful of
    configurations thousands of times.
    """
    return _occupancy_cached(
        spec, threads_per_cta, registers_per_thread, shared_mem_per_cta
    )


@lru_cache(maxsize=512)
def _occupancy_cached(
    spec: GpuSpec,
    threads_per_cta: int,
    registers_per_thread: int,
    shared_mem_per_cta: int,
) -> Occupancy:
    if threads_per_cta <= 0:
        raise ValueError("threads_per_cta must be positive")
    if threads_per_cta > spec.max_threads_per_sm:
        raise ValueError(
            f"threads_per_cta ({threads_per_cta}) exceeds the SM thread limit "
            f"({spec.max_threads_per_sm})"
        )
    if registers_per_thread <= 0:
        raise ValueError("registers_per_thread must be positive")
    if registers_per_thread * threads_per_cta > spec.registers_per_sm:
        raise ValueError("one CTA exceeds the SM register file")
    if shared_mem_per_cta > spec.shared_mem_per_sm:
        raise ValueError("one CTA exceeds the SM shared memory")

    limits = {
        "registers": spec.registers_per_sm // (registers_per_thread * threads_per_cta),
        "threads": spec.max_threads_per_sm // threads_per_cta,
        "ctas": spec.max_ctas_per_sm,
    }
    if shared_mem_per_cta > 0:
        limits["shared_mem"] = spec.shared_mem_per_sm // shared_mem_per_cta
    ctas = min(limits.values())
    # deterministic tie-break: report the first limit reaching the minimum
    limiting = next(k for k in ("registers", "shared_mem", "threads", "ctas") if limits.get(k) == ctas)
    warps_per_cta = -(-threads_per_cta // spec.threads_per_warp)
    warps = ctas * warps_per_cta
    threads = ctas * threads_per_cta
    return Occupancy(
        ctas_per_sm=ctas,
        warps_per_sm=warps,
        threads_per_sm=threads,
        total_ctas=ctas * spec.num_sms,
        total_warps=warps * spec.num_sms,
        occupancy_fraction=min(1.0, warps / spec.max_warps_per_sm),
        limiting_factor=limiting,
    )
