"""Throughput-versus-time tracing (Figures 1-3 of the paper).

Every simulated run records ``(completion_time, items, work_units)`` samples.
:meth:`ThroughputTrace.series` bins them into a time grid and returns the
throughput curve; dividing by the run's overwork factor yields the
*normalized throughput* the paper plots ("useful" throughput, Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ThroughputTrace", "ThroughputSeries"]


@dataclass(frozen=True)
class ThroughputSeries:
    """A binned throughput curve: ``rate[i]`` covers ``[t[i], t[i] + dt)``."""

    times: np.ndarray  # bin start times, ns
    rates: np.ndarray  # items per ns in each bin
    bin_ns: float

    def normalized(self, overwork_factor: float) -> "ThroughputSeries":
        """Scale rates down by the overwork factor (>= 1 means extra work)."""
        if overwork_factor <= 0:
            raise ValueError("overwork_factor must be positive")
        return ThroughputSeries(self.times, self.rates / overwork_factor, self.bin_ns)

    def peak(self) -> float:
        return float(self.rates.max()) if self.rates.size else 0.0

    def mean(self) -> float:
        return float(self.rates.mean()) if self.rates.size else 0.0


@dataclass
class ThroughputTrace:
    """Accumulates completion samples during a simulated run."""

    times: list = field(default_factory=list)
    items: list = field(default_factory=list)
    work: list = field(default_factory=list)

    def record(self, time: float, items: int, work_units: float) -> None:
        """Log that ``items`` work items retired at ``time``."""
        self.times.append(time)
        self.items.append(items)
        self.work.append(work_units)

    @property
    def total_items(self) -> int:
        return int(sum(self.items))

    @property
    def total_work(self) -> float:
        return float(sum(self.work))

    def end_time(self) -> float:
        return max(self.times) if self.times else 0.0

    def series(self, *, bins: int = 60, end_time: float | None = None, use_work: bool = False) -> ThroughputSeries:
        """Bin the samples into ``bins`` equal windows.

        ``use_work=True`` bins work units (edges) instead of items; the
        paper's figures plot vertex-item throughput, which is the default.
        """
        if bins <= 0:
            raise ValueError("bins must be positive")
        end = end_time if end_time is not None else self.end_time()
        if end <= 0 or not self.times:
            return ThroughputSeries(np.zeros(0), np.zeros(0), 0.0)
        t = np.asarray(self.times)
        w = np.asarray(self.work if use_work else self.items, dtype=np.float64)
        bin_ns = end / bins
        idx = np.minimum((t / bin_ns).astype(np.int64), bins - 1)
        totals = np.bincount(idx, weights=w, minlength=bins)
        starts = np.arange(bins, dtype=np.float64) * bin_ns
        return ThroughputSeries(times=starts, rates=totals / bin_ns, bin_ns=bin_ns)

    def sparkline(self, *, bins: int = 60, width: int = 60) -> str:
        """ASCII sparkline of the throughput curve (for terminal figures)."""
        series = self.series(bins=min(bins, width))
        if series.rates.size == 0:
            return "(empty)"
        blocks = "▁▂▃▄▅▆▇█"
        peak = series.peak()
        if peak <= 0:
            return "▁" * series.rates.size
        levels = np.minimum(
            (series.rates / peak * (len(blocks) - 1)).round().astype(int),
            len(blocks) - 1,
        )
        return "".join(blocks[l] for l in levels)
