"""Shared memory-bandwidth server.

Graph analytics on GPUs is bandwidth-bound once enough workers are in
flight.  We model DRAM as a single fluid server with a fixed service rate
(:attr:`GpuSpec.mem_edges_per_ns`): each task *reserves* its edge traffic on
the server, and the reservation end time feeds into the task's duration.

Under saturation this makes aggregate throughput exactly the service rate —
per-task times stretch as the in-flight population grows, exactly like real
latency/bandwidth behaviour under MLP saturation.  When the queue is shallow
(small frontiers, execution tails) reservations return almost immediately
and the per-task *latency* term of the cost model dominates instead.

The server is deliberately FIFO-by-reservation: a huge task momentarily
monopolises bandwidth, which is the DES analogue of a degree-10k neighbor
list streaming through DRAM.
"""

from __future__ import annotations

__all__ = ["BandwidthServer"]


class BandwidthServer:
    """FIFO fluid server measured in edge-units per nanosecond."""

    def __init__(self, edges_per_ns: float) -> None:
        if edges_per_ns <= 0:
            raise ValueError("edges_per_ns must be positive")
        self.edges_per_ns = float(edges_per_ns)
        self._free_at = 0.0
        self.total_edges = 0.0
        self.busy_time = 0.0

    def reserve(self, now: float, edge_units: float) -> float:
        """Reserve ``edge_units`` of traffic starting no earlier than ``now``.

        Returns the completion time of the reservation.  ``edge_units`` of
        zero returns ``now`` without disturbing the server.
        """
        if edge_units < 0:
            raise ValueError("edge_units must be non-negative")
        if edge_units == 0:
            return now
        start = max(now, self._free_at)
        service = edge_units / self.edges_per_ns
        self._free_at = start + service
        self.total_edges += edge_units
        self.busy_time += service
        return self._free_at

    @property
    def free_at(self) -> float:
        """Earliest time a new reservation could start service."""
        return self._free_at

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the server spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def reset(self) -> None:
        """Forget all reservations (new simulation run)."""
        self._free_at = 0.0
        self.total_edges = 0.0
        self.busy_time = 0.0
