"""Atos reproduction: a task-parallel GPU scheduler for graph analytics.

This package reproduces *Atos: A Task-Parallel GPU Scheduler for Graph
Analytics* (Chen et al., ICPP 2022) on a discrete-event GPU model — see
DESIGN.md for the full substitution map and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.

Quick tour
----------
>>> from repro import Lab
>>> lab = Lab(size="small")
>>> print(lab.format_table1("bfs"))          # doctest: +SKIP

Layout:

* :mod:`repro.graph` — CSR graphs, generators, the five dataset stand-ins;
* :mod:`repro.sim` — the GPU model (occupancy, bandwidth, event loop);
* :mod:`repro.queueing` — simulated MPMC work queues;
* :mod:`repro.core` — the Atos scheduler (the paper's contribution);
* :mod:`repro.bsp` — the Gunrock-style bulk-synchronous baseline;
* :mod:`repro.apps` — BFS, PageRank, graph coloring (BSP + relaxed);
* :mod:`repro.analysis` — overwork, challenge classification, figures;
* :mod:`repro.harness` — the experiment runner behind ``benchmarks/``.
"""

from repro.core import (
    DISCRETE_CTA,
    DISCRETE_WARP,
    PERSIST_CTA,
    PERSIST_WARP,
    Atos,
    AtosConfig,
    KernelStrategy,
    variant_by_name,
)
from repro.graph import Csr, from_edges, load_dataset
from repro.harness import Lab
from repro.sim import FULL_V100_SPEC, V100_SPEC, GpuSpec

__version__ = "1.0.0"

__all__ = [
    "Atos",
    "AtosConfig",
    "KernelStrategy",
    "PERSIST_WARP",
    "PERSIST_CTA",
    "DISCRETE_CTA",
    "DISCRETE_WARP",
    "variant_by_name",
    "Csr",
    "from_edges",
    "load_dataset",
    "Lab",
    "GpuSpec",
    "V100_SPEC",
    "FULL_V100_SPEC",
    "__version__",
]
