"""Wall-clock benchmark: the scenario behind ``BENCH_perf.json``.

The benchmark scenario is the full evaluation surface at one size preset:
all eight applications on the two headline datasets, each kernel app
under the three engine presets the paper's tables use (BSP-only apps run
their BSP implementation).  Graphs are prebuilt outside the timed region;
each repeat times a *fresh* Lab so per-Lab memoisation cannot hide engine
cost, while the process-wide build cache keeps graph construction out of
the loop.

Two throughput numbers are reported:

* ``cells_per_s`` — sweep cells completed per wall second (the number a
  developer feels);
* ``sim_ns_per_wall_ms`` — simulated nanoseconds advanced per wall
  millisecond (normalises for scenario composition).

Wall timings on shared machines are noisy, so the report keeps every
repeat, headlines the *best* one (minimum is the standard low-noise
estimator for deterministic workloads), and embeds a calibration score —
the wall time of a fixed pure-Python/numpy spin — so a later run on a
slower machine can normalise before comparing (see the gated regression
test in ``tests/test_perf.py``).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.perf.parallel import CellError, SweepCell, run_cells

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_PRESETS",
    "BENCH_DATASETS",
    "METRICS_CELLS",
    "bench_cells",
    "bench_metrics",
    "calibrate",
    "run_bench",
    "validate_report",
    "format_report",
    "write_report",
    "load_report",
]

BENCH_SCHEMA = "repro.perf/bench-v1"
BENCH_PRESETS = ("persist-warp", "persist-CTA", "discrete-CTA")
BENCH_DATASETS = ("roadNet-CA", "soc-LiveJournal1")

#: cells re-run (untimed) with a streaming MetricsSink when
#: ``run_bench(metrics=True)`` — one per engine preset, covering a
#: traversal, a data-centric and a speculative app
METRICS_CELLS = (
    ("bfs", "roadNet-CA", "persist-warp"),
    ("pagerank", "soc-LiveJournal1", "persist-CTA"),
    ("coloring", "roadNet-CA", "discrete-CTA"),
)


def bench_cells() -> list[SweepCell]:
    """The benchmark grid: 8 apps x presets x 2 datasets (44 cells)."""
    from repro.apps.common import app_names, get_adapter

    cells = []
    for app in app_names():
        adapter = get_adapter(app)
        if adapter.dynamic:
            # incremental variants run multi-epoch through replay_app
            # (benchmarks/bench_dynamic.py), not as single static cells
            continue
        kernel_app = adapter.make_kernel is not None
        impls = BENCH_PRESETS if kernel_app else ("BSP",)
        for impl in impls:
            for ds in BENCH_DATASETS:
                cells.append(SweepCell(app, ds, impl))
    return cells


def calibrate(loops: int = 400_000) -> float:
    """Machine-speed score: wall nanoseconds for a fixed spin workload.

    Mixes interpreter-bound work (the Python accumulation loop the
    simulator's hot path resembles) with a few numpy calls (the vector
    ops the apps lean on), so the score moves roughly like the benchmark
    itself when the machine speeds up or slows down.
    """
    arr = np.arange(4096, dtype=np.int64)
    t0 = time.perf_counter()
    acc = 0
    for i in range(loops):
        acc += i & 1023
    for _ in range(200):
        (arr * 2 + 1).sum()
    t1 = time.perf_counter()
    del acc
    return (t1 - t0) * 1e9


def run_bench(
    *,
    size: str = "small",
    repeats: int = 3,
    workers: int | None = None,
    pre_wall_s: float | None = None,
    metrics: bool = False,
    backend: str | None = None,
    devices: int | None = None,
    partition: str | None = None,
) -> dict:
    """Run the benchmark scenario and return the report document.

    ``pre_wall_s`` optionally records the wall time of the identical
    scenario measured on the pre-optimization engine (same machine, same
    session), from which the headline ``speedup_vs_pre`` is derived.

    ``backend`` selects the engine inner loop (:mod:`repro.core.backend`)
    for every cell; ``None`` keeps each preset's own default.  Simulated
    results are bit-identical across backends, so two reports differing
    only in ``backend`` measure pure scheduler overhead (the A/B
    ``benchmarks/bench_wallclock.py`` prints).

    ``devices``/``partition`` run every engine cell on a simulated
    multi-device cluster (:class:`repro.harness.runner.Lab` rebases the
    presets onto the distributed strategy) and are recorded in the report
    so ``python -m repro diff`` can tag a scaling A/B.

    ``metrics=True`` re-runs the :data:`METRICS_CELLS` subset *outside*
    the timed region with a streaming
    :class:`~repro.metrics.sink.MetricsSink` attached and embeds the
    resulting cell-keyed ``MetricsSummary`` documents under
    ``doc["metrics"]`` — so a wall-clock report also carries the
    simulated-time telemetry ``python -m repro diff`` can compare.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    from repro.graph.datasets import load_dataset

    cells = bench_cells()
    # prebuild the graphs outside the timed region (build cache holds them)
    for ds in BENCH_DATASETS:
        load_dataset(ds, size)

    calib_ns = calibrate()
    t_start = time.time()
    walls: list[float] = []
    errors: list[str] = []
    sim_ns_total = 0.0
    for rep in range(repeats):
        t0 = time.perf_counter()
        results = run_cells(
            cells, size=size, backend=backend, workers=workers, generation=rep,
            devices=devices, partition=partition,
        )
        t1 = time.perf_counter()
        walls.append(t1 - t0)
        if rep == 0:
            for res in results:
                if isinstance(res, CellError):
                    errors.append(str(res))
                else:
                    sim_ns_total += float(res.elapsed_ns)
    t_end = time.time()

    best = min(walls)
    doc = {
        "schema": BENCH_SCHEMA,
        "size": size,
        "backend": backend or "event",
        "devices": devices or 1,
        "partition": partition or "hash",
        "repeats": repeats,
        "workers": workers or 1,
        "cells": len(cells),
        "presets": list(BENCH_PRESETS),
        "datasets": list(BENCH_DATASETS),
        "t_start": t_start,
        "t_end": t_end,
        "wall_s": best,
        "wall_s_all": walls,
        "cells_per_s": len(cells) / best,
        "sim_ns_total": sim_ns_total,
        "sim_ns_per_wall_ms": sim_ns_total / (best * 1e3),
        "calibration_loop_ns": calib_ns,
        "errors": errors,
        "machine": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
    }
    if pre_wall_s is not None:
        doc["pre_wall_s"] = pre_wall_s
        doc["speedup_vs_pre"] = pre_wall_s / best
    if metrics:
        doc["metrics"] = bench_metrics(size=size)
    return doc


def bench_metrics(
    *,
    size: str = "small",
    cells: tuple[tuple[str, str, str], ...] = METRICS_CELLS,
) -> dict:
    """Cell-keyed ``MetricsSummary`` docs for the benchmark's metrics cells.

    Runs serially through a fresh :class:`~repro.harness.runner.Lab`
    (never inside the timed region — sink-attached runs take the
    engine's non-inlined path, which is the point of keeping the
    telemetry pass separate from the wall measurement).
    """
    from repro.harness.runner import Lab
    from repro.metrics.baseline import cell_key

    lab = Lab(size=size, metrics=True)
    out: dict[str, dict] = {}
    for app, dataset, config in cells:
        summary = lab.run(app, dataset, config).extra["metrics"]
        out[cell_key(summary["app"], summary["dataset"], summary["config"])] = summary
    return out


_REQUIRED = {
    "schema": str,
    "size": str,
    "repeats": int,
    "cells": int,
    "wall_s": float,
    "wall_s_all": list,
    "cells_per_s": float,
    "sim_ns_total": float,
    "sim_ns_per_wall_ms": float,
    "calibration_loop_ns": float,
    "t_start": float,
    "t_end": float,
    "errors": list,
    "machine": dict,
}


def validate_report(doc: dict) -> list[str]:
    """Schema + sanity check; returns a list of problems (empty = valid)."""
    problems = []
    if not isinstance(doc, dict):
        return [f"report must be a dict, got {type(doc).__name__}"]
    for key, typ in _REQUIRED.items():
        if key not in doc:
            problems.append(f"missing key {key!r}")
        elif typ is float and isinstance(doc[key], int) and not isinstance(doc[key], bool):
            continue  # ints are acceptable where floats are expected
        elif not isinstance(doc[key], typ):
            problems.append(f"{key!r} must be {typ.__name__}, got {type(doc[key]).__name__}")
    if problems:
        return problems
    if doc["schema"] != BENCH_SCHEMA:
        problems.append(f"schema {doc['schema']!r} != {BENCH_SCHEMA!r}")
    if doc["cells"] <= 0:
        problems.append("cells must be positive")
    if doc["wall_s"] <= 0:
        problems.append("wall_s must be positive")
    if doc["cells_per_s"] <= 0:
        problems.append("cells_per_s must be positive (nonzero throughput)")
    if doc["sim_ns_per_wall_ms"] <= 0:
        problems.append("sim_ns_per_wall_ms must be positive (nonzero throughput)")
    if doc["calibration_loop_ns"] <= 0:
        problems.append("calibration_loop_ns must be positive")
    if len(doc["wall_s_all"]) != doc["repeats"]:
        problems.append("wall_s_all length must equal repeats")
    if doc["wall_s_all"] and abs(doc["wall_s"] - min(doc["wall_s_all"])) > 1e-12:
        problems.append("wall_s must be the minimum of wall_s_all")
    if doc["t_end"] < doc["t_start"]:
        problems.append("t_end must be >= t_start (monotonic timestamps)")
    if doc["errors"]:
        problems.append(f"{len(doc['errors'])} cell error(s): {doc['errors'][:2]}")
    if "metrics" in doc:
        from repro.metrics.summary import validate_summary

        if not isinstance(doc["metrics"], dict) or not doc["metrics"]:
            problems.append("'metrics' must be a non-empty cell-keyed dict")
        else:
            for key, summary in sorted(doc["metrics"].items()):
                problems.extend(
                    f"metrics cell {key!r}: {p}" for p in validate_summary(summary)
                )
    return problems


def format_report(doc: dict) -> str:
    """Human-readable summary of a report document."""
    devices = doc.get("devices", 1)
    device_tag = (
        f"  devices={devices} partition={doc.get('partition', 'hash')}"
        if devices > 1
        else ""
    )
    lines = [
        f"repro.perf bench  size={doc['size']}  "
        f"backend={doc.get('backend', 'event')}  cells={doc['cells']}  "
        f"repeats={doc['repeats']}  workers={doc.get('workers', 1)}{device_tag}",
        f"  wall            {doc['wall_s']:.3f} s  (all: "
        + ", ".join(f"{w:.3f}" for w in doc["wall_s_all"])
        + ")",
        f"  cells/s         {doc['cells_per_s']:.3f}",
        f"  sim ns/wall ms  {doc['sim_ns_per_wall_ms']:.0f}",
        f"  calibration     {doc['calibration_loop_ns'] / 1e6:.1f} ms/spin",
    ]
    if "speedup_vs_pre" in doc:
        lines.append(
            f"  vs pre-engine   {doc['pre_wall_s']:.3f} s -> "
            f"{doc['speedup_vs_pre']:.2f}x speedup"
        )
    if "metrics" in doc:
        lines.append(f"  metrics cells   {', '.join(sorted(doc['metrics']))}")
    if doc["errors"]:
        lines.append(f"  ERRORS          {len(doc['errors'])}")
        lines.extend(f"    {e}" for e in doc["errors"][:5])
    return "\n".join(lines)


def write_report(doc: dict, path: str | Path) -> None:
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def load_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))
