"""Process-parallel sweep runner for Lab grids.

A Lab sweep is embarrassingly parallel — every (app, dataset, impl) cell
is an independent deterministic simulation — so the only interesting
design points are the ones that go wrong in practice:

* **Deterministic ordering**: results come back in the exact order the
  cells were submitted, regardless of which worker finished first, so a
  parallel sweep is a drop-in replacement for the serial loop
  (``tests/test_perf.py`` asserts serial == parallel, order included).
* **Per-cell isolation**: an exception inside one cell — bad app name,
  diverging kernel, even a worker process dying — surfaces as a
  :class:`CellError` *in that cell's slot*; the other cells still return
  results and the sweep never hangs.
* **Per-process warm state**: each worker process keeps one Lab per
  (size, spec) so graph builds are shared across the cells it executes
  (and, through :mod:`repro.perf.buildcache`, across Labs within the
  process).

Simulation outputs are bit-identical to serial execution by construction:
the engine is deterministic and each cell runs single-threaded in
whichever process it lands on.
"""

from __future__ import annotations

import traceback as _tb
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.apps.common import AppResult
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = ["SweepCell", "CellError", "run_cells", "replay_cell"]


@dataclass(frozen=True)
class SweepCell:
    """One (app, dataset, impl) cell of a sweep grid.

    ``edits`` makes the cell *dynamic*: instead of one static run, the
    cell replays the edit script through the incremental harness
    (:func:`repro.apps.dynamic.replay_app`) and yields the final epoch's
    result.  Dynamic cells are deliberately excluded from every warm-Lab
    memo — the memo key ``(app, dataset, impl, permuted)`` has no edit
    script in it, so two dynamic cells sharing coordinates but differing
    in ``edits`` would otherwise collide (see :func:`replay_cell`).
    """

    app: str
    dataset: str
    impl: str
    permuted: bool = False
    edits: str | None = None


@dataclass(frozen=True)
class CellError:
    """A cell that raised instead of returning a result.

    Carries enough to diagnose without re-running: the cell, the
    exception class name, its message, and the formatted traceback (empty
    when the worker process died and the exception crossed the pool
    boundary as a BrokenProcessPool).
    """

    cell: SweepCell
    kind: str
    message: str
    traceback: str = ""

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.cell.app}/{self.cell.dataset}/{self.cell.impl}: {self.kind}: {self.message}"


# one warm Lab per worker process, keyed by the sweep parameters
_WORKER_LAB = None
_WORKER_KEY = None


def _worker_lab(
    size: str,
    spec: GpuSpec,
    max_tasks: int,
    validate: bool,
    backend: str | None,
    generation: int,
    devices: int | None,
    partition: str | None,
):
    global _WORKER_LAB, _WORKER_KEY
    key = (size, spec, max_tasks, validate, backend, generation, devices, partition)
    if _WORKER_KEY != key:
        from repro.harness.runner import Lab

        _WORKER_LAB = Lab(
            size=size, spec=spec, max_tasks=max_tasks, validate=validate,
            backend=backend, devices=devices, partition=partition,
        )
        _WORKER_KEY = key
    return _WORKER_LAB


def replay_cell(cell: SweepCell, lab) -> AppResult:
    """Run one dynamic cell: replay its edit script, return the final epoch.

    Replays are never memoised (:meth:`repro.harness.runner.Lab.replay`),
    so running one on a Lab is always safe; what is NOT safe is storing
    the outcome in a Lab's run memo, whose key lacks the edit script.
    Callers that fold sweep results into warm state must skip dynamic
    cells — ``tests/test_perf.py`` pins both directions.
    """
    dres = lab.replay(cell.app, cell.dataset, cell.impl, cell.edits)
    final = dres.final
    final.extra["replay_edits"] = dres.edits
    final.extra["replay_epochs"] = len(dres.epochs)
    final.extra["replay_total_elapsed_ns"] = float(dres.total_elapsed_ns)
    final.extra["replay_total_work_units"] = float(dres.total_work_units)
    return final


def _run_cell(
    cell: SweepCell,
    size: str,
    spec: GpuSpec,
    max_tasks: int,
    validate: bool,
    backend: str | None,
    generation: int,
    devices: int | None = None,
    partition: str | None = None,
    lab=None,
):
    if cell.app == "__kill_worker__":
        # test hook (tests/test_perf.py): simulate a worker process dying
        # mid-cell so the BrokenProcessPool path stays covered.  Only in a
        # pool worker — in-process callers fall through to the normal
        # unknown-app error.
        import multiprocessing
        import os

        if multiprocessing.parent_process() is not None:
            os._exit(1)
    if cell.edits is not None:
        # dynamic cells bypass warm Labs entirely (both the pool worker's
        # `_WORKER_LAB` and the serial path's local Lab): a fresh
        # single-use Lab guarantees no memoised static result is served
        # for the cell's coordinates and no warm state survives the
        # replay.  Graph builds still come from the process-wide build
        # cache, so the isolation costs a dict miss, not a rebuild.
        from repro.harness.runner import Lab

        fresh = Lab(
            size=size, spec=spec, max_tasks=max_tasks, validate=validate,
            backend=backend, devices=devices, partition=partition,
        )
        return replay_cell(cell, fresh)
    if lab is None:
        lab = _worker_lab(
            size, spec, max_tasks, validate, backend, generation, devices, partition
        )
    return lab.run(cell.app, cell.dataset, cell.impl, permuted=cell.permuted)


def _error(cell: SweepCell, exc: BaseException, *, with_tb: bool = True) -> CellError:
    tb = "".join(_tb.format_exception(type(exc), exc, exc.__traceback__)) if with_tb else ""
    return CellError(cell=cell, kind=type(exc).__name__, message=str(exc), traceback=tb)


def run_cells(
    cells: Iterable[SweepCell],
    *,
    size: str = "small",
    spec: GpuSpec = V100_SPEC,
    max_tasks: int = 20_000_000,
    validate: bool = False,
    backend: str | None = None,
    workers: int | None = None,
    generation: int = 0,
    devices: int | None = None,
    partition: str | None = None,
) -> list[AppResult | CellError]:
    """Run every cell; return results/errors in submission order.

    ``workers`` of ``None``, 0 or 1 runs serially in-process (no pool
    startup cost; identical semantics).  Larger values fan cells out over
    a :class:`~concurrent.futures.ProcessPoolExecutor`.  ``generation``
    distinguishes benchmark repeats: bumping it retires the warm
    per-process Lab so a repeat re-simulates instead of replaying the
    previous sweep's memoised results.
    """
    cell_list: Sequence[SweepCell] = list(cells)
    if not workers or workers <= 1:
        # A local Lab, not the module-level `_WORKER_LAB` cache: that cache
        # is warm state for *pool worker* processes, and running serially in
        # the caller's process must not install state that outlives this
        # call (a leaked warm Lab would replay memoised results across
        # serial sweeps and tests).  Within the call, Lab.run still memoises
        # duplicate cells.
        from repro.harness.runner import Lab

        local_lab = Lab(
            size=size, spec=spec, max_tasks=max_tasks, validate=validate,
            backend=backend, devices=devices, partition=partition,
        )
        out: list[AppResult | CellError] = []
        for cell in cell_list:
            try:
                out.append(
                    _run_cell(
                        cell, size, spec, max_tasks, validate, backend, generation,
                        devices, partition, lab=local_lab,
                    )
                )
            except Exception as exc:
                out.append(_error(cell, exc))
        return out

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _run_cell, cell, size, spec, max_tasks, validate, backend,
                generation, devices, partition,
            )
            for cell in cell_list
        ]
        out = []
        for cell, fut in zip(cell_list, futures):
            try:
                out.append(fut.result())
            except Exception as exc:
                # includes BrokenProcessPool when a worker died: the error
                # lands in this cell's slot and iteration continues — the
                # sweep degrades per-cell instead of hanging or aborting
                out.append(_error(cell, exc, with_tb=exc.__traceback__ is not None))
        return out
