"""Keyed build cache for deterministic graph construction.

Graph builds (R-MAT generation, crawl-order relabeling, road meshes) are
pure functions of their parameters, and a sweep re-requests the same
handful of (dataset, size) pairs hundreds of times — once per Lab, once
per worker process, once per benchmark repeat.  This module memoises the
built :class:`~repro.graph.csr.Csr` process-wide.

Sharing is safe because ``Csr`` freezes its arrays (``writeable=False`` in
``__post_init__``): a caller that tries to mutate a cached graph gets a
``ValueError`` from numpy instead of silently poisoning every later
borrower.  ``tests/test_perf.py`` property-tests both directions — cached
builds equal fresh builds, and mutation attempts raise.

Keys must be hashable tuples of primitives.  Builders whose parameters
are not hashable (e.g. a live ``numpy.random.Generator`` seed) should
bypass the cache entirely rather than guess a key.

Mutable-graph snapshots (:class:`repro.graph.delta.DeltaCsr`) must NOT
key on generator config alone: a mutated graph built from the same
config as its parent would alias the parent's cached arrays, and every
later epoch would silently read epoch-0 topology.  :func:`edit_key`
folds the edit epoch and an edit-history digest into the key, making the
aliasing impossible by construction (regression-tested in
``tests/test_dynamic.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from threading import Lock
from typing import Callable, Hashable

from repro.graph.csr import Csr

__all__ = ["cached_graph", "cache_info", "cache_clear", "edit_key", "CacheInfo"]

_CACHE: dict[Hashable, Csr] = {}
_LOCK = Lock()
_HITS = 0
_MISSES = 0


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    size: int


def cached_graph(key: Hashable, builder: Callable[[], Csr]) -> Csr:
    """Return the graph cached under ``key``, building it on first use.

    The returned instance is shared: callers get the same read-only
    ``Csr`` object, not a copy (copy-on-return would forfeit most of the
    win — graph builds dominate Lab startup).  Immutability is enforced
    by ``Csr`` itself.
    """
    global _HITS, _MISSES
    with _LOCK:
        g = _CACHE.get(key)
        if g is not None:
            _HITS += 1
            return g
    built = builder()
    if not isinstance(built, Csr):
        raise TypeError(f"builder for {key!r} returned {type(built).__name__}, expected Csr")
    with _LOCK:
        # a racing builder may have stored first; keep the stored instance
        # so every caller shares one object
        g = _CACHE.get(key)
        if g is not None:
            _HITS += 1
            return g
        _MISSES += 1
        _CACHE[key] = built
    return built


def edit_key(base_key: tuple, epoch: int, digest: str) -> tuple:
    """Cache key for an edited snapshot of the graph keyed by ``base_key``.

    ``epoch`` alone is not enough — two different edit scripts reach
    epoch 2 of the same base with different topologies — so the rolling
    edit-history ``digest`` is folded in too.  ``epoch`` stays in the key
    for debuggability (``cache_info`` dumps are readable) and as a belt
    against digest-construction mistakes.
    """
    if epoch <= 0:
        raise ValueError(f"edit_key is for mutated snapshots; got epoch={epoch}")
    return (*base_key, "epoch", int(epoch), str(digest))


def cache_info() -> CacheInfo:
    """Hits, misses and current entry count."""
    with _LOCK:
        return CacheInfo(hits=_HITS, misses=_MISSES, size=len(_CACHE))


def cache_clear() -> None:
    """Drop every cached graph and reset the counters (tests)."""
    global _HITS, _MISSES
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0
