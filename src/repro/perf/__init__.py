"""repro.perf — wall-clock performance layer.

Three pieces, all pinned bit-identical by the golden-digest net in
``tests/test_equivalence.py``:

* :mod:`repro.perf.buildcache` — a keyed, process-wide cache for
  deterministic graph construction (datasets and generators), returning
  shared read-only :class:`~repro.graph.csr.Csr` instances;
* :mod:`repro.perf.parallel` — a process-parallel sweep runner for Lab
  grids with per-cell error isolation and deterministic result ordering;
* :mod:`repro.perf.bench` — the wall-clock benchmark scenario behind
  ``python -m repro perf`` and the committed ``BENCH_perf.json`` baseline.

The engine-level optimizations themselves (vectorized hot paths, cost-fn
specialisation, scalar app fast paths) live in the modules they speed up;
see ``docs/performance.md`` for the methodology and the invariants every
optimization must keep.
"""

from repro.perf.buildcache import cache_clear, cache_info, cached_graph
from repro.perf.parallel import CellError, SweepCell, run_cells
from repro.perf.bench import (
    BENCH_SCHEMA,
    bench_cells,
    calibrate,
    format_report,
    run_bench,
    validate_report,
)

__all__ = [
    "cached_graph",
    "cache_info",
    "cache_clear",
    "SweepCell",
    "CellError",
    "run_cells",
    "BENCH_SCHEMA",
    "bench_cells",
    "calibrate",
    "run_bench",
    "validate_report",
    "format_report",
]
