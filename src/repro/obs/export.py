"""Trace export: Chrome ``trace_event`` JSON and flat harness metrics.

:func:`to_chrome_trace` converts a collected event stream into the Chrome
trace-event format (the JSON array flavour wrapped in an object), loadable
in Perfetto or ``chrome://tracing``:

* each worker slot becomes a thread; its tasks are complete events ("X");
* kernel launches, barriers and discrete generations live on a dedicated
  "scheduler" thread;
* queue pushes/pops feed a global "queue depth" counter track ("C");
* empty pops and steals appear as instant events ("i") on per-queue
  threads.

Timestamps are exported in microseconds (the format's unit) from simulated
nanoseconds.  Serialization uses sorted keys and fixed separators so the
same event stream always produces byte-identical JSON — re-running a
seeded simulation and diffing the files is a determinism check.

:func:`flat_metrics` is the harness-facing summary: one flat dict of
scalars suitable for a benchmark table row.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.collector import Collector
from repro.obs.events import (
    Barrier,
    EmptyPop,
    GenerationEnd,
    GenerationStart,
    KernelLaunch,
    PolicySwitch,
    QueuePop,
    QueuePush,
    QueueSteal,
    TaskPop,
    TaskRead,
)

__all__ = ["to_chrome_trace", "write_chrome_trace", "flat_metrics"]

_PID = 0
#: tid of the synthetic "scheduler" thread (launches, barriers, generations)
_SCHED_TID = 10_000
#: queue threads are numbered upward from here, in first-seen order
_QUEUE_TID_BASE = 20_000


def _us(t_ns: float) -> float:
    return t_ns / 1e3


def to_chrome_trace(
    collector: Collector, *, process_name: str = "repro", trace_id: str | None = None
) -> dict:
    """Render the collected events as a Chrome trace-event document.

    ``trace_id`` (explicit, or inherited from ``collector.trace_id``)
    stamps the owning service trace into ``otherData`` so a per-job
    engine trace can be joined with its broker spans
    (:func:`repro.dash.trace.trace_to_chrome`) without touching the
    digest-pinned event stream itself.
    """
    trace: list[dict[str, Any]] = []
    queue_tids: dict[str, int] = {}

    def queue_tid(name: str) -> int:
        tid = queue_tids.get(name)
        if tid is None:
            tid = _QUEUE_TID_BASE + len(queue_tids)
            queue_tids[name] = tid
            trace.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"name": f"queue {name}"},
                }
            )
        return tid

    trace.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": process_name},
        }
    )
    trace.append(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _SCHED_TID,
            "args": {"name": "scheduler"},
        }
    )

    # worker task spans (one "X" event per task)
    workers_seen: set[int] = set()
    for span in collector.task_spans():
        if span.worker not in workers_seen:
            workers_seen.add(span.worker)
            trace.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": span.worker,
                    "args": {"name": f"worker {span.worker}"},
                }
            )
        trace.append(
            {
                "name": "task",
                "ph": "X",
                "pid": _PID,
                "tid": span.worker,
                "ts": _us(span.start),
                "dur": _us(span.duration),
                "args": {"items": span.items, "retired": span.retired},
            }
        )

    open_generations: dict[int, GenerationStart] = {}
    for e in collector.events:
        if isinstance(e, TaskRead):
            trace.append(
                {
                    "name": "read",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": e.worker,
                    "ts": _us(e.t),
                    "args": {"items": e.items},
                }
            )
        elif isinstance(e, KernelLaunch):
            trace.append(
                {
                    "name": "kernel launch",
                    "ph": "X",
                    "pid": _PID,
                    "tid": _SCHED_TID,
                    "ts": _us(e.t),
                    "dur": _us(e.duration_ns),
                    "args": {},
                }
            )
        elif isinstance(e, Barrier):
            trace.append(
                {
                    "name": "barrier",
                    "ph": "X",
                    "pid": _PID,
                    "tid": _SCHED_TID,
                    "ts": _us(e.t),
                    "dur": _us(e.duration_ns),
                    "args": {},
                }
            )
        elif isinstance(e, GenerationStart):
            open_generations[e.generation] = e
        elif isinstance(e, GenerationEnd):
            start = open_generations.pop(e.generation, None)
            if start is not None:
                trace.append(
                    {
                        "name": f"generation {e.generation}",
                        "ph": "X",
                        "pid": _PID,
                        "tid": _SCHED_TID,
                        "ts": _us(start.t),
                        "dur": _us(e.t - start.t),
                        "args": {"items": start.items},
                    }
                )
        elif isinstance(e, EmptyPop):
            trace.append(
                {
                    "name": "empty pop",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": queue_tid(e.queue),
                    "ts": _us(e.t),
                    "args": {},
                }
            )
        elif isinstance(e, QueueSteal):
            trace.append(
                {
                    "name": "steal",
                    "ph": "i",
                    "s": "p",
                    "pid": _PID,
                    "tid": _SCHED_TID,
                    "ts": _us(e.t),
                    "args": {"thief": e.thief, "victim": e.victim, "items": e.items},
                }
            )
        elif isinstance(e, PolicySwitch):
            trace.append(
                {
                    "name": f"switch to {e.policy}",
                    "ph": "i",
                    "s": "p",
                    "pid": _PID,
                    "tid": _SCHED_TID,
                    "ts": _us(e.t),
                    "args": {"generation": e.generation, "items": e.items},
                }
            )

    for t, depth in collector.queue_depth_series():
        trace.append(
            {
                "name": "queue depth",
                "ph": "C",
                "pid": _PID,
                "ts": _us(t),
                "args": {"items": depth},
            }
        )

    other: dict[str, Any] = {"digest": collector.digest(), "events": len(collector.events)}
    if trace_id is None:
        trace_id = getattr(collector, "trace_id", None)
    if trace_id is not None:
        other["trace_id"] = trace_id
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(collector: Collector, path: str, *, process_name: str = "repro") -> None:
    """Serialize :func:`to_chrome_trace` output to ``path``.

    Sorted keys and fixed separators make equal event streams produce
    byte-identical files.
    """
    doc = to_chrome_trace(collector, process_name=process_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")


def flat_metrics(collector: Collector, *, elapsed_ns: float | None = None) -> dict[str, Any]:
    """One flat dict of scalars summarizing the traced run.

    Counts are ints, durations are floats (ns).
    """
    spans = collector.task_spans()
    end = elapsed_ns if elapsed_ns is not None else collector.end_time()
    busy = sum(s.duration for s in spans)
    series = collector.queue_depth_series()
    return {
        "events": len(collector.events),
        "elapsed_ns": float(end),
        "tasks": len(collector.events_of(TaskPop)),
        "items_popped": int(sum(e.items for e in collector.events_of(TaskPop))),
        "items_retired": int(sum(s.retired for s in spans)),
        "busy_ns": float(busy),
        "queue_wait_ns": float(collector.queue_wait_ns()),
        "launch_ns": float(collector.launch_ns()),
        "barrier_ns": float(collector.barrier_ns()),
        "empty_pops": len(collector.events_of(EmptyPop)),
        "queue_pushes": len(collector.events_of(QueuePush)),
        "queue_pops": len(collector.events_of(QueuePop)),
        "steals": len(collector.events_of(QueueSteal)),
        "policy_switches": len(collector.events_of(PolicySwitch)),
        "max_queue_depth": int(max((d for _, d in series), default=0)),
        "final_queue_depth": int(series[-1][1]) if series else 0,
    }
