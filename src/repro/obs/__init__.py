"""``repro.obs`` — structured run observability.

A zero-overhead-when-disabled tracing and metrics subsystem threaded
through the scheduler, queueing and BSP layers:

* :mod:`repro.obs.events` — typed simulation events + ``EventSink``;
* :mod:`repro.obs.collector` — in-memory collector with per-worker
  timelines, queue-depth series and occupancy summaries;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto /
  ``chrome://tracing``) and flat harness metrics;
* :mod:`repro.obs.report` — ASCII top-time-sinks profile.

Attach a :class:`Collector` via the ``sink=`` argument of
:func:`repro.core.scheduler.run` (or ``Atos(sink=...)``,
``Lab.run_config(..., sink=...)``), or from a shell::

    python -m repro trace bfs roadnet_ca_sim --config persist-warp --out trace.json
"""

from repro.obs.collector import Collector, TaskSpan, WorkerSummary
from repro.obs.events import (
    Barrier,
    EmptyPop,
    EpochMark,
    EventSink,
    GenerationEnd,
    GenerationStart,
    KernelLaunch,
    MultiSink,
    PolicySwitch,
    QueuePop,
    QueuePush,
    QueueSteal,
    TaskComplete,
    TaskPop,
    TaskRead,
    TraceEvent,
)
from repro.obs.export import flat_metrics, to_chrome_trace, write_chrome_trace
from repro.obs.report import format_profile

__all__ = [
    "Collector",
    "TaskSpan",
    "WorkerSummary",
    "TraceEvent",
    "EventSink",
    "MultiSink",
    "TaskPop",
    "TaskRead",
    "TaskComplete",
    "QueuePush",
    "QueuePop",
    "EmptyPop",
    "QueueSteal",
    "EpochMark",
    "GenerationStart",
    "GenerationEnd",
    "KernelLaunch",
    "Barrier",
    "PolicySwitch",
    "to_chrome_trace",
    "write_chrome_trace",
    "flat_metrics",
    "format_profile",
]
