"""ASCII profile report: where did the simulated time go?

:func:`format_profile` renders the paper-reading view of a traced run —
the top time sinks per configuration (compute, queue-atomic wait, idle,
barrier, launch) plus a worker-occupancy summary.  This is the inspection
tool the evaluation methodology calls for: before trusting a Table 1
number, look at where its nanoseconds went.

Accounting model
----------------
Wall time is the run's ``elapsed_ns``.  Worker time is
``worker_slots * elapsed_ns`` — the area the paper's occupancy argument is
about.  Within worker time:

* **compute** — sum of task spans (pop instant to completion);
* **queue wait** — contention wait behind queue atomics (also inside task
  spans; reported separately because it is the shared-queue scaling term);
* **launch/barrier** — wall-clock scheduler overhead, charged across all
  slots (no worker can run during them);
* **idle** — the remainder: parked workers and drained-queue polling.
"""

from __future__ import annotations

from repro.obs.collector import Collector

__all__ = ["format_profile"]


def _pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole > 0 else "-"


def _ms(ns: float) -> str:
    return f"{ns / 1e6:.4f}"


def format_profile(
    collector: Collector,
    result=None,
    *,
    elapsed_ns: float | None = None,
    worker_slots: int | None = None,
    config_name: str = "",
) -> str:
    """Render the top-time-sinks table plus a worker-occupancy summary.

    ``result`` — a :class:`~repro.core.engine.RunResult` or
    :class:`~repro.apps.common.AppResult` — supplies ``elapsed_ns``,
    ``worker_slots`` and the configuration name directly, so callers no
    longer thread ``res.elapsed_ns`` / ``res.extra["worker_slots"]`` by
    hand.  The explicit keyword arguments still work and take precedence.
    """
    if result is not None:
        if elapsed_ns is None:
            elapsed_ns = result.elapsed_ns
        extra = getattr(result, "extra", None)
        if worker_slots is None:
            if extra is not None:
                worker_slots = extra.get("worker_slots")
            else:
                worker_slots = getattr(result, "worker_slots", None)
        if not config_name:
            config_name = getattr(result, "impl", "") or getattr(result, "config_name", "")
    # deferred: analysis imports the apps package, whose kernels import the
    # scheduler, which imports repro.obs — a module-level import here would
    # close that cycle
    from repro.analysis.tables import format_table

    end = elapsed_ns if elapsed_ns is not None else collector.end_time()
    summaries = collector.worker_summaries(elapsed_ns=end)
    slots = worker_slots if worker_slots is not None else len(summaries)
    compute = collector.busy_ns()
    qwait = collector.queue_wait_ns()
    launch = collector.launch_ns()
    barrier = collector.barrier_ns()
    worker_time = slots * end
    overhead = slots * (launch + barrier)
    idle = max(0.0, worker_time - compute - overhead)

    sink_rows = [
        ["compute (task spans)", _ms(compute), _pct(compute, worker_time)],
        ["queue-atomic wait", _ms(qwait), _pct(qwait, worker_time)],
        ["launch (x slots)", _ms(slots * launch), _pct(slots * launch, worker_time)],
        ["barrier (x slots)", _ms(slots * barrier), _pct(slots * barrier, worker_time)],
        ["idle", _ms(idle), _pct(idle, worker_time)],
    ]
    sink_rows.sort(key=lambda r: -float(r[1]))
    title = "Profile — top time sinks"
    if config_name:
        title += f" ({config_name})"
    sinks = format_table(["Sink", "ms", "% worker-time"], sink_rows, title=title)

    if summaries:
        utils = [s.utilization for s in summaries]
        busiest = max(summaries, key=lambda s: s.busy_ns)
        occupancy_rows = [
            ["workers observed", len(summaries), ""],
            ["worker slots", slots, ""],
            ["tasks", sum(s.tasks for s in summaries), ""],
            ["mean utilization", f"{sum(utils) / len(utils):.3f}", ""],
            ["max utilization", f"{max(utils):.3f}", f"worker {busiest.worker}"],
            ["min utilization", f"{min(utils):.3f}", ""],
        ]
        occupancy = format_table(
            ["Metric", "Value", "Note"], occupancy_rows, title="Worker occupancy"
        )
    else:
        occupancy = "(no task spans collected)"

    counts = collector.counts()
    count_line = "events: " + ", ".join(
        f"{name}={counts[name]}" for name in sorted(counts)
    )
    return "\n".join([sinks, "", occupancy, "", count_line])
