"""In-memory event collector and derived run analyses.

:class:`Collector` is the standard :class:`~repro.obs.events.EventSink`:
it appends every event to a list and derives, on demand,

* per-worker timelines (pop→complete spans, one per task);
* the global queue-depth time series (summed over physical queues);
* a worker-utilization / occupancy summary;
* a byte-stable digest of the whole event stream, which doubles as a
  determinism check — two same-seed runs must produce identical digests.

All analyses are computed lazily from the raw event list, so collecting is
a single ``list.append`` per event.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.obs.events import (
    Barrier,
    EmptyPop,
    KernelLaunch,
    QueuePop,
    QueuePush,
    QueueSteal,
    TaskComplete,
    TaskPop,
    TraceEvent,
)

__all__ = ["Collector", "TaskSpan", "WorkerSummary"]


@dataclass(frozen=True, slots=True)
class TaskSpan:
    """One task's residence on a worker: pop instant to completion."""

    worker: int
    start: float
    end: float
    items: int
    retired: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class WorkerSummary:
    """Occupancy summary for one worker slot."""

    worker: int
    tasks: int
    busy_ns: float
    utilization: float  # busy / observed span


class Collector:
    """Append-only event sink with derived timelines and metrics.

    ``trace_id`` optionally names the owning service trace
    (:mod:`repro.dash.trace`).  It lives on the collector — never on the
    events — so correlation costs nothing on the digest-pinned stream:
    event reprs stay byte-identical whether or not a trace owns the run.
    """

    def __init__(self, *, trace_id: str | None = None) -> None:
        self.events: list[TraceEvent] = []
        self.trace_id = trace_id

    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def events_of(self, *types: type) -> list[TraceEvent]:
        """All events that are instances of the given event classes."""
        return [e for e in self.events if isinstance(e, types)]

    def counts(self) -> dict[str, int]:
        """Event count per event-class name."""
        out: dict[str, int] = {}
        for e in self.events:
            name = type(e).__name__
            out[name] = out.get(name, 0) + 1
        return out

    # ------------------------------------------------------------------
    # Timelines
    # ------------------------------------------------------------------
    def task_spans(self) -> list[TaskSpan]:
        """Pop→complete spans, paired per worker.

        A worker slot processes one task at a time, so its ``TaskComplete``
        always matches its most recent ``TaskPop``.
        """
        open_pops: dict[int, TaskPop] = {}
        spans: list[TaskSpan] = []
        for e in self.events:
            if isinstance(e, TaskPop):
                open_pops[e.worker] = e
            elif isinstance(e, TaskComplete):
                pop = open_pops.pop(e.worker, None)
                if pop is not None:
                    spans.append(
                        TaskSpan(
                            worker=e.worker,
                            start=pop.t,
                            end=e.t,
                            items=e.items,
                            retired=e.retired,
                        )
                    )
        return spans

    def worker_timelines(self) -> dict[int, list[TaskSpan]]:
        """Per-worker lists of task spans in time order."""
        out: dict[int, list[TaskSpan]] = {}
        for span in self.task_spans():
            out.setdefault(span.worker, []).append(span)
        return out

    def worker_summaries(self, *, elapsed_ns: float | None = None) -> list[WorkerSummary]:
        """Busy time and utilization per worker slot.

        ``elapsed_ns`` defaults to the time of the last event; utilization
        is busy time divided by that span.
        """
        end = elapsed_ns if elapsed_ns is not None else self.end_time()
        out = []
        for worker, spans in sorted(self.worker_timelines().items()):
            busy = sum(s.duration for s in spans)
            out.append(
                WorkerSummary(
                    worker=worker,
                    tasks=len(spans),
                    busy_ns=busy,
                    utilization=busy / end if end > 0 else 0.0,
                )
            )
        return out

    def queue_depth_series(self) -> list[tuple[float, int]]:
        """``(t, total_depth)`` after every queue push/pop, summed over all
        physical queues.  Ends at 0 when the run drained everything."""
        depths: dict[str, int] = {}
        total = 0
        series: list[tuple[float, int]] = []
        for e in self.events:
            if isinstance(e, (QueuePush, QueuePop)):
                total += e.depth - depths.get(e.queue, 0)
                depths[e.queue] = e.depth
                series.append((e.t, total))
        return series

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def end_time(self) -> float:
        """Latest instant observed (including launch/barrier extents)."""
        end = 0.0
        for e in self.events:
            t = e.t
            if isinstance(e, (KernelLaunch, Barrier)):
                t += e.duration_ns
            if t > end:
                end = t
        return end

    def busy_ns(self) -> float:
        """Total worker-busy time (sum of task-span durations)."""
        return sum(s.duration for s in self.task_spans())

    def queue_wait_ns(self) -> float:
        """Total time spent waiting on queue atomics (contention)."""
        return sum(
            e.wait_ns for e in self.events if isinstance(e, (QueuePush, QueuePop, EmptyPop))
        )

    def launch_ns(self) -> float:
        return sum(e.duration_ns for e in self.events_of(KernelLaunch))

    def barrier_ns(self) -> float:
        return sum(e.duration_ns for e in self.events_of(Barrier))

    def steal_count(self) -> int:
        return len(self.events_of(QueueSteal))

    # ------------------------------------------------------------------
    def digest(self) -> str:
        """SHA-256 over the canonical event stream.

        Event reprs are byte-stable for a fixed seed, so equal digests
        across two runs certify bit-deterministic simulation.
        """
        h = hashlib.sha256()
        for e in self.events:
            h.update(repr(e).encode("utf-8"))
            h.update(b"\x1e")
        return h.hexdigest()
