"""Typed simulation events and the ``EventSink`` protocol.

The observability layer follows one rule everywhere: **disabled means
absent**.  A producer holds ``sink: EventSink | None`` and every emit point
is guarded by ``if sink is not None`` — when no sink is attached, no event
object is ever constructed, so instrumented code paths cost one attribute
test (the acceptance criterion for the benchmark harness, which runs with
tracing off).

Events are frozen, slotted dataclasses keyed on simulated time ``t`` (ns).
Two producers emit them:

* the **queueing layer** (:mod:`repro.queueing.mpmc`,
  :mod:`repro.queueing.stealing`) emits :class:`QueuePush`,
  :class:`QueuePop`, :class:`EmptyPop` and :class:`QueueSteal` — one event
  per physical-queue atomic operation, carrying the queue's depth after the
  operation and the contention wait the atomic induced;
* the **scheduler layer** (:mod:`repro.core.scheduler`,
  :mod:`repro.bsp.engine`) emits :class:`TaskPop`, :class:`TaskRead`,
  :class:`TaskComplete`, :class:`KernelLaunch`, :class:`Barrier` and
  :class:`GenerationStart`/:class:`GenerationEnd` — the worker-visible
  lifecycle.

Because every field is a plain number or string and the simulation is
bit-deterministic for a fixed seed, the ``repr`` of an event stream is
byte-stable across runs; :meth:`repro.obs.collector.Collector.digest`
exploits this to turn any traced run into a determinism check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = [
    "TraceEvent",
    "TaskPop",
    "TaskRead",
    "TaskComplete",
    "QueuePush",
    "QueuePop",
    "EmptyPop",
    "QueueSteal",
    "RemotePush",
    "RemoteSteal",
    "EpochMark",
    "GenerationStart",
    "GenerationEnd",
    "KernelLaunch",
    "Barrier",
    "PolicySwitch",
    "EventSink",
    "MultiSink",
    "CallbackSink",
]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base class: every event happens at a simulated instant ``t`` (ns)."""

    t: float


# ---------------------------------------------------------------------------
# Scheduler-level events (one per worker-task lifecycle step)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class TaskPop(TraceEvent):
    """A worker's successful pop: ``items`` work items claimed at ``t``."""

    worker: int
    items: int


@dataclass(frozen=True, slots=True)
class TaskRead(TraceEvent):
    """The task's read instant — shared state observed (Section 6.3)."""

    worker: int
    items: int


@dataclass(frozen=True, slots=True)
class TaskComplete(TraceEvent):
    """Task completion: writes applied, follow-on work pushed.

    ``retired`` and ``work`` are the task's contribution to the run's
    ``items_retired`` / ``work_units`` counters; ``pushed`` is the number of
    new work items the completion produced.
    """

    worker: int
    items: int
    retired: int
    pushed: int
    work: float


@dataclass(frozen=True, slots=True)
class GenerationStart(TraceEvent):
    """Discrete strategy: a queue generation begins with ``items`` queued."""

    generation: int
    items: int


@dataclass(frozen=True, slots=True)
class GenerationEnd(TraceEvent):
    """Discrete strategy: the generation's event loop drained."""

    generation: int


@dataclass(frozen=True, slots=True)
class KernelLaunch(TraceEvent):
    """A kernel launch occupying ``[t, t + duration_ns]`` of wall time."""

    duration_ns: float


@dataclass(frozen=True, slots=True)
class Barrier(TraceEvent):
    """A global synchronization occupying ``[t, t + duration_ns]``."""

    duration_ns: float


@dataclass(frozen=True, slots=True)
class PolicySwitch(TraceEvent):
    """Hybrid strategy: the scheduler crossed a frontier watermark.

    ``policy`` names the mode being switched *to* (``"persistent"`` or
    ``"discrete"``); ``items`` is the live frontier size that triggered the
    decision; ``generation`` is the upcoming phase's ordinal.
    """

    generation: int
    items: int
    policy: str


# ---------------------------------------------------------------------------
# Queue-level events (one per physical-queue atomic operation)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class QueuePush(TraceEvent):
    """``items`` appended to physical queue ``queue``; completed at ``t``.

    ``depth`` is the queue's size after the push; ``wait_ns`` is how long
    the operation waited behind the queue's tail atomic.
    """

    queue: str
    items: int
    depth: int
    wait_ns: float


@dataclass(frozen=True, slots=True)
class QueuePop(TraceEvent):
    """``items`` removed from physical queue ``queue``; completed at ``t``."""

    queue: str
    items: int
    depth: int
    wait_ns: float


@dataclass(frozen=True, slots=True)
class EmptyPop(TraceEvent):
    """A pop that found ``queue`` empty (still paid the atomic)."""

    queue: str
    wait_ns: float


@dataclass(frozen=True, slots=True)
class QueueSteal(TraceEvent):
    """A successful steal: ``items`` moved from deque ``victim`` to ``thief``.

    ``banked`` of those items are immediately re-pushed into the thief's
    own deque (stolen surplus beyond the pop's ``max_items``); they show up
    a second time in the push/pop item totals, so item-conservation checks
    subtract them.
    """

    thief: int
    victim: int
    items: int
    banked: int = 0


# ---------------------------------------------------------------------------
# Device-level events (multi-device runs only; never emitted when devices=1,
# so single-device event streams — and their digests — are unchanged)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class RemotePush(TraceEvent):
    """``items`` forwarded from device ``src`` to their owner device ``dst``.

    ``t`` is the *arrival* instant at the destination deque (send time plus
    link serialization plus latency); ``transfer_ns`` is the interconnect
    occupancy the transfer paid, including queueing behind earlier
    transfers on the same directed link.
    """

    src: int
    dst: int
    items: int
    transfer_ns: float


@dataclass(frozen=True, slots=True)
class RemoteSteal(TraceEvent):
    """A cross-device steal: ``items`` pulled from device ``victim``'s deque.

    Emitted alongside the :class:`QueueSteal` carrying the worker-level
    thief/victim detail; this event carries the device-level routing and
    the interconnect cost of moving the loot.
    """

    thief: int
    victim: int
    items: int
    transfer_ns: float


# ---------------------------------------------------------------------------
# Dynamic-graph events (edit-replay runs only; never emitted for a static
# graph, so frozen-graph event streams — and their digests — are unchanged)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class EpochMark(TraceEvent):
    """Boundary between two graph epochs of a multi-epoch (dynamic) run.

    Emitted by :func:`repro.core.dynamic.run_epochs` after the epoch's
    engine drained and **before** the next epoch's run begins — i.e. at a
    quiescent instant: no tasks in flight, every queue empty.  ``t`` is
    the finishing epoch's elapsed simulated time; per-epoch runs restart
    their clocks at 0, so consumers tracking simulated time (the
    invariant monitor's queue/worker clocks) treat this event as a clock
    reset.  ``inserts``/``deletes`` count the *effective* edge changes of
    the batch that produced the next epoch's graph.
    """

    epoch: int
    inserts: int
    deletes: int


# ---------------------------------------------------------------------------
# Sink protocol
# ---------------------------------------------------------------------------

@runtime_checkable
class EventSink(Protocol):
    """Anything that accepts a stream of :class:`TraceEvent` objects.

    Producers treat a sink of ``None`` as "tracing disabled" and skip event
    construction entirely; implementations therefore never see gaps — if a
    sink is attached, it sees every event the run generates.
    """

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - protocol
        ...


class MultiSink:
    """Fan one event stream out to several sinks, in order.

    Lets a :class:`~repro.obs.collector.Collector`, a
    :class:`~repro.metrics.sink.MetricsSink` and a
    :class:`~repro.check.invariants.InvariantMonitor` all observe the same
    run — producers still hold exactly one ``sink``.  ``None`` entries are
    dropped and nested ``MultiSink`` instances are flattened, so callers
    can compose optional sinks without special-casing; a ``MultiSink``
    over zero or one sink is never needed (pass the sink, or ``None``).
    """

    __slots__ = ("sinks",)

    def __init__(self, *sinks: "EventSink | None") -> None:
        flat: list[EventSink] = []
        for sink in sinks:
            if sink is None:
                continue
            if isinstance(sink, MultiSink):
                flat.extend(sink.sinks)
            else:
                flat.append(sink)
        self.sinks: tuple[EventSink, ...] = tuple(flat)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)


class CallbackSink:
    """Adapt a plain callable into an :class:`EventSink`.

    For one-off observers (the service tracer's epoch-boundary wall
    stamps, ad-hoc debugging) that don't warrant a class.  Like every
    sink it is passive: attaching it cannot change simulated results,
    only wall cost — so it still obeys the "disabled means absent" rule
    and should only be attached when its stream is actually consumed.
    """

    __slots__ = ("fn",)

    def __init__(self, fn) -> None:
        self.fn = fn

    def emit(self, event: TraceEvent) -> None:
        self.fn(event)
