"""Structural graph metrics (regenerates Table 2 of the paper).

Table 2 reports, per dataset: vertices, edges, diameter, max in-degree,
max out-degree, and average degree, plus a scale-free / mesh-like type tag.
``compute_stats`` produces all of those for our synthetic stand-ins.  The
exact diameter of the paper's graphs was presumably computed offline; we use
the standard double-sweep pseudo-diameter (a lower bound that is exact on
trees and very tight on road networks), since an exact all-pairs sweep is
pointless for shape-level reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import Csr

__all__ = ["GraphStats", "compute_stats", "pseudo_diameter", "bfs_levels", "degree_cv"]


def bfs_levels(graph: Csr, source: int) -> np.ndarray:
    """Vectorised level-synchronous BFS; returns depth array (-1 = unreached).

    This is the *reference* BFS used for validation and metrics only — the
    BSP/Atos implementations under :mod:`repro.apps.bfs` run through the
    simulator and are the objects of study.
    """
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    depth = np.full(n, -1, dtype=np.int64)
    depth[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        _, dests = graph.gather_neighbors(frontier)
        if dests.size == 0:
            break
        fresh = np.unique(dests[depth[dests] < 0])
        if fresh.size == 0:
            break
        depth[fresh] = level
        frontier = fresh
    return depth


def pseudo_diameter(graph: Csr, *, sweeps: int = 4, seed: int = 0) -> int:
    """Double-sweep pseudo-diameter (iterated).

    Start at an arbitrary vertex, BFS to the farthest vertex, BFS again from
    there, repeat a few sweeps keeping the best eccentricity found.  For
    disconnected graphs the sweep stays within the start component, which is
    the convention the paper's dataset table implicitly follows (diameters
    are of the giant component).
    """
    if graph.num_vertices == 0:
        return 0
    degrees = graph.out_degrees()
    candidates = np.flatnonzero(degrees > 0)
    if candidates.size == 0:
        return 0
    rng = np.random.default_rng(seed)
    # Start from a non-isolated vertex; R-MAT graphs in particular have
    # isolated ids, and a sweep from one reports eccentricity 0.
    v = int(candidates[rng.integers(0, candidates.size)])
    best = 0
    for _ in range(max(1, sweeps)):
        depth = bfs_levels(graph, v)
        reached = depth >= 0
        ecc = int(depth[reached].max())
        best = max(best, ecc)
        # move to (one of) the farthest vertices
        far = np.flatnonzero(depth == ecc)
        v = int(far[0])
        if ecc == 0:
            # singleton component despite outgoing edges (self-loop-free
            # graphs cannot hit this; guard for safety)
            v = int(candidates[rng.integers(0, candidates.size)])
    return best


def degree_cv(graph: Csr) -> float:
    """Coefficient of variation of the out-degree distribution.

    The paper's load-imbalance classification (Table 3) boils down to degree
    variance: scale-free graphs have high CV, meshes have CV near zero.
    """
    deg = graph.out_degrees().astype(np.float64)
    if deg.size == 0:
        return 0.0
    mean = deg.mean()
    if mean == 0:
        return 0.0
    return float(deg.std() / mean)


@dataclass(frozen=True)
class GraphStats:
    """One row of Table 2 (plus the degree-CV used by Table 3)."""

    name: str
    num_vertices: int
    num_edges: int
    diameter: int
    max_in_degree: int
    max_out_degree: int
    avg_degree: float
    degree_cv: float
    graph_type: str  # "scale-free" or "mesh-like"

    def row(self) -> tuple:
        """Values in the column order of the paper's Table 2."""
        return (
            self.name,
            self.num_vertices,
            self.num_edges,
            self.diameter,
            self.max_in_degree,
            self.max_out_degree,
            round(self.avg_degree, 1),
        )


# Classification thresholds.  A mesh has uniform small degree (CV well under
# one); scale-free graphs in the paper have max degree thousands of times the
# mean.  0.5 cleanly separates every generator in this repository.
_SCALE_FREE_CV_THRESHOLD = 0.5


def compute_stats(graph: Csr, *, diameter_sweeps: int = 4) -> GraphStats:
    """Compute the Table 2 row for one graph."""
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    cv = degree_cv(graph)
    gtype = "scale-free" if cv >= _SCALE_FREE_CV_THRESHOLD else "mesh-like"
    return GraphStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        diameter=pseudo_diameter(graph, sweeps=diameter_sweeps),
        max_in_degree=int(in_deg.max()) if in_deg.size else 0,
        max_out_degree=int(out_deg.max()) if out_deg.size else 0,
        avg_degree=float(out_deg.mean()) if out_deg.size else 0.0,
        degree_cv=cv,
        graph_type=gtype,
    )
