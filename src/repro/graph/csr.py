"""Compressed-sparse-row (CSR) graph storage.

The CSR layout mirrors what Atos and Gunrock use on the GPU: an ``indptr``
array of ``num_vertices + 1`` offsets and an ``indices`` array holding the
concatenated neighbor lists.  All algorithm code in this repository reads
neighbor lists through :meth:`Csr.neighbors` (a zero-copy view) or through
vectorised gathers on ``indptr``/``indices`` directly.

Design notes
------------
* Arrays are stored C-contiguous and read-only (``writeable=False``) so that
  algorithm code cannot accidentally mutate the graph mid-run; the discrete
  event simulator relies on the graph being immutable while shared state
  (depths, ranks, colors) evolves.
* Vertex ids and offsets are ``int64`` throughout.  The paper's datasets go
  up to 191M edges; our stand-ins are far smaller, but int64 keeps the code
  path identical to what a full-scale run would need and avoids silent
  overflow in degree prefix sums.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Csr", "from_edges"]


def _as_index_array(values: object) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D index array, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class Csr:
    """An immutable directed graph in compressed-sparse-row form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; ``indptr[v]`` is the
        offset of vertex ``v``'s neighbor list inside ``indices``.
    indices:
        ``int64`` array of length ``num_edges`` with the destination vertex
        of every edge, grouped by source vertex.

    The constructor validates monotonicity of ``indptr`` and the range of
    ``indices`` and then freezes both arrays.
    """

    indptr: np.ndarray
    indices: np.ndarray
    name: str = field(default="csr", compare=False)

    def __post_init__(self) -> None:
        indptr = _as_index_array(self.indptr)
        indices = _as_index_array(self.indices)
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0:
            raise ValueError(f"indptr[0] must be 0, got {indptr[0]}")
        if indptr[-1] != indices.size:
            raise ValueError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) ({indices.size})"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError(
                f"indices out of range [0, {n}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        indptr = np.ascontiguousarray(indptr)
        indices = np.ascontiguousarray(indices)
        indptr.setflags(write=False)
        indices.setflags(write=False)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``|E|`` (CSR entries)."""
        return self.indices.size

    def __len__(self) -> int:
        return self.num_vertices

    def topology_digest(self) -> str:
        """16-hex content digest over the CSR arrays (not the name).

        Two graphs share a digest iff they have byte-identical
        ``indptr``/``indices`` — the dataset half of the service cache key
        (:mod:`repro.service.jobs`), so a renamed or re-loaded copy of the
        same topology hits the same cache entries while any edit, resize
        or regeneration with a different seed misses.  Computed once and
        memoised on the instance (the arrays are frozen, so the digest
        can never go stale).
        """
        cached = getattr(self, "_topology_digest", None)
        if cached is None:
            h = hashlib.sha256()
            h.update(np.int64(self.num_vertices).tobytes())
            h.update(self.indptr.tobytes())
            h.update(self.indices.tobytes())
            cached = h.hexdigest()[:16]
            object.__setattr__(self, "_topology_digest", cached)
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Csr(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )

    # ------------------------------------------------------------------
    # Neighbor access
    # ------------------------------------------------------------------
    def neighbors(self, vertex: int) -> np.ndarray:
        """Zero-copy view of ``vertex``'s out-neighbor list."""
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def degree(self, vertex: int) -> int:
        """Out-degree of one vertex."""
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex, as an ``int64`` array."""
        return np.diff(self.indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex (histogram over ``indices``)."""
        return np.bincount(self.indices, minlength=self.num_vertices).astype(np.int64)

    def frontier_edges(self, frontier: Sequence[int] | np.ndarray) -> int:
        """Total out-degree of a frontier (used by the BSP cost model)."""
        f = _as_index_array(frontier)
        if f.size == 0:
            return 0
        return int((self.indptr[f + 1] - self.indptr[f]).sum())

    def gather_neighbors(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Flatten the neighbor lists of ``frontier`` into one array.

        Returns ``(sources, destinations)`` where ``sources[k]`` is the
        frontier vertex whose edge produced ``destinations[k]``.  This is the
        vectorised equivalent of the load-balancing-search flattening the
        paper describes (Section 3.3) and is the workhorse behind both the
        BSP engine and CTA-worker task processing.
        """
        frontier = _as_index_array(frontier)
        if frontier.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        starts = self.indptr[frontier]
        degrees = self.indptr[frontier + 1] - starts
        total = int(degrees.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        # Classic CSR segmented gather: repeat sources, build flat offsets.
        sources = np.repeat(frontier, degrees)
        seg_offsets = np.repeat(starts - np.concatenate(([0], np.cumsum(degrees)[:-1])), degrees)
        flat = np.arange(total, dtype=np.int64) + seg_offsets
        destinations = self.indices[flat]
        return sources, destinations

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate all directed edges as ``(src, dst)`` pairs (slow path)."""
        for v in range(self.num_vertices):
            for w in self.neighbors(v):
                yield v, int(w)

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(E, 2)`` array (vectorised)."""
        sources = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.out_degrees())
        return np.stack([sources, self.indices], axis=1)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def transpose(self) -> "Csr":
        """Reverse every edge (CSR of the transposed adjacency matrix)."""
        edges = self.edge_array()
        return from_edges(
            self.num_vertices,
            np.stack([edges[:, 1], edges[:, 0]], axis=1),
            name=f"{self.name}^T",
            dedup=False,
        )

    def symmetrize(self) -> "Csr":
        """Union of the graph and its transpose, with duplicates removed."""
        edges = self.edge_array()
        both = np.concatenate([edges, edges[:, ::-1]], axis=0)
        return from_edges(self.num_vertices, both, name=f"{self.name}+sym", dedup=True)

    def remove_self_loops(self) -> "Csr":
        """Drop ``v -> v`` edges."""
        edges = self.edge_array()
        keep = edges[:, 0] != edges[:, 1]
        return from_edges(self.num_vertices, edges[keep], name=self.name, dedup=False)

    def subgraph(self, vertices: Sequence[int] | np.ndarray) -> "Csr":
        """Induced subgraph on ``vertices``, relabelled to ``0..k-1``.

        The relabelling preserves the relative order of the selected vertex
        ids, which keeps the "consecutive ids are likely neighbors" property
        the coloring study depends on.
        """
        vs = np.unique(_as_index_array(vertices))
        remap = np.full(self.num_vertices, -1, dtype=np.int64)
        remap[vs] = np.arange(vs.size, dtype=np.int64)
        edges = self.edge_array()
        keep = (remap[edges[:, 0]] >= 0) & (remap[edges[:, 1]] >= 0)
        kept = edges[keep]
        remapped = np.stack([remap[kept[:, 0]], remap[kept[:, 1]]], axis=1)
        return from_edges(vs.size, remapped, name=f"{self.name}[sub]", dedup=False)

    def with_name(self, name: str) -> "Csr":
        """Return the same graph under a different display name."""
        return Csr(self.indptr, self.indices, name=name)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def is_symmetric(self) -> bool:
        """True when every edge has a reverse edge."""
        fwd = self.edge_array()
        a = fwd[np.lexsort((fwd[:, 1], fwd[:, 0]))]
        rev = fwd[:, ::-1]
        b = rev[np.lexsort((rev[:, 1], rev[:, 0]))]
        return bool(np.array_equal(a, b))

    def has_sorted_neighbor_lists(self) -> bool:
        """True when each vertex's neighbor list is ascending."""
        for v in range(self.num_vertices):
            nb = self.neighbors(v)
            if nb.size > 1 and np.any(np.diff(nb) < 0):
                return False
        return True


def from_edges(
    num_vertices: int,
    edges: Iterable[tuple[int, int]] | np.ndarray,
    *,
    name: str = "csr",
    dedup: bool = True,
    sort_neighbors: bool = True,
) -> Csr:
    """Build a :class:`Csr` from an edge list.

    Parameters
    ----------
    num_vertices:
        The vertex-id domain is ``[0, num_vertices)``.
    edges:
        ``(E, 2)`` array or iterable of ``(src, dst)`` pairs.
    dedup:
        Remove duplicate edges (parallel edges) when True.
    sort_neighbors:
        Sort each neighbor list ascending (canonical CSR).
    """
    if num_vertices < 0:
        raise ValueError("num_vertices must be non-negative")
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edges must be (E, 2), got shape {arr.shape}")
    if arr.size and (arr.min() < 0 or arr.max() >= num_vertices):
        raise ValueError("edge endpoints out of range")
    if sort_neighbors or dedup:
        order = np.lexsort((arr[:, 1], arr[:, 0]))
        arr = arr[order]
    if dedup and arr.shape[0] > 1:
        keep = np.concatenate(([True], np.any(arr[1:] != arr[:-1], axis=1)))
        arr = arr[keep]
    counts = np.bincount(arr[:, 0], minlength=num_vertices).astype(np.int64)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return Csr(indptr=indptr, indices=arr[:, 1].copy(), name=name)
