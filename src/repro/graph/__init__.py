"""Graph substrate: CSR storage, generators, datasets, metrics, and I/O.

This subpackage is the data layer every other part of the reproduction sits
on.  The paper's algorithms (BFS, PageRank, graph coloring) all walk a
compressed-sparse-row adjacency structure; :class:`~repro.graph.csr.Csr` is
the single canonical representation used by the BSP baseline, the Atos
scheduler, the analysis code, and the benchmark harness.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.csr import Csr, from_edges
from repro.graph.datasets import (
    DATASETS,
    DatasetInfo,
    hollywood_sim,
    indochina_sim,
    load_dataset,
    resolve_dataset,
    road_usa_sim,
    roadnet_ca_sim,
    soc_livejournal_sim,
)
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    grid_mesh,
    path_graph,
    rmat,
    road_network,
    star_graph,
)
from repro.graph.metrics import GraphStats, compute_stats, pseudo_diameter
from repro.graph.permute import crawl_order_relabel, permute_vertices, random_permutation

__all__ = [
    "Csr",
    "from_edges",
    "GraphBuilder",
    "DATASETS",
    "DatasetInfo",
    "load_dataset",
    "resolve_dataset",
    "soc_livejournal_sim",
    "hollywood_sim",
    "indochina_sim",
    "road_usa_sim",
    "roadnet_ca_sim",
    "rmat",
    "barabasi_albert",
    "erdos_renyi",
    "grid_mesh",
    "road_network",
    "star_graph",
    "path_graph",
    "complete_graph",
    "GraphStats",
    "compute_stats",
    "pseudo_diameter",
    "permute_vertices",
    "random_permutation",
    "crawl_order_relabel",
]
