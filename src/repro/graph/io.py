"""Graph serialization: edge-list text and a MatrixMarket-like format.

The original datasets ship as MatrixMarket / SNAP edge lists; this module
provides compatible load/save so users can run the reproduction against the
real graphs if they have them, and so tests can round-trip graphs to disk.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.graph.csr import Csr, from_edges

__all__ = ["save_edge_list", "load_edge_list", "save_mtx", "load_mtx"]


def save_edge_list(graph: Csr, path: str | os.PathLike, *, header: bool = True) -> None:
    """Write ``src dst`` pairs, one per line, with an optional ``#`` header."""
    path = Path(path)
    edges = graph.edge_array()
    with path.open("w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# {graph.name}\n")
            fh.write(f"# vertices={graph.num_vertices} edges={graph.num_edges}\n")
        np.savetxt(fh, edges, fmt="%d")


def load_edge_list(
    path: str | os.PathLike, *, num_vertices: int | None = None, name: str | None = None
) -> Csr:
    """Read an edge list written by :func:`save_edge_list` or SNAP-style.

    Lines starting with ``#`` are comments.  If ``num_vertices`` is omitted
    it is inferred as ``max id + 1``.  A ``vertices=N`` header comment, when
    present, wins over inference (so isolated trailing vertices survive the
    round trip).
    """
    path = Path(path)
    header_vertices: int | None = None
    rows: list[tuple[int, int]] = []
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "vertices=" in line:
                    token = line.split("vertices=")[1].split()[0]
                    header_vertices = int(token)
                continue
            parts = line.split()
            rows.append((int(parts[0]), int(parts[1])))
    if num_vertices is None:
        num_vertices = header_vertices
    if num_vertices is None:
        num_vertices = (max(max(r) for r in rows) + 1) if rows else 0
    return from_edges(
        num_vertices,
        np.asarray(rows, dtype=np.int64).reshape(-1, 2),
        name=name or path.stem,
    )


def save_mtx(graph: Csr, path: str | os.PathLike) -> None:
    """Write a MatrixMarket ``coordinate pattern general`` file (1-indexed)."""
    path = Path(path)
    edges = graph.edge_array()
    with path.open("w", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern general\n")
        fh.write(f"% {graph.name}\n")
        fh.write(f"{graph.num_vertices} {graph.num_vertices} {graph.num_edges}\n")
        np.savetxt(fh, edges + 1, fmt="%d")


def load_mtx(path: str | os.PathLike, *, name: str | None = None) -> Csr:
    """Read a MatrixMarket coordinate file (pattern or weighted; 1-indexed).

    Weights, if present, are ignored — the paper's three algorithms are all
    unweighted.
    """
    path = Path(path)
    dims: tuple[int, int, int] | None = None
    rows: list[tuple[int, int]] = []
    with path.open("r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.startswith("%%MatrixMarket"):
            raise ValueError(f"{path} is not a MatrixMarket file")
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            if dims is None:
                dims = (int(parts[0]), int(parts[1]), int(parts[2]))
                continue
            rows.append((int(parts[0]) - 1, int(parts[1]) - 1))
    if dims is None:
        raise ValueError(f"{path} has no dimension line")
    n = max(dims[0], dims[1])
    return from_edges(
        n, np.asarray(rows, dtype=np.int64).reshape(-1, 2), name=name or path.stem
    )
