"""Vertex-ID permutation (Section 6.3 of the paper).

The paper observes that on most real graphs, numerically close vertex ids
are likely to be neighbors, and that this semantic ordering drives the large
overwork of discrete-kernel graph coloring.  Their fix — randomly permuting
vertex ids — drops overwork below 1.5x for every implementation.  This
module implements that permutation so the benchmark harness can rerun the
experiment both ways.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Csr, from_edges

__all__ = [
    "random_permutation",
    "block_shuffle_permutation",
    "permute_vertices",
    "locality_score",
    "crawl_order_relabel",
]


def random_permutation(num_vertices: int, seed: int = 0) -> np.ndarray:
    """A permutation array ``p`` where old id ``v`` becomes new id ``p[v]``."""
    rng = np.random.default_rng(seed)
    return rng.permutation(num_vertices).astype(np.int64)


def permute_vertices(graph: Csr, permutation: np.ndarray | None = None, *, seed: int = 0) -> Csr:
    """Relabel every vertex ``v`` as ``permutation[v]``.

    With ``permutation=None`` a random permutation with the given seed is
    used.  The graph's structure (and thus all algorithm outputs up to
    relabelling) is unchanged; only the *queue insertion order* downstream
    algorithms see is scrambled, which is exactly the experimental knob from
    Section 6.3.
    """
    if permutation is None:
        permutation = random_permutation(graph.num_vertices, seed=seed)
    p = np.asarray(permutation, dtype=np.int64)
    if p.shape != (graph.num_vertices,):
        raise ValueError(
            f"permutation must have shape ({graph.num_vertices},), got {p.shape}"
        )
    check = np.zeros(graph.num_vertices, dtype=bool)
    check[p] = True
    if not check.all():
        raise ValueError("permutation is not a bijection on the vertex set")
    edges = graph.edge_array()
    remapped = np.stack([p[edges[:, 0]], p[edges[:, 1]]], axis=1)
    return from_edges(
        graph.num_vertices, remapped, name=f"{graph.name}+perm", dedup=False
    )


def block_shuffle_permutation(num_vertices: int, block: int, seed: int = 0) -> np.ndarray:
    """Permutation that shuffles ids only within fixed-size blocks.

    Vertices keep their coarse position (block index) but lose fine-grained
    ordering, so the typical id distance between formerly-adjacent labels
    becomes uniform within ``±block``.  Used to give the road-network
    stand-ins the *weak* id locality of real SNAP road datasets — neither
    the extreme row-major locality of a raw grid nor the zero locality of
    a full shuffle.
    """
    if block <= 0:
        raise ValueError("block must be positive")
    rng = np.random.default_rng(seed)
    perm = np.arange(num_vertices, dtype=np.int64)
    for lo in range(0, num_vertices, block):
        hi = min(lo + block, num_vertices)
        perm[lo:hi] = lo + rng.permutation(hi - lo)
    return perm


def crawl_order_relabel(graph: Csr, *, start: int = 0) -> Csr:
    """Relabel vertices in breadth-first crawl order.

    Real-world graph datasets (web crawls, social-network dumps) number
    their vertices in discovery order, which is why "vertices whose vertex
    ID are numerically close are more likely to be neighbors" (paper
    Section 6.3).  Synthetic generators like R-MAT produce *random* ids, so
    the scale-free dataset stand-ins apply this relabelling to restore the
    property — giving the coloring permutation study something real to
    destroy.  Unreached vertices are appended after the crawl, in id order.
    """
    n = graph.num_vertices
    if n == 0:
        return graph
    order = np.full(n, -1, dtype=np.int64)
    counter = 0
    frontier = np.asarray([start % n], dtype=np.int64)
    order[frontier[0]] = counter
    counter += 1
    while frontier.size:
        _, nbrs = graph.gather_neighbors(frontier)
        if nbrs.size == 0:
            break
        fresh_mask = order[nbrs] < 0
        # stable first-occurrence dedup keeps discovery order deterministic
        fresh, first_idx = np.unique(nbrs[fresh_mask], return_index=True)
        fresh = fresh[np.argsort(first_idx)]
        if fresh.size == 0:
            break
        order[fresh] = counter + np.arange(fresh.size, dtype=np.int64)
        counter += fresh.size
        frontier = fresh
    untouched = np.flatnonzero(order < 0)
    if untouched.size:
        order[untouched] = counter + np.arange(untouched.size, dtype=np.int64)
    return permute_vertices(graph, order).with_name(graph.name)


def locality_score(graph: Csr) -> float:
    """Fraction of edges whose endpoints are within 32 ids of each other.

    A proxy for the "consecutive queue entries are neighbors" property: high
    on lattice/road graphs and on naturally-ordered crawls, near the random
    baseline after :func:`permute_vertices`.
    """
    if graph.num_edges == 0:
        return 0.0
    edges = graph.edge_array()
    near = np.abs(edges[:, 0] - edges[:, 1]) <= 32
    return float(near.mean())
