"""Incremental graph construction.

:class:`GraphBuilder` accumulates edges (appending in O(1) amortized) and
freezes into an immutable :class:`~repro.graph.csr.Csr`.  Useful for
programmatic construction (interference graphs, generated workloads,
streaming loads) where materialising a full edge array up front is
awkward.  Chunked storage keeps peak memory at ~2x the final edge list.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Csr, from_edges

__all__ = ["GraphBuilder"]

_CHUNK = 65536


class GraphBuilder:
    """Append-only edge accumulator with a ``build()`` freeze step."""

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self.num_vertices = num_vertices
        self._chunks: list[np.ndarray] = []
        self._current = np.empty((_CHUNK, 2), dtype=np.int64)
        self._fill = 0
        self._count = 0

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Edges added so far (before dedup)."""
        return self._count

    def _flush(self) -> None:
        if self._fill:
            self._chunks.append(self._current[: self._fill].copy())
            self._fill = 0

    def add_edge(self, src: int, dst: int) -> "GraphBuilder":
        """Append one directed edge; returns self for chaining."""
        if not (0 <= src < self.num_vertices and 0 <= dst < self.num_vertices):
            raise ValueError(f"edge ({src}, {dst}) out of range")
        if self._fill == _CHUNK:
            self._flush()
        self._current[self._fill, 0] = src
        self._current[self._fill, 1] = dst
        self._fill += 1
        self._count += 1
        return self

    def add_undirected(self, u: int, v: int) -> "GraphBuilder":
        """Append both directions of an undirected edge."""
        return self.add_edge(u, v).add_edge(v, u)

    def add_edges(self, edges: np.ndarray) -> "GraphBuilder":
        """Append a batch of ``(E, 2)`` edges."""
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            return self
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be (E, 2)")
        if arr.min() < 0 or arr.max() >= self.num_vertices:
            raise ValueError("edge endpoints out of range")
        self._flush()
        self._chunks.append(arr.copy())
        self._count += arr.shape[0]
        return self

    def build(self, *, name: str = "built", dedup: bool = True) -> Csr:
        """Freeze into a CSR; the builder remains usable afterwards."""
        self._flush()
        if self._chunks:
            edges = np.concatenate(self._chunks, axis=0)
        else:
            edges = np.empty((0, 2), dtype=np.int64)
        return from_edges(self.num_vertices, edges, name=name, dedup=dedup)
