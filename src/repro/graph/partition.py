"""Graph partitioning for the multi-device simulation.

Distributing a graph over N devices means answering "who owns vertex v"
(edge-cut) or "who owns edge e" (vertex-cut).  The partition quality
determines the communication a run pays: every push whose producer device
differs from the item's owner crosses the interconnect, so the cut
fraction is a direct proxy for forwarded traffic, and the balance decides
whether any device idles while another drowns.

Three placement methods are provided, each available for both cuts:

* ``hash`` — multiplicative-hash scatter.  Placement-oblivious: near
  perfect vertex balance, worst-case cut (a random k-partition cuts
  ``(k-1)/k`` of all edges).  The baseline a smarter method must beat.
* ``contiguous`` — consecutive id ranges, split so every part carries an
  equal share of *edges* (not vertices).  On generators whose ids have
  locality (``grid_mesh`` rows, ``road_network``) this is a cheap
  geometric cut; on scrambled ids it degenerates to hash quality.
* ``greedy`` — degree-balanced greedy: vertices in decreasing-degree
  order, each placed on the part where most of its already-placed
  neighbors live, subject to an edge-load cap.  The classic LDG-style
  streaming heuristic (linear deterministic greedy).

Quality is reported as :class:`PartitionQuality` — cut fraction,
replication factor and edge balance — the three axes the multi-GPU
scheduling literature (and ``benchmarks/bench_multigpu.py``) compares
partitioners on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import Csr

__all__ = [
    "Partition",
    "PartitionQuality",
    "PARTITION_METHODS",
    "PARTITION_KINDS",
    "PARTITION_CHOICES",
    "resolve_partition_choice",
    "partition_graph",
    "partition_quality",
]

#: placement methods, applicable to either cut kind
PARTITION_METHODS = ("hash", "contiguous", "greedy")

#: what gets assigned: vertices (edge-cut) or edges (vertex-cut)
PARTITION_KINDS = ("edge", "vertex")

#: CLI spellings (``--partition``): a bare kind uses the greedy method for
#: that cut; a bare method applies it to the default edge cut
PARTITION_CHOICES = ("edge", "vertex", "hash", "contiguous", "greedy")


def resolve_partition_choice(choice: str) -> tuple[str, str]:
    """Map a CLI ``--partition`` token to ``(kind, method)``."""
    if choice in ("edge", "vertex"):
        return choice, "greedy"
    if choice in PARTITION_METHODS:
        return "edge", choice
    raise ValueError(
        f"unknown partition {choice!r}; known: {', '.join(PARTITION_CHOICES)}"
    )


@dataclass(frozen=True)
class Partition:
    """One k-way placement of a graph.

    ``assignment`` maps every vertex to its owner part.  For a vertex-cut
    the primary assignment is derived (the part holding the majority of
    the vertex's incident edges) and ``edge_owner`` carries the real
    per-CSR-edge placement.
    """

    kind: str
    method: str
    num_parts: int
    assignment: np.ndarray = field(repr=False)
    edge_owner: np.ndarray | None = field(repr=False, default=None)
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in PARTITION_KINDS:
            raise ValueError(f"kind must be one of {PARTITION_KINDS}, got {self.kind!r}")
        if self.method not in PARTITION_METHODS:
            raise ValueError(
                f"method must be one of {PARTITION_METHODS}, got {self.method!r}"
            )
        if self.num_parts < 1:
            raise ValueError("num_parts must be >= 1")

    @property
    def num_vertices(self) -> int:
        return int(self.assignment.size)

    def owner_of(self, items: np.ndarray) -> np.ndarray:
        """Owner part per work item.

        Items are vertex ids, but applications overload the encoding —
        the coloring kernel pushes ``±(v + 1)`` tags, so ``abs(item)``
        ranges up to ``num_vertices`` inclusive.  The lookup keys on
        ``abs(item) % num_vertices``: stable per item value (which is
        what routing and conservation need), and the identity mapping for
        plain vertex-id items.
        """
        return self.assignment[np.abs(items) % self.num_vertices]

    def parts(self) -> list[np.ndarray]:
        """Vertex ids of each part (ascending id order within a part)."""
        return [
            np.flatnonzero(self.assignment == p).astype(np.int64)
            for p in range(self.num_parts)
        ]


@dataclass(frozen=True)
class PartitionQuality:
    """The three quality axes of one partition.

    ``cut_fraction`` — fraction of edges whose endpoints live on
    different parts (edge-cut view; for a vertex-cut this is the fraction
    of edges not owned by their source's primary part).
    ``replication_factor`` — average number of parts that need a copy of
    a vertex (1.0 = no replication).  Edge-cut replicates boundary
    vertices as ghosts; vertex-cut replicates every split vertex.
    ``balance`` — max part edge load over the mean (1.0 = perfect).
    """

    cut_fraction: float
    replication_factor: float
    balance: float


# ---------------------------------------------------------------------------
# Vertex placement methods (shared by both cuts)
# ---------------------------------------------------------------------------

def _hash_ids(ids: np.ndarray, num_parts: int, seed: int) -> np.ndarray:
    """Multiplicative hash — the Knuth constant the engine's jitter uses."""
    h = (ids.astype(np.uint64) + np.uint64(seed)) * np.uint64(2654435761)
    return ((h >> np.uint64(16)) % np.uint64(num_parts)).astype(np.int64)


def _contiguous_vertex_split(graph: Csr, num_parts: int) -> np.ndarray:
    # split ids so every range carries ~|E|/k edges: cut the cumulative
    # degree curve (indptr already is that prefix sum) at k equal levels
    n = graph.num_vertices
    targets = graph.num_edges * np.arange(1, num_parts, dtype=np.float64) / num_parts
    bounds = np.searchsorted(graph.indptr[1:], targets, side="left")
    assignment = np.zeros(n, dtype=np.int64)
    prev = 0
    for part, bound in enumerate(bounds):
        assignment[prev:bound] = part
        prev = bound
    assignment[prev:] = num_parts - 1
    return assignment


def _greedy_vertex_assign(graph: Csr, num_parts: int) -> np.ndarray:
    # LDG-style streaming: highest-degree vertices place first (they are
    # the expensive ones to get wrong); each goes to the part where most
    # already-placed neighbors live, ties and overloaded parts resolved
    # toward the lightest edge load.  The load cap keeps balance bounded.
    n = graph.num_vertices
    degrees = np.diff(graph.indptr)
    order = np.argsort(-degrees, kind="stable")
    assignment = np.full(n, -1, dtype=np.int64)
    load = np.zeros(num_parts, dtype=np.int64)
    cap = max(1.0, 1.1 * graph.num_edges / num_parts)
    indptr, indices = graph.indptr, graph.indices
    for v in order:
        nbr_parts = assignment[indices[indptr[v] : indptr[v + 1]]]
        placed = nbr_parts[nbr_parts >= 0]
        best = -1
        if placed.size:
            counts = np.bincount(placed, minlength=num_parts)
            counts = np.where(load < cap, counts, -1)
            if counts.max() > 0:
                best = int(counts.argmax())
        if best < 0:
            best = int(load.argmin())
        assignment[v] = best
        load[best] += degrees[v]
    return assignment


# ---------------------------------------------------------------------------
# Edge placement (vertex-cut)
# ---------------------------------------------------------------------------

def _edge_endpoints(graph: Csr) -> tuple[np.ndarray, np.ndarray]:
    src = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.indptr)
    )
    return src, graph.indices.astype(np.int64)


def _edge_owner_for(
    graph: Csr, num_parts: int, method: str, seed: int
) -> np.ndarray:
    src, dst = _edge_endpoints(graph)
    if method == "hash":
        # hash the undirected endpoint pair so both directions of a
        # symmetrized edge land on the same part
        lo = np.minimum(src, dst).astype(np.uint64)
        hi = np.maximum(src, dst).astype(np.uint64)
        key = lo * np.uint64(0x9E3779B97F4A7C15) + hi
        return _hash_ids(key.astype(np.int64) & np.int64(0x7FFFFFFFFFFFFFFF),
                         num_parts, seed)
    if method == "contiguous":
        m = graph.num_edges
        bounds = (m * np.arange(1, num_parts + 1)) // num_parts
        owner = np.zeros(m, dtype=np.int64)
        prev = 0
        for part, bound in enumerate(bounds):
            owner[prev:bound] = part
            prev = bound
        return owner
    # greedy vertex-cut: place edges along the greedy *vertex* placement —
    # an edge goes to its lower-degree endpoint's part (the high-degree
    # endpoint is the one worth splitting, which is exactly what
    # degree-based vertex-cuts like PowerGraph's do)
    vert = _greedy_vertex_assign(graph, num_parts)
    degrees = np.diff(graph.indptr)
    pick_src = degrees[src] <= degrees[dst]
    return np.where(pick_src, vert[src], vert[dst]).astype(np.int64)


def _primary_owner(
    graph: Csr, edge_owner: np.ndarray, num_parts: int
) -> np.ndarray:
    # majority vote over each vertex's incident edges; isolated vertices
    # fall back to an id hash so every vertex has exactly one owner
    src, dst = _edge_endpoints(graph)
    votes = np.zeros((graph.num_vertices, num_parts), dtype=np.int64)
    np.add.at(votes, (src, edge_owner), 1)
    np.add.at(votes, (dst, edge_owner), 1)
    assignment = votes.argmax(axis=1).astype(np.int64)
    isolated = votes.sum(axis=1) == 0
    if isolated.any():
        ids = np.flatnonzero(isolated).astype(np.int64)
        assignment[ids] = _hash_ids(ids, num_parts, 0)
    return assignment


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def partition_graph(
    graph: Csr,
    num_parts: int,
    *,
    kind: str = "edge",
    method: str = "hash",
    seed: int = 0,
) -> Partition:
    """Place ``graph`` on ``num_parts`` parts; see the module docstring."""
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if kind not in PARTITION_KINDS:
        raise ValueError(f"kind must be one of {PARTITION_KINDS}, got {kind!r}")
    if method not in PARTITION_METHODS:
        raise ValueError(f"method must be one of {PARTITION_METHODS}, got {method!r}")
    name = f"{graph.name}/{kind}-{method}-{num_parts}"
    if num_parts == 1:
        assignment = np.zeros(graph.num_vertices, dtype=np.int64)
        edge_owner = (
            np.zeros(graph.num_edges, dtype=np.int64) if kind == "vertex" else None
        )
        return Partition(kind, method, 1, assignment, edge_owner, name)
    if kind == "vertex":
        edge_owner = _edge_owner_for(graph, num_parts, method, seed)
        assignment = _primary_owner(graph, edge_owner, num_parts)
        return Partition(kind, method, num_parts, assignment, edge_owner, name)
    if method == "hash":
        ids = np.arange(graph.num_vertices, dtype=np.int64)
        assignment = _hash_ids(ids, num_parts, seed)
    elif method == "contiguous":
        assignment = _contiguous_vertex_split(graph, num_parts)
    else:
        assignment = _greedy_vertex_assign(graph, num_parts)
    return Partition(kind, method, num_parts, assignment, None, name)


def partition_quality(partition: Partition, graph: Csr) -> PartitionQuality:
    """Measure ``partition`` against ``graph`` (see :class:`PartitionQuality`)."""
    if partition.num_vertices != graph.num_vertices:
        raise ValueError(
            f"partition covers {partition.num_vertices} vertices, "
            f"graph has {graph.num_vertices}"
        )
    src, dst = _edge_endpoints(graph)
    n, m = graph.num_vertices, graph.num_edges
    assignment = partition.assignment
    k = partition.num_parts
    if m == 0:
        return PartitionQuality(0.0, 1.0, 1.0)
    if partition.kind == "vertex":
        edge_owner = partition.edge_owner
        cut = float(np.count_nonzero(edge_owner != assignment[src])) / m
        # replication: number of distinct parts touching each vertex
        copies = np.zeros((n, k), dtype=bool)
        copies[src, edge_owner] = True
        copies[dst, edge_owner] = True
        per_vertex = copies.sum(axis=1)
        replication = float(np.maximum(per_vertex, 1).sum()) / n
        load = np.bincount(edge_owner, minlength=k)
    else:
        cut_mask = assignment[src] != assignment[dst]
        cut = float(np.count_nonzero(cut_mask)) / m
        # each cut edge makes its dst a ghost on its src's part (and the
        # symmetric edge covers the other direction); count unique
        # (ghost-vertex, part) pairs on top of the n primary copies
        ghost = np.unique(dst[cut_mask] * np.int64(k) + assignment[src[cut_mask]])
        replication = (n + ghost.size) / n
        load = np.bincount(assignment[src], minlength=k)
    balance = float(load.max() / (m / k)) if m else 1.0
    return PartitionQuality(
        cut_fraction=cut, replication_factor=replication, balance=balance
    )
