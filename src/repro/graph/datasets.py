"""Synthetic stand-ins for the paper's five evaluation datasets.

The paper (Table 2) evaluates on three scale-free graphs and two mesh-like
road networks:

==================  ==========  =======  ========  ==========
paper dataset       vertices    edges    diameter  type
==================  ==========  =======  ========  ==========
soc-LiveJournal1    4.8M        68M      20        scale-free
hollywood-2009      1.1M        112M     11        scale-free (dense)
indochina-2004      7.4M        191M     26        scale-free (very skewed)
road_usa            23.9M       57M      6809      mesh-like
roadNet-CA          1.9M        5M       849       mesh-like
==================  ==========  =======  ========  ==========

Those graphs cannot be bundled, and at full scale a pure-Python
discrete-event simulation would take hours per run, so each stand-in is a
deterministic synthetic graph ~100x smaller that preserves the two
structural axes the paper's analysis actually uses (see DESIGN.md §1):
degree skew for the scale-free trio and diameter/low-degree for the road
pair.  ``indochina_sim`` uses a more skewed R-MAT than ``livejournal_sim``
to mirror indochina-2004's extreme max in-degree (256k vs 14k), and
``hollywood_sim`` uses dense preferential attachment to mirror
hollywood-2009's high average degree.

Each loader takes a ``size`` preset:

* ``"tiny"``   — hundreds of vertices; unit tests.
* ``"small"``  — a few thousand; fast benchmarks and figures.
* ``"default"`` — tens of thousands; headline table runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph.csr import Csr
from repro.graph.generators import rmat, road_network
from repro.graph.permute import (
    block_shuffle_permutation,
    crawl_order_relabel,
    permute_vertices,
)

__all__ = [
    "DatasetInfo",
    "DATASETS",
    "SIZES",
    "load_dataset",
    "resolve_dataset",
    "soc_livejournal_sim",
    "hollywood_sim",
    "indochina_sim",
    "road_usa_sim",
    "roadnet_ca_sim",
]

SIZES = ("tiny", "small", "default")


def _check_size(size: str) -> None:
    if size not in SIZES:
        raise ValueError(f"size must be one of {SIZES}, got {size!r}")


def soc_livejournal_sim(size: str = "default", *, seed: int = 1) -> Csr:
    """Stand-in for soc-LiveJournal1: Graph500-parameter R-MAT.

    Matched properties: heavy-tailed degrees (max degree thousands of times
    the mean), low diameter (~10), avg degree ~15.
    """
    _check_size(size)
    scale = {"tiny": 9, "small": 12, "default": 14}[size]
    g = rmat(scale, edge_factor=8, seed=seed, name="soc-LiveJournal1-sim")
    return crawl_order_relabel(g)


def hollywood_sim(size: str = "default", *, seed: int = 2) -> Csr:
    """Stand-in for hollywood-2009: dense R-MAT.

    Matched properties: scale-free with *high average degree* (the paper's
    hollywood-2009 averages 105 edges/vertex; edge_factor=24 gives ~31
    post-dedup) and crawl-order id locality.  R-MAT rather than preferential
    attachment because its recursive structure carries the community-like
    clustering that makes crawl-order ids local — the property the
    Section 6.3 permutation study destroys.
    """
    _check_size(size)
    scale = {"tiny": 8, "small": 11, "default": 13}[size]
    return crawl_order_relabel(
        rmat(scale, edge_factor=24, seed=seed, name="hollywood-2009-sim")
    )


def indochina_sim(size: str = "default", *, seed: int = 3) -> Csr:
    """Stand-in for indochina-2004: extra-skewed R-MAT.

    Matched properties: web-crawl-like extreme degree skew (paper max
    in-degree 256k vs avg 8) achieved with a larger R-MAT ``a`` quadrant.
    """
    _check_size(size)
    scale = {"tiny": 9, "small": 12, "default": 14}[size]
    return crawl_order_relabel(
        rmat(scale, edge_factor=8, a=0.65, b=0.15, c=0.15, seed=seed, name="indochina-2004-sim")
    )


def road_usa_sim(size: str = "default", *, seed: int = 4) -> Csr:
    """Stand-in for road_usa: the larger, higher-diameter road mesh."""
    _check_size(size)
    rows, cols = {"tiny": (24, 20), "small": (90, 70), "default": (260, 230)}[size]
    # Block-shuffled ids: SNAP road-network ids carry weak locality (ids
    # come from source numbering, not a crawl), so the stand-in shuffles
    # within 512-id blocks; the Section 6.3 strong-locality story
    # concerns the crawl-ordered scale-free datasets.
    g = road_network(rows, cols, seed=seed, name="road_usa-sim")
    perm = block_shuffle_permutation(g.num_vertices, 512, seed=seed + 100)
    return permute_vertices(g, perm).with_name("road_usa-sim")


def roadnet_ca_sim(size: str = "default", *, seed: int = 5) -> Csr:
    """Stand-in for roadNet-CA: the smaller road mesh."""
    _check_size(size)
    rows, cols = {"tiny": (16, 14), "small": (50, 40), "default": (120, 100)}[size]
    g = road_network(rows, cols, seed=seed, name="roadNet-CA-sim")
    perm = block_shuffle_permutation(g.num_vertices, 512, seed=seed + 100)
    return permute_vertices(g, perm).with_name("roadNet-CA-sim")


@dataclass(frozen=True)
class DatasetInfo:
    """Registry entry: loader plus the paper's reported stats for context."""

    key: str
    loader: Callable[..., Csr]
    graph_type: str  # "scale-free" | "mesh-like"
    paper_vertices: str
    paper_edges: str
    paper_diameter: int


DATASETS: dict[str, DatasetInfo] = {
    "soc-LiveJournal1": DatasetInfo(
        "soc-LiveJournal1", soc_livejournal_sim, "scale-free", "4.8M", "68M", 20
    ),
    "hollywood-2009": DatasetInfo(
        "hollywood-2009", hollywood_sim, "scale-free", "1.1M", "112M", 11
    ),
    "indochina-2004": DatasetInfo(
        "indochina-2004", indochina_sim, "scale-free", "7.4M", "191M", 26
    ),
    "road_usa": DatasetInfo("road_usa", road_usa_sim, "mesh-like", "23.9M", "57M", 6809),
    "roadNet-CA": DatasetInfo("roadNet-CA", roadnet_ca_sim, "mesh-like", "1.9M", "5M", 849),
}

SCALE_FREE_KEYS = ("soc-LiveJournal1", "hollywood-2009", "indochina-2004")
MESH_KEYS = ("road_usa", "roadNet-CA")


def _normalize(name: str) -> str:
    return "".join(c for c in name.lower() if c.isalnum())


def _build_aliases() -> dict[str, str]:
    """Alias table: paper keys, loader names (``roadnet_ca_sim``) and their
    ``_sim``-less forms all resolve to the registry key."""
    aliases: dict[str, str] = {}
    for key, info in DATASETS.items():
        aliases[_normalize(key)] = key
        loader_name = _normalize(info.loader.__name__)
        aliases[loader_name] = key
        if loader_name.endswith("sim"):
            aliases[loader_name[: -len("sim")]] = key
    return aliases


_ALIASES = _build_aliases()


def resolve_dataset(name: str) -> str:
    """Map a dataset spelling to its registry key.

    Accepts the paper name (``roadNet-CA``), the loader-function name
    (``roadnet_ca_sim``) or the sim-less form (``roadnet-ca``),
    case-insensitively and ignoring punctuation.
    """
    key = _ALIASES.get(_normalize(name))
    if key is None:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    return key


def load_dataset(key: str, size: str = "default") -> Csr:
    """Load one of the five stand-ins by any accepted dataset spelling.

    Builds are memoised process-wide through
    :func:`repro.perf.buildcache.cached_graph`: every Lab, benchmark
    repeat and sweep worker that asks for the same (dataset, size) pair
    shares one read-only :class:`Csr` instance.
    """
    from repro.perf.buildcache import cached_graph

    rkey = resolve_dataset(key)
    return cached_graph(
        ("dataset", rkey, size), lambda: DATASETS[rkey].loader(size)
    )
