"""Synthetic graph generators.

The paper evaluates on three scale-free graphs (soc-LiveJournal1,
hollywood-2009, indochina-2004) and two mesh-like road networks (road_usa,
roadNet-CA).  We cannot ship those datasets, so :mod:`repro.graph.datasets`
builds scaled-down stand-ins from the generators in this module.  The
analysis in the paper keys on exactly two structural properties:

* **degree variance** — scale-free graphs have heavy-tailed degree
  distributions (load imbalance, Section 6.2);
* **diameter vs. average degree** — road networks have huge diameters and
  degree ≈ 2-3 (small-frontier problem, Section 6.2).

``rmat`` and ``barabasi_albert`` produce the former, ``grid_mesh`` and
``road_network`` the latter.  All generators are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Csr, from_edges

__all__ = [
    "rmat",
    "barabasi_albert",
    "erdos_renyi",
    "grid_mesh",
    "road_network",
    "star_graph",
    "path_graph",
    "complete_graph",
    "bipartite_graph",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | np.random.Generator | None = 0,
    symmetric: bool = True,
    name: str = "rmat",
) -> Csr:
    """Recursive-MATrix (R-MAT / Graph500-style) scale-free generator.

    Produces ``2**scale`` vertices and about ``edge_factor * 2**scale``
    directed edges before dedup.  With the default Graph500 parameters the
    degree distribution is heavy-tailed: a handful of vertices collect a
    large fraction of the edges, which is precisely the load-imbalance
    driver the paper analyses on soc-LiveJournal-class graphs.

    Parameters
    ----------
    scale:
        log2 of the vertex count.
    edge_factor:
        average directed degree before deduplication.
    a, b, c:
        R-MAT quadrant probabilities; the fourth is ``1 - a - b - c``.
    symmetric:
        also insert every reverse edge (the paper's traversals treat the
        graphs as effectively traversable in CSR direction; symmetric keeps
        BFS reachability high).

    Builds with a reproducible ``int`` seed are memoised process-wide
    (:mod:`repro.perf.buildcache`); ``seed=None`` (OS entropy) and live
    ``numpy.random.Generator`` instances bypass the cache.
    """
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        from repro.perf.buildcache import cached_graph

        return cached_graph(
            ("rmat", scale, edge_factor, a, b, c, int(seed), symmetric, name),
            lambda: _rmat_build(
                scale, edge_factor, a=a, b=b, c=c, seed=seed, symmetric=symmetric, name=name
            ),
        )
    return _rmat_build(scale, edge_factor, a=a, b=b, c=c, seed=seed, symmetric=symmetric, name=name)


def _rmat_build(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | np.random.Generator | None = 0,
    symmetric: bool = True,
    name: str = "rmat",
) -> Csr:
    if scale < 0:
        raise ValueError("scale must be >= 0")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative")
    rng = _rng(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Vectorised R-MAT: each bit of the vertex id is drawn independently.
    for bit in range(scale):
        r = rng.random(m)
        # quadrant: 0 -> (0,0), 1 -> (0,1), 2 -> (1,0), 3 -> (1,1)
        go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        go_down = r >= a + b
        src = src * 2 + go_down
        dst = dst * 2 + go_right
    edges = np.stack([src, dst], axis=1)
    if symmetric:
        edges = np.concatenate([edges, edges[:, ::-1]], axis=0)
    keep = edges[:, 0] != edges[:, 1]
    return from_edges(n, edges[keep], name=name, dedup=True)


def barabasi_albert(
    num_vertices: int,
    attach: int = 4,
    *,
    seed: int | np.random.Generator | None = 0,
    name: str = "ba",
) -> Csr:
    """Barabási–Albert preferential attachment (symmetric).

    Every new vertex attaches to ``attach`` existing vertices chosen with
    probability proportional to their degree, yielding a power-law degree
    tail.  Used for the hollywood-2009 stand-in, which needs a *denser*
    scale-free graph (avg degree ≈ 105 in the paper) than R-MAT comfortably
    produces at small scale.
    """
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    attach = min(attach, num_vertices - 1)
    rng = _rng(seed)
    # Repeated-endpoint list trick: sampling uniformly from the flat edge
    # endpoint list implements degree-proportional sampling.
    targets: list[int] = list(range(attach))
    src_list: list[int] = []
    dst_list: list[int] = []
    endpoint_pool = np.empty(2 * attach * num_vertices, dtype=np.int64)
    pool_size = 0
    for i in range(attach):
        endpoint_pool[pool_size] = i
        pool_size += 1
    for v in range(attach, num_vertices):
        chosen = np.unique(
            endpoint_pool[rng.integers(0, pool_size, size=attach * 2)]
        )[:attach]
        if chosen.size < attach:
            extra = rng.choice(v, size=attach, replace=False)
            chosen = np.unique(np.concatenate([chosen, extra]))[:attach]
        for t in chosen:
            src_list.append(v)
            dst_list.append(int(t))
            endpoint_pool[pool_size] = v
            endpoint_pool[pool_size + 1] = int(t)
            pool_size += 2
    del targets
    edges = np.stack(
        [np.asarray(src_list, dtype=np.int64), np.asarray(dst_list, dtype=np.int64)],
        axis=1,
    )
    edges = np.concatenate([edges, edges[:, ::-1]], axis=0)
    return from_edges(num_vertices, edges, name=name, dedup=True)


def erdos_renyi(
    num_vertices: int,
    avg_degree: float,
    *,
    seed: int | np.random.Generator | None = 0,
    symmetric: bool = True,
    name: str = "er",
) -> Csr:
    """Uniform random graph with the given expected average out-degree."""
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    rng = _rng(seed)
    m = int(round(avg_degree * num_vertices))
    src = rng.integers(0, num_vertices, size=m)
    dst = rng.integers(0, num_vertices, size=m)
    edges = np.stack([src, dst], axis=1)
    if symmetric:
        edges = np.concatenate([edges, edges[:, ::-1]], axis=0)
    keep = edges[:, 0] != edges[:, 1]
    return from_edges(num_vertices, edges[keep], name=name, dedup=True)


def grid_mesh(
    rows: int,
    cols: int,
    *,
    diagonal: bool = False,
    name: str = "grid",
) -> Csr:
    """2-D lattice: each cell connects to its 4 (or 8) neighbors.

    Diameter is ``rows + cols - 2`` (Manhattan), degree ≤ 4 (or 8) — the
    canonical mesh-like structure behind road networks.  Fully
    deterministic, so always memoised (:mod:`repro.perf.buildcache`).
    """
    from repro.perf.buildcache import cached_graph

    return cached_graph(
        ("grid_mesh", rows, cols, diagonal, name),
        lambda: _grid_mesh_build(rows, cols, diagonal=diagonal, name=name),
    )


def _grid_mesh_build(
    rows: int,
    cols: int,
    *,
    diagonal: bool = False,
    name: str = "grid",
) -> Csr:
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    n = rows * cols
    idx = np.arange(n, dtype=np.int64)
    r, c = idx // cols, idx % cols
    pieces = []
    offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
    if diagonal:
        offsets += [(-1, -1), (-1, 1), (1, -1), (1, 1)]
    for dr, dc in offsets:
        nr, nc = r + dr, c + dc
        ok = (nr >= 0) & (nr < rows) & (nc >= 0) & (nc < cols)
        pieces.append(np.stack([idx[ok], nr[ok] * cols + nc[ok]], axis=1))
    edges = np.concatenate(pieces, axis=0)
    return from_edges(n, edges, name=name, dedup=True)


def road_network(
    rows: int,
    cols: int,
    *,
    removal_fraction: float = 0.08,
    shortcut_fraction: float = 0.005,
    seed: int | np.random.Generator | None = 0,
    name: str = "road",
) -> Csr:
    """Road-network-like mesh: a lattice with holes and a few shortcuts.

    Real road networks (road_usa, roadNet-CA) are near-planar with degree
    almost always 2-4 and enormous diameter.  We start from a grid, knock
    out a fraction of edges (dead ends, irregular blocks), and add a small
    number of *geometrically local* shortcuts (diagonal connectors, short
    highway segments — never long-range links, which would collapse the
    diameter).  The result keeps max degree tiny and diameter
    ``O(rows + cols)``, matching the two structural axes the paper's
    analysis uses.  Connectivity is restored by stitching any disconnected
    component back to the giant component.

    Builds with a reproducible ``int`` seed are memoised process-wide
    (:mod:`repro.perf.buildcache`); ``seed=None`` (OS entropy) and live
    ``numpy.random.Generator`` instances bypass the cache.
    """
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        from repro.perf.buildcache import cached_graph

        return cached_graph(
            ("road_network", rows, cols, removal_fraction, shortcut_fraction, int(seed), name),
            lambda: _road_network_build(
                rows, cols, removal_fraction=removal_fraction,
                shortcut_fraction=shortcut_fraction, seed=seed, name=name,
            ),
        )
    return _road_network_build(
        rows, cols, removal_fraction=removal_fraction,
        shortcut_fraction=shortcut_fraction, seed=seed, name=name,
    )


def _road_network_build(
    rows: int,
    cols: int,
    *,
    removal_fraction: float = 0.08,
    shortcut_fraction: float = 0.005,
    seed: int | np.random.Generator | None = 0,
    name: str = "road",
) -> Csr:
    rng = _rng(seed)
    base = grid_mesh(rows, cols)
    edges = base.edge_array()
    # Work on the undirected canonical form so removal stays symmetric.
    und = edges[edges[:, 0] < edges[:, 1]]
    keep_mask = rng.random(und.shape[0]) >= removal_fraction
    und = und[keep_mask]
    n = rows * cols
    n_short = int(shortcut_fraction * n)
    if n_short:
        # Shortcut endpoints stay within a small grid window of each other.
        a = rng.integers(0, n, size=n_short)
        dr = rng.integers(-4, 5, size=n_short)
        dc = rng.integers(-4, 5, size=n_short)
        br = a // cols + dr
        bc = a % cols + dc
        ok = (br >= 0) & (br < rows) & (bc >= 0) & (bc < cols)
        b = br * cols + bc
        ok &= a != b
        und = np.concatenate([und, np.stack([a[ok], b[ok]], axis=1)], axis=0)
    both = np.concatenate([und, und[:, ::-1]], axis=0)
    g = from_edges(n, both, name=name, dedup=True)
    return _connect_components(g, rng)


def _connect_components(g: Csr, rng: np.random.Generator) -> Csr:
    """Stitch all connected components to component 0 with single edges."""
    comp = np.full(g.num_vertices, -1, dtype=np.int64)
    label = 0
    representatives = []
    for v in range(g.num_vertices):
        if comp[v] >= 0:
            continue
        representatives.append(v)
        stack = [v]
        comp[v] = label
        while stack:
            u = stack.pop()
            for w in g.neighbors(u):
                if comp[w] < 0:
                    comp[w] = label
                    stack.append(int(w))
        label += 1
    if label == 1:
        return g
    extra = []
    anchor = representatives[0]
    for rep in representatives[1:]:
        extra.append((anchor, rep))
        extra.append((rep, anchor))
    edges = np.concatenate([g.edge_array(), np.asarray(extra, dtype=np.int64)], axis=0)
    return from_edges(g.num_vertices, edges, name=g.name, dedup=True)


def star_graph(num_vertices: int, *, name: str = "star") -> Csr:
    """Vertex 0 connected to everything else (extreme degree skew)."""
    if num_vertices < 1:
        raise ValueError("need at least 1 vertex")
    spokes = np.arange(1, num_vertices, dtype=np.int64)
    edges = np.concatenate(
        [
            np.stack([np.zeros_like(spokes), spokes], axis=1),
            np.stack([spokes, np.zeros_like(spokes)], axis=1),
        ],
        axis=0,
    )
    return from_edges(num_vertices, edges, name=name, dedup=True)


def path_graph(num_vertices: int, *, name: str = "path") -> Csr:
    """Simple path 0-1-2-...-(n-1) (extreme diameter)."""
    if num_vertices < 1:
        raise ValueError("need at least 1 vertex")
    a = np.arange(num_vertices - 1, dtype=np.int64)
    edges = np.concatenate(
        [np.stack([a, a + 1], axis=1), np.stack([a + 1, a], axis=1)], axis=0
    )
    return from_edges(num_vertices, edges, name=name, dedup=True)


def complete_graph(num_vertices: int, *, name: str = "complete") -> Csr:
    """All-to-all graph (stress test for coloring conflicts)."""
    idx = np.arange(num_vertices, dtype=np.int64)
    src = np.repeat(idx, num_vertices)
    dst = np.tile(idx, num_vertices)
    keep = src != dst
    return from_edges(num_vertices, np.stack([src[keep], dst[keep]], axis=1), name=name)


def bipartite_graph(left: int, right: int, *, name: str = "bipartite") -> Csr:
    """Complete bipartite graph (2-colorable; coloring sanity check)."""
    li = np.arange(left, dtype=np.int64)
    ri = np.arange(left, left + right, dtype=np.int64)
    src = np.repeat(li, right)
    dst = np.tile(ri, left)
    edges = np.concatenate(
        [np.stack([src, dst], axis=1), np.stack([dst, src], axis=1)], axis=0
    )
    return from_edges(left + right, edges, name=name, dedup=True)
