"""Streaming graph mutation: a batched edit overlay over immutable CSR.

The arXiv version of Atos frames the scheduler as a framework for
*dynamic* irregular computations: the graph mutates in batches and the
worklist re-seeds from the affected vertices instead of restarting the
whole frontier.  :class:`Csr` is deliberately immutable (the simulator
relies on the topology being frozen *within* a run), so mutation lives in
a separate overlay:

* :class:`EditBatch` — one batch of edge inserts and deletes, as plain
  ``(K, 2)`` arrays.  Batches may contain no-op edits (inserting an edge
  that already exists, deleting one that does not, self-loops, duplicate
  rows); :meth:`DeltaCsr.apply` filters them and reports back only the
  *effective* changes in an :class:`AppliedBatch`, which is what the
  incremental kernels' ``rebase`` hooks consume (a no-op insert must not
  perturb a PageRank residue).
* :class:`DeltaCsr` — the mutable overlay: an epoch counter, the current
  edge set (kept as sorted ``src * n + dst`` keys, so set algebra is two
  ``np.union1d``/``np.setdiff1d`` calls per batch), and
  :meth:`DeltaCsr.materialize`, which rebuilds a frozen :class:`Csr`
  snapshot through the keyed build cache.  Snapshot cache keys carry the
  **epoch tag and an edit digest** (:func:`repro.perf.buildcache.edit_key`)
  so a mutated graph can never alias its parent or a sibling history —
  keying on generator config alone would hand epoch 1 the epoch-0 arrays.
* :class:`EditScript` — a seeded generator of random edit batches
  (deterministic per seed), the replay input of the differential harness,
  the fuzzer and the ``--edits`` CLI flag.  Scripts are symmetric by
  default: every insert/delete is applied in both directions, keeping the
  graph symmetric for the apps whose oracles assume it (CC, k-core).

Spec strings: ``"3x32@7"`` means 3 epochs of 32 edit pairs seeded with 7
(see :func:`parse_edits`); an optional ``d<fraction>`` suffix sets the
delete share, e.g. ``"3x32@7d0.5"``.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import Csr

__all__ = [
    "EditBatch",
    "AppliedBatch",
    "DeltaCsr",
    "EditScript",
    "parse_edits",
]


def _as_edge_array(edges: object) -> np.ndarray:
    arr = np.asarray(edges, dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edges must be (K, 2), got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class EditBatch:
    """One requested batch of edge mutations (may contain no-ops).

    ``insert`` and ``delete`` are ``(K, 2)`` int64 arrays of ``(src, dst)``
    pairs.  The batch is a *request*: rows may duplicate each other, name
    edges that already exist (insert) or never did (delete), or be
    self-loops — :meth:`DeltaCsr.apply` resolves all of that.
    """

    insert: np.ndarray = field(default_factory=lambda: np.empty((0, 2), dtype=np.int64))
    delete: np.ndarray = field(default_factory=lambda: np.empty((0, 2), dtype=np.int64))

    def __post_init__(self) -> None:
        object.__setattr__(self, "insert", _as_edge_array(self.insert))
        object.__setattr__(self, "delete", _as_edge_array(self.delete))

    def digest(self) -> str:
        """Short content hash of the batch (stable across processes)."""
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(self.insert).tobytes())
        h.update(b"|")
        h.update(np.ascontiguousarray(self.delete).tobytes())
        return h.hexdigest()[:16]

    def symmetrized(self) -> "EditBatch":
        """The batch with every edit applied in both directions."""
        ins, dele = self.insert, self.delete
        return EditBatch(
            insert=np.concatenate([ins, ins[:, ::-1]], axis=0),
            delete=np.concatenate([dele, dele[:, ::-1]], axis=0),
        )


@dataclass(frozen=True)
class AppliedBatch:
    """The *effective* mutation one :meth:`DeltaCsr.apply` performed.

    ``inserted`` holds only edges that were genuinely absent before the
    batch; ``deleted`` only edges that were genuinely present.  No-op
    edits (duplicates, re-inserts, phantom deletes) are filtered out, so
    incremental kernels can trust every row to be a real topology change.
    """

    epoch: int
    inserted: np.ndarray
    deleted: np.ndarray

    @property
    def touched(self) -> np.ndarray:
        """Sorted unique vertex ids appearing in any effective edit."""
        both = np.concatenate([self.inserted.ravel(), self.deleted.ravel()])
        return np.unique(both)

    @property
    def is_noop(self) -> bool:
        return self.inserted.size == 0 and self.deleted.size == 0


class DeltaCsr:
    """A mutable edge-set overlay over an immutable base :class:`Csr`.

    The overlay tracks the current edge set as sorted scalar keys
    (``src * n + dst``); :meth:`apply` advances the epoch counter and
    :meth:`materialize` rebuilds a frozen CSR snapshot, memoised through
    :func:`repro.perf.buildcache.cached_graph` under an epoch-tagged key.
    The vertex set is fixed: edits mutate edges only.
    """

    def __init__(self, base: Csr) -> None:
        self.base = base
        self.epoch = 0
        n = base.num_vertices
        self._n = n
        edges = base.edge_array()
        self._keys = np.unique(edges[:, 0] * n + edges[:, 1])
        self.log: list[AppliedBatch] = []
        #: rolling content hash of the applied-edit history (cache key part);
        #: seeded with the base's *topology*, not just its name — two graphs
        #: that share a name but not an edge set must not share snapshots
        h = hashlib.sha256(f"{base.name}:{n}:".encode())
        h.update(np.ascontiguousarray(self._keys).tobytes())
        self._history = h.hexdigest()[:16]

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return int(self._keys.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaCsr(base={self.base.name!r}, epoch={self.epoch}, "
            f"edges={self.num_edges})"
        )

    def _encode(self, edges: np.ndarray) -> np.ndarray:
        if edges.size and (edges.min() < 0 or edges.max() >= self._n):
            raise ValueError(f"edit endpoints out of range [0, {self._n})")
        return edges[:, 0] * self._n + edges[:, 1]

    def has_edge(self, src: int, dst: int) -> bool:
        """Membership test against the current (post-edit) edge set."""
        key = np.int64(src) * self._n + np.int64(dst)
        idx = np.searchsorted(self._keys, key)
        return bool(idx < self._keys.size and self._keys[idx] == key)

    # ------------------------------------------------------------------
    def apply(self, batch: EditBatch) -> AppliedBatch:
        """Apply one edit batch; return the effective changes.

        Deletes are resolved against the pre-batch edge set, inserts
        against the post-delete set (so a batch that deletes and
        re-inserts the same edge nets out to a no-op of both kinds being
        effective — the edge leaves and re-enters, which incremental
        kernels handle like any other churn).
        """
        del_keys = np.unique(self._encode(batch.delete)) if batch.delete.size else np.empty(0, dtype=np.int64)
        ins_keys = np.unique(self._encode(batch.insert)) if batch.insert.size else np.empty(0, dtype=np.int64)
        # effective deletes: requested & present
        eff_del = del_keys[np.isin(del_keys, self._keys, assume_unique=True)]
        keys = np.setdiff1d(self._keys, eff_del, assume_unique=True)
        # effective inserts: requested & absent after the deletes
        eff_ins = ins_keys[~np.isin(ins_keys, keys, assume_unique=True)]
        self._keys = np.union1d(keys, eff_ins)
        self.epoch += 1
        applied = AppliedBatch(
            epoch=self.epoch,
            inserted=self._decode(eff_ins),
            deleted=self._decode(eff_del),
        )
        self.log.append(applied)
        self._history = hashlib.sha256(
            (self._history + ":" + batch.digest()).encode()
        ).hexdigest()[:16]
        return applied

    def _decode(self, keys: np.ndarray) -> np.ndarray:
        out = np.empty((keys.size, 2), dtype=np.int64)
        out[:, 0] = keys // self._n
        out[:, 1] = keys % self._n
        return out

    def edge_array(self) -> np.ndarray:
        """Current edge set as a sorted ``(E, 2)`` array."""
        return self._decode(self._keys)

    # ------------------------------------------------------------------
    def materialize(self) -> Csr:
        """Frozen CSR snapshot of the current epoch (build-cache shared).

        The cache key is the base graph's identity plus the **epoch
        counter and the rolling edit-history digest**
        (:func:`repro.perf.buildcache.edit_key`): two overlays that share
        a base but applied different histories — or the same overlay at
        different epochs — can never alias, while replaying the same
        script twice shares one build.
        """
        from repro.perf.buildcache import cached_graph, edit_key

        if self.epoch == 0:
            return self.base
        key = edit_key(
            ("delta", self.base.name, self._n), self.epoch, self._history
        )
        name = f"{self.base.name}+e{self.epoch}"
        edges = self.edge_array()
        return cached_graph(
            key,
            lambda: Csr(*_csr_arrays(self._n, edges), name=name),
        )


def _csr_arrays(n: int, sorted_edges: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """indptr/indices from an already sorted, deduplicated edge array."""
    counts = np.bincount(sorted_edges[:, 0], minlength=n).astype(np.int64)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return indptr, sorted_edges[:, 1].copy()


# ---------------------------------------------------------------------------
# Seeded edit-script generation
# ---------------------------------------------------------------------------

class EditScript:
    """Deterministic random edit batches for replay / fuzzing.

    Each of the ``epochs`` batches holds ``batch_size`` edit pairs, a
    ``p_delete`` share of which are deletes sampled from the *current*
    edge set (the script tracks its own overlay while generating, so late
    batches can delete edges inserted by early ones) and the rest inserts
    of uniformly random pairs — which occasionally duplicate existing
    edges or propose self-loops, deliberately: no-op edits are part of
    the tested surface.  ``symmetric=True`` (default) mirrors every edit.
    """

    def __init__(
        self,
        graph: Csr,
        *,
        seed: int,
        epochs: int = 3,
        batch_size: int = 32,
        p_delete: float = 0.4,
        symmetric: bool = True,
    ) -> None:
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not (0.0 <= p_delete <= 1.0):
            raise ValueError("p_delete must be in [0, 1]")
        self.graph = graph
        self.seed = int(seed)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.p_delete = float(p_delete)
        self.symmetric = bool(symmetric)
        self._batches: list[EditBatch] | None = None

    @property
    def spec(self) -> str:
        """The ``ExB@S`` spec string that reproduces this script."""
        tail = "" if self.p_delete == 0.4 else f"d{self.p_delete:g}"
        return f"{self.epochs}x{self.batch_size}@{self.seed}{tail}"

    def batches(self) -> list[EditBatch]:
        """The script's batches (generated once, then cached)."""
        if self._batches is None:
            self._batches = self._generate()
        return self._batches

    def __iter__(self):
        return iter(self.batches())

    def __len__(self) -> int:
        return self.epochs

    def _generate(self) -> list[EditBatch]:
        rng = np.random.default_rng(self.seed)
        n = self.graph.num_vertices
        shadow = DeltaCsr(self.graph)
        out: list[EditBatch] = []
        for _ in range(self.epochs):
            n_del = int(round(self.batch_size * self.p_delete))
            n_ins = self.batch_size - n_del
            current = shadow.edge_array()
            if self.symmetric and current.size:
                # sample deletes from one orientation only; the mirror is
                # added by symmetrized() below
                current = current[current[:, 0] <= current[:, 1]]
            if current.size and n_del:
                pick = rng.integers(0, current.shape[0], size=n_del)
                deletes = current[pick]
            else:
                deletes = np.empty((0, 2), dtype=np.int64)
            inserts = rng.integers(0, n, size=(n_ins, 2), dtype=np.int64)
            batch = EditBatch(insert=inserts, delete=deletes)
            if self.symmetric:
                batch = batch.symmetrized()
            shadow.apply(batch)
            out.append(batch)
        return out

    def replay(self, overlay: DeltaCsr | None = None):
        """Yield ``(applied, snapshot)`` per batch over a fresh overlay."""
        delta = overlay if overlay is not None else DeltaCsr(self.graph)
        for batch in self.batches():
            applied = delta.apply(batch)
            yield applied, delta.materialize()


_SPEC_RE = re.compile(
    r"^(?P<epochs>\d+)x(?P<batch>\d+)@(?P<seed>\d+)(?:d(?P<pdel>0?\.\d+|0|1|1\.0))?$"
)


def parse_edits(spec: str, graph: Csr, *, symmetric: bool = True) -> EditScript:
    """Parse an ``ExB@S[dP]`` spec string into an :class:`EditScript`.

    ``"3x32@7"`` — 3 epochs, 32 edit pairs each, seed 7, default 40%
    deletes; ``"5x16@2d0.5"`` overrides the delete share.  Raises
    ``ValueError`` with the format reminder on anything else.
    """
    m = _SPEC_RE.match(spec.strip())
    if m is None:
        raise ValueError(
            f"bad edit spec {spec!r}; expected EPOCHSxBATCH@SEED[dFRAC], e.g. 3x32@7"
        )
    kwargs = {}
    if m.group("pdel") is not None:
        kwargs["p_delete"] = float(m.group("pdel"))
    return EditScript(
        graph,
        seed=int(m.group("seed")),
        epochs=int(m.group("epochs")),
        batch_size=int(m.group("batch")),
        symmetric=symmetric,
        **kwargs,
    )
