"""Service telemetry exporters: Prometheus text + JSONL.

Mirrors :mod:`repro.metrics.export` for the broker's own operational
stats: everything renders from the schema-stable
``repro.service/stats-v1`` document (:meth:`Broker.stats().to_dict()
<repro.service.broker.Broker.stats>`), so a snapshot captured under load
exports identically later.  The ``/metrics`` HTTP endpoint serves
:func:`stats_to_prometheus`; :func:`stats_to_jsonl` is the line-oriented
form for log shippers and ``jq``.
"""

from __future__ import annotations

import json

__all__ = ["STATS_SCHEMA", "stats_to_prometheus", "stats_to_jsonl"]

STATS_SCHEMA = "repro.service/stats-v1"

#: stats-document counters exported as Prometheus counters (monotone totals)
_COUNTERS = (
    "submitted",
    "completed",
    "failed",
    "rejected",
    "coalesced",
    "retries",
    "timeouts",
)
#: instantaneous values exported as gauges
_GAUGES = ("queue_depth", "peak_queue_depth", "tenants", "workers")
_CACHE_COUNTERS = ("hits", "misses", "evictions", "poisons_detected")
_CACHE_GAUGES = ("entries", "bytes", "max_bytes")
#: per-tenant counters from the stats document's ``per_tenant`` block
_TENANT_COUNTERS = ("submitted", "completed", "rejected")


def _escape_label(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    if isinstance(value, float) and not float(value).is_integer():
        return repr(value)
    return str(int(value))


def _histogram_lines(name: str, h: dict) -> list[str]:
    """Native Prometheus histogram from a LogHistogram snapshot."""
    lines = [f"# TYPE {name} histogram"]
    subbuckets = h["subbuckets"]
    min_value = h["min_value"]
    cumulative = h["zero"]
    for idx in sorted(int(k) for k in h["buckets"]):
        cumulative += h["buckets"][str(idx)]
        octave, sub = divmod(idx, subbuckets)
        le = min_value * 2.0**octave * (1.0 + (sub + 1) / subbuckets)
        lines.append(f'{name}_bucket{{le="{le!r}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {h["count"]}')
    lines.append(f"{name}_sum {_fmt(h['sum'])}")
    lines.append(f"{name}_count {h['count']}")
    for q in ("p50", "p90", "p99"):
        lines.append(f"# TYPE {name}_{q} gauge")
        lines.append(f"{name}_{q} {_fmt(h[q])}")
    return lines


def stats_to_prometheus(doc: dict, *, prefix: str = "repro_service") -> str:
    """Render a ``stats-v1`` document in Prometheus text format."""
    lines: list[str] = []

    def metric(name: str, mtype: str, value: float) -> None:
        lines.append(f"# TYPE {name} {mtype}")
        lines.append(f"{name} {_fmt(value)}")

    for cname in _COUNTERS:
        metric(f"{prefix}_{cname}_total", "counter", doc[cname])
    for gname in _GAUGES:
        metric(f"{prefix}_{gname}", "gauge", doc[gname])
    metric(f"{prefix}_draining", "gauge", int(bool(doc["draining"])))
    cache = doc["cache"]
    for cname in _CACHE_COUNTERS:
        metric(f"{prefix}_cache_{cname}_total", "counter", cache[cname])
    for gname in _CACHE_GAUGES:
        metric(f"{prefix}_cache_{gname}", "gauge", cache[gname])
    lines.append(f"# TYPE {prefix}_cache_hit_ratio gauge")
    lines.append(f"{prefix}_cache_hit_ratio {cache['hit_ratio']!r}")
    faults = doc.get("faults", {})
    for fname in sorted(faults):
        metric(f"{prefix}_fault_{fname}_total", "counter", faults[fname])
    per_tenant = doc.get("per_tenant", {})
    if per_tenant:
        # one # TYPE line per family, then one labelled sample per tenant —
        # the exposition-format rule exporter lint tests pin
        for cname in _TENANT_COUNTERS:
            lines.append(f"# TYPE {prefix}_tenant_{cname}_total counter")
            for tenant in sorted(per_tenant):
                value = per_tenant[tenant].get(cname, 0)
                lines.append(
                    f'{prefix}_tenant_{cname}_total{{tenant="{_escape_label(tenant)}"}} '
                    f"{_fmt(value)}"
                )
        lines.append(f"# TYPE {prefix}_tenant_queue_depth gauge")
        for tenant in sorted(per_tenant):
            depth = per_tenant[tenant].get("queue_depth", 0)
            lines.append(
                f'{prefix}_tenant_queue_depth{{tenant="{_escape_label(tenant)}"}} '
                f"{_fmt(depth)}"
            )
    lines.extend(_histogram_lines(f"{prefix}_hit_latency_ms", doc["hit_latency_ms"]))
    lines.extend(_histogram_lines(f"{prefix}_miss_latency_ms", doc["miss_latency_ms"]))
    return "\n".join(lines) + "\n"


def stats_to_jsonl(doc: dict) -> str:
    """One JSON object per line: broker, cache, faults, latency histograms."""
    records: list[dict] = [
        {
            "kind": "broker",
            "schema": doc.get("schema", STATS_SCHEMA),
            **{k: doc[k] for k in (*_COUNTERS, *_GAUGES, "draining")},
        },
        {"kind": "cache", **doc["cache"]},
        {"kind": "faults", **doc.get("faults", {})},
        *(
            {"kind": "tenant", "tenant": tenant, **counts}
            for tenant, counts in sorted(doc.get("per_tenant", {}).items())
        ),
        {"kind": "latency", "name": "hit_latency_ms", **doc["hit_latency_ms"]},
        {"kind": "latency", "name": "miss_latency_ms", **doc["miss_latency_ms"]},
    ]
    return (
        "\n".join(
            json.dumps(rec, sort_keys=True, separators=(",", ":")) for rec in records
        )
        + "\n"
    )
