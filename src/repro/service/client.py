"""Blocking HTTP client for the service (stdlib ``http.client`` only).

Used by ``repro submit`` and by the cross-process smoke tests.  Errors
are typed so callers can print one-line diagnostics instead of
tracebacks: :class:`ServiceUnavailable` for "nothing is listening
there", :class:`ServiceError` (carrying the HTTP status) for everything
the server itself rejected.
"""

from __future__ import annotations

import http.client
import json
import socket

__all__ = ["ServiceClient", "ServiceError", "ServiceUnavailable"]


class ServiceError(RuntimeError):
    """The server answered with a non-200 status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceUnavailable(RuntimeError):
    """No server is reachable at the given address."""


class ServiceClient:
    """One-request-per-call client (the server closes each connection)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8321, *, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
        except (ConnectionRefusedError, socket.timeout, socket.gaierror, OSError) as exc:
            raise ServiceUnavailable(
                f"no service at {self.host}:{self.port} ({type(exc).__name__}: {exc})"
            ) from exc
        finally:
            conn.close()
        ctype = resp.getheader("Content-Type", "")
        if ctype.startswith("application/json"):
            try:
                doc = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServiceError(resp.status, f"unparseable response body: {exc}") from exc
        else:
            doc = raw.decode("utf-8", errors="replace")
        if resp.status != 200:
            message = doc.get("error", str(doc)) if isinstance(doc, dict) else str(doc)
            raise ServiceError(resp.status, message)
        return doc

    # ------------------------------------------------------------------
    def submit(self, job: dict, *, tenant: str = "default") -> dict:
        """Submit one job; returns the JobResult document."""
        return self._request("POST", "/v1/jobs", {"job": job, "tenant": tenant})

    def stats(self) -> dict:
        """The ``repro.service/stats-v1`` document."""
        return self._request("GET", "/v1/stats")

    def metrics_text(self) -> str:
        """Prometheus text exposition of the broker's stats."""
        return self._request("GET", "/metrics")

    def timeseries(self) -> dict:
        """The ``repro.dash/timeseries-v1`` document (dashboard strips)."""
        return self._request("GET", "/v1/timeseries")

    def traces(self) -> dict:
        """Recent trace summaries, newest first."""
        return self._request("GET", "/v1/traces")

    def trace(self, trace_id: str, *, chrome: bool = False) -> dict:
        """One full trace; ``chrome=True`` fetches the merged Chrome doc."""
        suffix = "?format=chrome" if chrome else ""
        return self._request("GET", f"/v1/traces/{trace_id}{suffix}")

    def dash_html(self) -> str:
        """The live dashboard page, as served at ``GET /dash``."""
        return self._request("GET", "/dash")

    def health(self) -> bool:
        """True while the server accepts jobs."""
        doc = self._request("GET", "/healthz")
        return bool(isinstance(doc, dict) and doc.get("ok"))
