"""Minimal HTTP/1.1 front end for the broker (stdlib asyncio only).

JSON in/out (plus two text endpoints), one request per connection
(``Connection: close`` — the clients are a benchmark harness, a CLI and
a dashboard page that re-fetches, not long-lived browser sessions):

* ``POST /v1/jobs`` — body ``{"job": {...}, "tenant": "name"}``; answers
  the :class:`~repro.service.jobs.JobResult` document, or a JSON error
  with the status the broker's exception maps to: 400 (bad spec), 429
  (tenant queue full), 503 (draining), 500 (retries exhausted).
* ``GET /v1/stats`` — the ``repro.service/stats-v1`` document.
* ``GET /v1/timeseries`` — the ``repro.dash/timeseries-v1`` document
  (binned wall-clock series feeding the dashboard strips).
* ``GET /v1/traces`` — recent trace summaries, newest first.
* ``GET /v1/traces/<id>`` — one full trace; ``?format=chrome`` renders
  it as a merged Chrome trace-event document instead.
* ``GET /dash`` — the live dashboard page (inline HTML/JS, zero deps).
* ``GET /metrics`` — Prometheus text exposition
  (:func:`~repro.service.telemetry.stats_to_prometheus`).
* ``GET /healthz`` — ``{"ok": true}`` while accepting jobs.

Error responses are uniformly shaped: a JSON object with ``error``
(human-readable) and ``status`` (the code, repeated in the body so
piped-through payloads stay self-describing); 405s additionally carry
``allowed`` so clients can self-correct the method.

Deliberately hand-rolled over ``asyncio.start_server``: the container
has no aiohttp, and the protocol surface (request line, headers,
Content-Length body) is small enough that a framework would be the
bigger liability.
"""

from __future__ import annotations

import asyncio
import json

from repro.dash.page import render_page
from repro.dash.trace import trace_to_chrome
from repro.service.broker import Broker, BrokerClosed, JobFailed, QueueFull
from repro.service.jobs import JobSpecError
from repro.service.telemetry import stats_to_prometheus

__all__ = ["ServiceServer", "serve"]

_MAX_BODY = 1 << 20  # 1 MiB of job JSON is three orders past any real spec
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}
#: route → allowed methods; prefix routes (trailing ``/``) match by startswith
_ROUTE_METHODS = {
    "/healthz": ("GET",),
    "/v1/stats": ("GET",),
    "/v1/timeseries": ("GET",),
    "/v1/traces": ("GET",),
    "/v1/traces/": ("GET",),
    "/dash": ("GET",),
    "/metrics": ("GET",),
    "/v1/jobs": ("POST",),
}

_JSON = "application/json"
_HTML = "text/html; charset=utf-8"
_PROM = "text/plain; version=0.0.4"


def _error(status: int, message: str, **extra) -> tuple[int, dict]:
    """The uniform error payload: ``{"error": ..., "status": ...}``."""
    return status, {"error": message, "status": status, **extra}


class ServiceServer:
    """One broker behind one listening socket."""

    def __init__(self, broker: Broker, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.broker = broker
        self.host = host
        self.port = port  # 0 = ephemeral; resolved by start()
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> int:
        """Bind and listen; returns the resolved port.

        Raises ``OSError`` (EADDRINUSE) when the port is taken — the CLI
        turns that into a one-line diagnostic rather than a traceback.
        """
        await self.broker.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        """Stop listening, then drain the broker (finishes accepted jobs)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.broker.drain()

    async def __aenter__(self) -> "ServiceServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        ctype = None
        try:
            answer = await self._respond(reader)
            status, payload = answer[0], answer[1]
            if len(answer) == 3:
                ctype = answer[2]
        except Exception as exc:  # defensive: a handler bug must not kill the server
            status, payload = _error(500, f"{type(exc).__name__}: {exc}")
        body = json.dumps(payload).encode() if isinstance(payload, dict) else payload
        if isinstance(body, str):
            body = body.encode("utf-8")
        if ctype is None:
            ctype = _JSON if isinstance(payload, dict) else _PROM
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode() + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client hung up mid-response; nothing to salvage
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return _error(400, f"malformed request line: {request_line!r}")
        method, target, _version = parts
        path, _, query = target.partition("?")
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            return _error(413, f"body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""

        allowed = _ROUTE_METHODS.get(path)
        if allowed is None and path.startswith("/v1/traces/"):
            allowed = _ROUTE_METHODS["/v1/traces/"]
        if allowed is None:
            return _error(404, f"no such endpoint: {method} {path}")
        if method not in allowed:
            return _error(
                405,
                f"{method} not allowed for {path} (use {' or '.join(allowed)})",
                allowed=list(allowed),
            )

        if path == "/healthz":
            return 200, {"ok": not self.broker._draining}
        if path == "/v1/stats":
            return 200, self.broker.stats().to_dict()
        if path == "/v1/timeseries":
            return 200, self.broker.timeseries()
        if path == "/v1/traces":
            return 200, self.broker.traces_doc()
        if path.startswith("/v1/traces/"):
            return self._trace(path[len("/v1/traces/"):], query)
        if path == "/dash":
            return 200, render_page(None), _HTML
        if path == "/metrics":
            return 200, stats_to_prometheus(self.broker.stats().to_dict()).encode()
        return await self._submit(body)  # POST /v1/jobs — the only route left

    def _trace(self, trace_id: str, query: str):
        if self.broker.tracer is None:
            return _error(404, "tracing is disabled on this broker")
        doc = self.broker.trace_doc(trace_id)
        if doc is None:
            return _error(404, f"no such trace: {trace_id}")
        if "format=chrome" in query.split("&"):
            return 200, trace_to_chrome(doc)
        return 200, doc

    async def _submit(self, body: bytes) -> tuple[int, dict]:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _error(400, f"request body is not valid JSON: {exc}")
        if not isinstance(doc, dict):
            return _error(400, "request body must be a JSON object")
        tenant = doc.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            return _error(400, "'tenant' must be a non-empty string")
        job = doc.get("job")
        if job is None:
            return _error(400, "request needs a 'job' object")
        try:
            result = await self.broker.submit(job, tenant=tenant)
        except JobSpecError as exc:
            return _error(400, str(exc))
        except QueueFull as exc:
            return _error(429, str(exc))
        except BrokerClosed as exc:
            return _error(503, str(exc))
        except JobFailed as exc:
            return _error(500, str(exc))
        return 200, result.to_dict()


async def serve(
    broker: Broker, *, host: str = "127.0.0.1", port: int = 0
) -> ServiceServer:
    """Start a :class:`ServiceServer`; caller owns :meth:`ServiceServer.stop`."""
    server = ServiceServer(broker, host=host, port=port)
    await server.start()
    return server
