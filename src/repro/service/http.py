"""Minimal HTTP/1.1 front end for the broker (stdlib asyncio only).

Four endpoints, JSON in/out, one request per connection
(``Connection: close`` — the client is a benchmark harness and a CLI,
not a browser):

* ``POST /v1/jobs`` — body ``{"job": {...}, "tenant": "name"}``; answers
  the :class:`~repro.service.jobs.JobResult` document, or a JSON error
  with the status the broker's exception maps to: 400 (bad spec), 429
  (tenant queue full), 503 (draining), 500 (retries exhausted).
* ``GET /v1/stats`` — the ``repro.service/stats-v1`` document.
* ``GET /metrics`` — Prometheus text exposition
  (:func:`~repro.service.telemetry.stats_to_prometheus`).
* ``GET /healthz`` — ``{"ok": true}`` while accepting jobs.

Deliberately hand-rolled over ``asyncio.start_server``: the container
has no aiohttp, and the protocol surface (request line, headers,
Content-Length body) is small enough that a framework would be the
bigger liability.
"""

from __future__ import annotations

import asyncio
import json

from repro.service.broker import Broker, BrokerClosed, JobFailed, QueueFull
from repro.service.jobs import JobSpecError
from repro.service.telemetry import stats_to_prometheus

__all__ = ["ServiceServer", "serve"]

_MAX_BODY = 1 << 20  # 1 MiB of job JSON is three orders past any real spec
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceServer:
    """One broker behind one listening socket."""

    def __init__(self, broker: Broker, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.broker = broker
        self.host = host
        self.port = port  # 0 = ephemeral; resolved by start()
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> int:
        """Bind and listen; returns the resolved port.

        Raises ``OSError`` (EADDRINUSE) when the port is taken — the CLI
        turns that into a one-line diagnostic rather than a traceback.
        """
        await self.broker.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        """Stop listening, then drain the broker (finishes accepted jobs)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.broker.drain()

    async def __aenter__(self) -> "ServiceServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as exc:  # defensive: a handler bug must not kill the server
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(payload).encode() if isinstance(payload, dict) else payload
        ctype = "application/json" if isinstance(payload, dict) else "text/plain; version=0.0.4"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode() + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client hung up mid-response; nothing to salvage
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader) -> tuple[int, dict | bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": f"malformed request line: {request_line!r}"}
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            return 413, {"error": f"body too large ({length} bytes)"}
        body = await reader.readexactly(length) if length else b""

        if path == "/healthz" and method == "GET":
            return 200, {"ok": not self.broker._draining}
        if path == "/v1/stats" and method == "GET":
            return 200, self.broker.stats().to_dict()
        if path == "/metrics" and method == "GET":
            return 200, stats_to_prometheus(self.broker.stats().to_dict()).encode()
        if path == "/v1/jobs":
            if method != "POST":
                return 405, {"error": "use POST for /v1/jobs"}
            return await self._submit(body)
        return 404, {"error": f"no such endpoint: {method} {path}"}

    async def _submit(self, body: bytes) -> tuple[int, dict]:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"request body is not valid JSON: {exc}"}
        if not isinstance(doc, dict):
            return 400, {"error": "request body must be a JSON object"}
        tenant = doc.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            return 400, {"error": "'tenant' must be a non-empty string"}
        job = doc.get("job")
        if job is None:
            return 400, {"error": "request needs a 'job' object"}
        try:
            result = await self.broker.submit(job, tenant=tenant)
        except JobSpecError as exc:
            return 400, {"error": str(exc)}
        except QueueFull as exc:
            return 429, {"error": str(exc)}
        except BrokerClosed as exc:
            return 503, {"error": str(exc)}
        except JobFailed as exc:
            return 500, {"error": str(exc)}
        return 200, result.to_dict()


async def serve(
    broker: Broker, *, host: str = "127.0.0.1", port: int = 0
) -> ServiceServer:
    """Start a :class:`ServiceServer`; caller owns :meth:`ServiceServer.stop`."""
    server = ServiceServer(broker, host=host, port=port)
    await server.start()
    return server
