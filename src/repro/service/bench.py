"""Service load benchmark: the scenario behind ``BENCH_service.json``.

Two-phase measurement against an in-process broker:

1. **cold** — each distinct job in the mix is submitted once; every one
   is a cache miss that runs the full simulation.  Before the broker
   sees anything, the same specs are executed serially through
   independent Labs to produce the *reference digests* every service
   response is checked against — the end-to-end correctness number
   (``digest_match_ratio``) is part of the committed artifact, not just
   a test assertion.
2. **warm** — ``clients`` concurrent submitters (default 1000), spread
   round-robin over ``tenants``, each draw a seeded-random job from the
   same mix.  Every request is a content-address hit, so this measures
   the service path itself: queue-free hit latency (exact p50/p99 over
   all requests) and sustained request throughput.

``warm_speedup`` (mean cold latency / mean warm latency) is the
headline; :func:`validate_service_report` enforces the acceptance floor
— warm hits at least 100x faster than cold misses, perfect digest
match, a nonzero hit ratio — so a committed report *is* a passing
acceptance run.  Wall noise across machines is handled exactly like
``BENCH_perf.json``: the report embeds a calibration spin score and
``python -m repro diff`` rescales before comparing.
"""

from __future__ import annotations

import asyncio
import json
import platform
import random
import sys
import time
from pathlib import Path

import numpy as np

from repro.perf.bench import calibrate
from repro.service.broker import Broker, BrokerConfig
from repro.service.jobs import JobSpec, execute_spec, job_key, result_digest

__all__ = [
    "SERVICE_BENCH_SCHEMA",
    "BENCH_JOB_MIX",
    "run_service_bench",
    "validate_service_report",
    "format_service_report",
    "write_service_report",
    "load_service_report",
]

SERVICE_BENCH_SCHEMA = "repro.service/bench-v1"

#: the mixed-tenant workload: static, perturbed (seeded) and dynamic
#: (edit-replay) jobs over both headline datasets — one spec per job
#: class the service distinguishes in its cache key
BENCH_JOB_MIX: tuple[dict, ...] = (
    {"app": "bfs", "dataset": "roadNet-CA", "config": "persist-CTA"},
    {"app": "pagerank", "dataset": "soc-LiveJournal1", "config": "persist-CTA"},
    {"app": "coloring", "dataset": "roadNet-CA", "config": "discrete-CTA"},
    {"app": "bfs", "dataset": "soc-LiveJournal1", "config": "persist-warp", "seed": 3},
    {"app": "pagerank", "dataset": "roadNet-CA", "config": "BSP"},
    {"app": "bfs-inc", "dataset": "roadNet-CA", "config": "persist-CTA", "edits": "2x16@3"},
)


def _quantile(sorted_values: list[float], q: float) -> float:
    """Exact empirical quantile (nearest-rank) over a sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[rank]


async def _run(
    specs: list[JobSpec],
    *,
    clients: int,
    tenants: int,
    workers: int,
    rng_seed: int,
) -> dict:
    refs = {job_key(spec): result_digest(execute_spec(spec)) for spec in specs}

    config = BrokerConfig(workers=workers, tenant_queue_limit=max(64, clients))
    matches = 0
    responses = 0
    async with Broker(config) as broker:
        cold_ms: list[float] = []
        for spec in specs:
            res = await broker.submit(spec, tenant="cold")
            cold_ms.append(res.wall_ms)
            responses += 1
            matches += res.digest == refs[job_key(spec)]

        rng = random.Random(rng_seed)
        draws = [rng.randrange(len(specs)) for _ in range(clients)]

        async def one_client(i: int) -> tuple[float, bool]:
            spec = specs[draws[i]]
            t0 = time.perf_counter()
            res = await broker.submit(spec, tenant=f"tenant-{i % tenants}")
            return (
                (time.perf_counter() - t0) * 1e3,
                res.digest == refs[job_key(spec)],
            )

        t0 = time.perf_counter()
        warm = await asyncio.gather(*(one_client(i) for i in range(clients)))
        warm_wall_s = time.perf_counter() - t0
        stats = broker.stats()

    warm_ms = sorted(ms for ms, _ in warm)
    responses += len(warm)
    matches += sum(ok for _, ok in warm)
    cold_mean = sum(cold_ms) / len(cold_ms)
    warm_mean = sum(warm_ms) / len(warm_ms)
    return {
        "cold_ms": cold_ms,
        "cold_ms_mean": cold_mean,
        "warm_ms_mean": warm_mean,
        "warm_ms_p50": _quantile(warm_ms, 0.50),
        "warm_ms_p99": _quantile(warm_ms, 0.99),
        "warm_wall_s": warm_wall_s,
        "throughput_rps": clients / warm_wall_s,
        "warm_speedup": cold_mean / warm_mean if warm_mean else 0.0,
        "digest_match_ratio": matches / responses,
        "hit_ratio": stats.cache.hit_ratio,
        "coalesced": stats.coalesced,
        "rejected": stats.rejected,
        "peak_queue_depth": stats.peak_queue_depth,
    }


def run_service_bench(
    *,
    size: str = "tiny",
    clients: int = 1000,
    tenants: int = 8,
    workers: int = 4,
    job_mix: tuple[dict, ...] = BENCH_JOB_MIX,
    rng_seed: int = 20250807,
) -> dict:
    """Run the two-phase load scenario and return the report document."""
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if tenants < 1:
        raise ValueError("tenants must be >= 1")
    specs = [JobSpec(size=size, **doc) for doc in job_mix]
    calib_ns = calibrate()
    t_start = time.time()
    measured = asyncio.run(
        _run(specs, clients=clients, tenants=tenants, workers=workers, rng_seed=rng_seed)
    )
    t_end = time.time()
    return {
        "schema": SERVICE_BENCH_SCHEMA,
        "size": size,
        "clients": clients,
        "tenants": tenants,
        "workers": workers,
        "distinct_jobs": len(specs),
        "job_mix": [dict(doc) for doc in job_mix],
        # span tracing is on by default in BrokerConfig; recorded so the
        # committed baseline pins the <5% overhead claim (diff's service.*
        # threshold catches a tracing-induced throughput regression)
        "tracing": BrokerConfig().tracing,
        "t_start": t_start,
        "t_end": t_end,
        "calibration_loop_ns": calib_ns,
        **measured,
        "machine": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
    }


_REQUIRED = {
    "schema": str,
    "size": str,
    "clients": int,
    "tenants": int,
    "workers": int,
    "distinct_jobs": int,
    "t_start": float,
    "t_end": float,
    "calibration_loop_ns": float,
    "cold_ms": list,
    "cold_ms_mean": float,
    "warm_ms_mean": float,
    "warm_ms_p50": float,
    "warm_ms_p99": float,
    "warm_wall_s": float,
    "throughput_rps": float,
    "warm_speedup": float,
    "digest_match_ratio": float,
    "hit_ratio": float,
    "machine": dict,
}


def validate_service_report(doc: dict) -> list[str]:
    """Schema check *plus* the acceptance floor; empty list = valid.

    A report that fails these is not a benchmark with bad numbers, it is
    a broken service: warm hits must be >= 100x faster than cold misses,
    every response digest-identical to the serial reference, and the
    cache actually exercised.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"report must be a dict, got {type(doc).__name__}"]
    for key, typ in _REQUIRED.items():
        if key not in doc:
            problems.append(f"missing key {key!r}")
        elif typ is float and isinstance(doc[key], int) and not isinstance(doc[key], bool):
            continue
        elif not isinstance(doc[key], typ):
            problems.append(f"{key!r} must be {typ.__name__}, got {type(doc[key]).__name__}")
    if problems:
        return problems
    if doc["schema"] != SERVICE_BENCH_SCHEMA:
        problems.append(f"schema {doc['schema']!r} != {SERVICE_BENCH_SCHEMA!r}")
    if doc["clients"] < 1:
        problems.append("clients must be positive")
    if doc["throughput_rps"] <= 0:
        problems.append("throughput_rps must be positive (sustained throughput)")
    if not doc["warm_ms_p50"] <= doc["warm_ms_p99"]:
        problems.append("warm_ms_p50 must be <= warm_ms_p99")
    if doc["warm_speedup"] < 100.0:
        problems.append(
            f"warm_speedup {doc['warm_speedup']:.1f} below the 100x acceptance floor"
        )
    if doc["digest_match_ratio"] != 1.0:
        problems.append(
            f"digest_match_ratio {doc['digest_match_ratio']!r} != 1.0 "
            "(service responses must be digest-identical to serial runs)"
        )
    if not doc["hit_ratio"] > 0.0:
        problems.append("hit_ratio must be nonzero (warm phase never hit the cache)")
    if doc["calibration_loop_ns"] <= 0:
        problems.append("calibration_loop_ns must be positive")
    if doc["t_end"] < doc["t_start"]:
        problems.append("t_end must be >= t_start (monotonic timestamps)")
    return problems


def format_service_report(doc: dict) -> str:
    """Human-readable summary of a service bench report."""
    return "\n".join(
        [
            f"repro.service bench  size={doc['size']}  clients={doc['clients']}  "
            f"tenants={doc['tenants']}  workers={doc['workers']}  "
            f"jobs={doc['distinct_jobs']}",
            f"  cold latency    {doc['cold_ms_mean']:.3f} ms mean  (all: "
            + ", ".join(f"{c:.3f}" for c in doc["cold_ms"])
            + ")",
            f"  warm latency    p50={doc['warm_ms_p50']:.3f} ms  "
            f"p99={doc['warm_ms_p99']:.3f} ms  mean={doc['warm_ms_mean']:.3f} ms",
            f"  warm speedup    {doc['warm_speedup']:.0f}x  (floor: 100x)",
            f"  throughput      {doc['throughput_rps']:.0f} req/s over "
            f"{doc['warm_wall_s']:.3f} s",
            f"  digest match    {doc['digest_match_ratio']:.3f}   "
            f"hit ratio {doc['hit_ratio']:.3f}   coalesced {doc.get('coalesced', 0)}",
            f"  calibration     {doc['calibration_loop_ns'] / 1e6:.1f} ms/spin",
        ]
    )


def write_service_report(doc: dict, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_service_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))
