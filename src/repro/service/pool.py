"""Warm-Lab management for broker worker threads.

The process-pool sweep machinery (:mod:`repro.perf.parallel`) keeps one
warm :class:`~repro.harness.runner.Lab` per worker *process*; the broker
runs jobs on executor *threads*, so :class:`LabPool` keeps one warm Lab
per (thread, lab-shape) instead — same idea, same payoff: the second job
that touches a (dataset, size) pair skips the graph build, and repeated
static cells are served straight from the Lab's run memo.

The one rule that must never be broken (the bug class pinned by the
regression tests in ``tests/test_perf.py``): **dynamic jobs — anything
with an edit script — never touch a warm Lab.**  The Lab memo is keyed
``(app, dataset, impl, permuted)`` with no edit script in the key, and a
replay mutates kernel state across epochs; running job B's replay on a
Lab warmed by job A's could serve A's memoised results or A's residual
state.  Dynamic jobs get a fresh single-use Lab (graph builds still hit
the process-wide :mod:`repro.perf.buildcache`, so the isolation costs a
dictionary miss, not a rebuild).
"""

from __future__ import annotations

import threading

from repro.apps.common import AppResult
from repro.service.jobs import JobSpec, execute_spec

__all__ = ["LabPool"]


class LabPool:
    """Per-thread warm Labs, keyed by the shape of machine they simulate."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self.labs_created = 0
        self.fresh_labs = 0  # single-use Labs built for dynamic jobs

    @staticmethod
    def _key(spec: JobSpec) -> tuple:
        return (spec.size, spec.backend, spec.devices, spec.partition)

    def _warm_lab(self, spec: JobSpec):
        from repro.harness.runner import Lab

        labs = getattr(self._local, "labs", None)
        if labs is None:
            labs = self._local.labs = {}
        key = self._key(spec)
        lab = labs.get(key)
        if lab is None:
            lab = labs[key] = Lab(
                size=spec.size,
                backend=spec.backend,
                devices=spec.devices,
                partition=spec.partition,
            )
            with self._lock:
                self.labs_created += 1
        return lab

    def run(self, spec: JobSpec, *, sink=None) -> AppResult:
        """Execute ``spec`` on the right kind of Lab for its job class.

        ``sink`` (event capture for traced jobs) passes straight through
        to :func:`~repro.service.jobs.execute_spec`, which guarantees a
        sink always observes a fresh, non-memoised execution.
        """
        if spec.edits is not None:
            # dynamic: fresh single-use Lab, never installed as warm state
            with self._lock:
                self.fresh_labs += 1
            return execute_spec(spec, lab=None, sink=sink)
        return execute_spec(spec, lab=self._warm_lab(spec), sink=sink)

    def thread_lab_count(self) -> int:
        """Warm Labs held by the *calling* thread (test hook)."""
        labs = getattr(self._local, "labs", None)
        return len(labs) if labs else 0
