"""Scheduler-as-a-service: async job broker with content-addressed caching.

The service layer turns the deterministic experiment harness into a
long-running multi-tenant facility:

* :mod:`repro.service.jobs` — job specs, content addressing
  (:func:`~repro.service.jobs.job_key`), result digests, and the single
  execution path shared with serial verification;
* :mod:`repro.service.cache` — LRU/byte-budgeted, integrity-checked
  :class:`~repro.service.cache.ResultCache`;
* :mod:`repro.service.broker` — the asyncio
  :class:`~repro.service.broker.Broker`: fair round-robin tenant queues
  with backpressure, warm-Lab worker pool, single-flight coalescing,
  timeouts/retries, graceful drain;
* :mod:`repro.service.http` / :mod:`repro.service.client` — the JSON
  HTTP boundary (``repro serve`` / ``repro submit``);
* :mod:`repro.service.faults` — seeded
  :class:`~repro.service.faults.FaultInjector` proving the recovery
  paths;
* :mod:`repro.service.bench` — the committed ``BENCH_service.json``
  load scenario;
* :mod:`repro.service.telemetry` — Prometheus/JSONL exporters for the
  broker's operational stats.

See ``docs/service.md`` for the API schema and cache-key anatomy.
"""

from repro.service.broker import (
    Broker,
    BrokerClosed,
    BrokerConfig,
    JobFailed,
    QueueFull,
    ServiceStats,
)
from repro.service.cache import DEFAULT_CACHE_BYTES, CacheStats, ResultCache
from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable
from repro.service.faults import FaultInjector, WorkerKilled
from repro.service.http import ServiceServer, serve
from repro.service.jobs import (
    JobResult,
    JobSpec,
    JobSpecError,
    execute_spec,
    job_key,
    result_digest,
    spec_from_dict,
)
from repro.service.pool import LabPool

__all__ = [
    "Broker",
    "BrokerClosed",
    "BrokerConfig",
    "CacheStats",
    "DEFAULT_CACHE_BYTES",
    "FaultInjector",
    "JobFailed",
    "JobResult",
    "JobSpec",
    "JobSpecError",
    "LabPool",
    "QueueFull",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceStats",
    "ServiceUnavailable",
    "WorkerKilled",
    "execute_spec",
    "job_key",
    "result_digest",
    "serve",
    "spec_from_dict",
]
