"""Job specifications and content addressing for the scheduler service.

A :class:`JobSpec` names one deterministic unit of work — a static run, a
perturbed (seeded) run, or a dynamic edit-replay — in plain JSON scalars,
so it can cross the HTTP boundary, be hashed, and be replayed serially
for verification.  Three derived quantities make the service work:

* :func:`job_key` — the content address: SHA-256 over the *canonical*
  job identity ``(app, dataset-topology-digest, config-digest, seed,
  edits, permuted, params)``.  The dataset enters by topology digest
  (:meth:`repro.graph.csr.Csr.topology_digest`), not by name, and the
  configuration by :meth:`repro.core.config.AtosConfig.digest` of the
  *effective* config (backend/devices/partition folded in), so aliases
  and renames share entries while any knob that changes simulated
  behavior — or the wall-clock backend — separates them.
* :func:`execute_spec` — the one way a spec becomes a result, used by
  the broker's worker pool *and* by tests/benchmarks as the serial
  reference, so "service response == direct run" is comparing two walks
  of the same code path on independent Lab state.
* :func:`result_digest` — 16-hex digest over the algorithmic surface of
  an :class:`~repro.apps.common.AppResult` (identity, simulated clock,
  counters, and the raw output array bytes).  Equal digests across the
  service and a direct run certify bit-identical simulation end to end.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import asdict, dataclass, field, fields

import numpy as np

from repro.apps.common import AppResult

__all__ = [
    "JobSpec",
    "JobResult",
    "JobSpecError",
    "job_key",
    "result_digest",
    "execute_spec",
    "spec_from_dict",
]

#: job kinds, derived: ``edits`` set -> replay; ``seed`` > 0 -> perturbed
_SIZES = ("tiny", "small", "default")


class JobSpecError(ValueError):
    """A malformed or unsatisfiable job specification (HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """One deterministic job: what to run, on what, and under which knobs.

    ``seed`` selects a schedule perturbation
    (:func:`repro.check.fuzz.perturbation`): ``0`` is the unperturbed
    run, any positive seed is a distinct — still fully deterministic —
    schedule, so seeds multiply the cacheable universe instead of
    defeating the cache.  ``edits`` routes the job through the dynamic
    edit-replay harness (:func:`repro.apps.dynamic.replay_app`).
    ``params`` are extra kernel arguments (e.g. ``source`` for BFS) as a
    sorted tuple of pairs so the spec stays hashable and canonical.
    """

    app: str
    dataset: str
    config: str = "persist-CTA"
    size: str = "small"
    seed: int = 0
    edits: str | None = None
    backend: str | None = None
    devices: int | None = None
    partition: str | None = None
    permuted: bool = False
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.params, tuple):
            object.__setattr__(
                self, "params", tuple(sorted(dict(self.params).items()))
            )
        else:
            object.__setattr__(self, "params", tuple(sorted(self.params)))

    def to_dict(self) -> dict:
        """JSON-ready form (the HTTP request body's ``job`` object)."""
        doc = asdict(self)
        doc["params"] = dict(self.params)
        return doc

    def describe(self) -> str:
        bits = [f"{self.app}/{self.dataset}/{self.config}", f"size={self.size}"]
        if self.seed:
            bits.append(f"seed={self.seed}")
        if self.edits:
            bits.append(f"edits={self.edits}")
        if self.backend:
            bits.append(f"backend={self.backend}")
        if self.devices and self.devices > 1:
            bits.append(f"devices={self.devices}")
        return " ".join(bits)


_SPEC_FIELDS = {f.name for f in fields(JobSpec)}


def spec_from_dict(doc: object) -> JobSpec:
    """Parse an untrusted JSON object into a :class:`JobSpec`.

    Raises :class:`JobSpecError` with a one-line message on anything
    malformed: wrong container type, unknown keys, wrong value types.
    Name resolution (does the app exist?) happens later in
    :func:`validate_spec` so schema errors and lookup errors read
    differently to a client.
    """
    if not isinstance(doc, dict):
        raise JobSpecError(f"job must be a JSON object, got {type(doc).__name__}")
    unknown = sorted(set(doc) - _SPEC_FIELDS)
    if unknown:
        raise JobSpecError(f"unknown job field(s): {', '.join(unknown)}")
    if "app" not in doc or "dataset" not in doc:
        raise JobSpecError("job needs at least 'app' and 'dataset'")
    clean = dict(doc)
    params = clean.pop("params", {})
    if not isinstance(params, dict):
        raise JobSpecError("'params' must be a JSON object")
    for key, typ, label in (
        ("app", str, "a string"),
        ("dataset", str, "a string"),
        ("config", str, "a string"),
        ("size", str, "a string"),
        ("seed", int, "an integer"),
        ("permuted", bool, "a boolean"),
    ):
        if key in clean and not isinstance(clean[key], typ):
            raise JobSpecError(f"'{key}' must be {label}")
    for key in ("edits", "backend", "partition"):
        if clean.get(key) is not None and not isinstance(clean[key], str):
            raise JobSpecError(f"'{key}' must be a string or null")
    if clean.get("devices") is not None and not isinstance(clean["devices"], int):
        raise JobSpecError("'devices' must be an integer or null")
    try:
        return JobSpec(params=tuple(sorted(params.items())), **clean)
    except TypeError as exc:  # defensive: surfaced as a schema error
        raise JobSpecError(str(exc)) from exc


def validate_spec(spec: JobSpec) -> None:
    """Resolve every name in ``spec``; raise :class:`JobSpecError` if any fails.

    Run by the broker *before* a job is queued, so a bad request is
    rejected synchronously (HTTP 400) instead of burning a worker slot.
    """
    from repro.apps.common import APP_REGISTRY, get_adapter
    from repro.core.config import CONFIGS
    from repro.core.policy import policy_for
    from repro.graph.datasets import resolve_dataset

    if spec.app not in APP_REGISTRY:
        raise JobSpecError(
            f"unknown app {spec.app!r}; known: {', '.join(sorted(APP_REGISTRY))}"
        )
    if spec.config not in CONFIGS:
        raise JobSpecError(
            f"unknown config {spec.config!r}; known: {', '.join(sorted(CONFIGS))}"
        )
    if spec.size not in _SIZES:
        raise JobSpecError(f"unknown size {spec.size!r}; known: {', '.join(_SIZES)}")
    try:
        resolve_dataset(spec.dataset)
    except KeyError as exc:
        raise JobSpecError(str(exc.args[0]) if exc.args else str(exc)) from exc
    if spec.seed < 0:
        raise JobSpecError("seed must be >= 0 (0 = unperturbed)")
    if spec.backend is not None and spec.backend not in ("event", "batched"):
        raise JobSpecError(f"unknown backend {spec.backend!r}; known: event, batched")
    if spec.devices is not None and spec.devices < 1:
        raise JobSpecError("devices must be >= 1")
    if spec.partition is not None:
        from repro.graph.partition import PARTITION_CHOICES

        if spec.partition not in PARTITION_CHOICES:
            raise JobSpecError(
                f"unknown partition {spec.partition!r}; "
                f"known: {', '.join(PARTITION_CHOICES)}"
            )
    adapter = get_adapter(spec.app)
    config = CONFIGS[spec.config]
    if spec.edits is not None and not adapter.dynamic:
        raise JobSpecError(
            f"'edits' needs a dynamic app (bfs-inc, cc-inc, pagerank-inc); "
            f"{spec.app!r} is static"
        )
    if adapter.dynamic and spec.edits is None:
        raise JobSpecError(f"dynamic app {spec.app!r} needs an 'edits' script")
    if spec.seed and policy_for(config).app_level:
        raise JobSpecError(
            f"seed > 0 perturbs the engine schedule; config {spec.config!r} "
            "runs at application level (BSP) and has no engine"
        )
    if spec.edits is not None:
        from repro.graph.delta import _SPEC_RE

        if _SPEC_RE.match(spec.edits.strip()) is None:
            raise JobSpecError(
                f"bad edits spec {spec.edits!r}; "
                "expected EPOCHSxBATCH@SEED[dFRAC], e.g. 3x32@7"
            )


def effective_config(spec: JobSpec):
    """The :class:`~repro.core.config.AtosConfig` the job actually runs.

    Applies the spec's backend override and the devices/partition rebase
    exactly like :class:`repro.harness.runner.Lab` does, so the config
    digest inside :func:`job_key` addresses the *simulated machine*, not
    the preset name the client typed.
    """
    from repro.core.config import CONFIGS, KernelStrategy

    config = CONFIGS[spec.config]
    if spec.backend is not None and spec.backend != config.backend:
        config = config.with_overrides(backend=spec.backend)
    if spec.devices and spec.devices > 1 and config.strategy is not KernelStrategy.BSP:
        overrides: dict = {
            "strategy": KernelStrategy.DISTRIBUTED,
            "devices": spec.devices,
        }
        if spec.partition is not None:
            overrides["partition"] = spec.partition
        config = config.with_overrides(**overrides)
    return config


def dataset_digest(spec: JobSpec) -> str:
    """Topology digest of the job's dataset at the job's size preset.

    Goes through the process-wide build cache
    (:mod:`repro.perf.buildcache`), so after the first request for a
    (dataset, size) pair this is a dictionary lookup plus a memoised
    digest read — cheap enough to run at submit time on every request.
    """
    from repro.graph.datasets import load_dataset, resolve_dataset

    return load_dataset(resolve_dataset(spec.dataset), spec.size).topology_digest()


def job_key(spec: JobSpec, *, graph_digest: str | None = None) -> str:
    """The content address of one job (hex SHA-256).

    Every component that can change the result — or, for ``backend``,
    the execution machinery — is folded in; everything cosmetic (config
    *name*, dataset *alias*) is already normalised away by the digests.
    Memoised per spec (datasets are immutable per (name, size), so the
    address can never go stale) — this sits on the broker's warm path,
    where recomputing the dataset digest would dominate hit latency.
    """
    if graph_digest is None:
        try:
            return _job_key_cached(spec)
        except TypeError:
            pass  # unhashable param value: compute without the memo
    return _job_key_uncached(spec, graph_digest)


@functools.lru_cache(maxsize=4096)
def _job_key_cached(spec: JobSpec) -> str:
    return _job_key_uncached(spec, None)


def _job_key_uncached(spec: JobSpec, graph_digest: str | None) -> str:
    ident = {
        "app": spec.app,
        "dataset": graph_digest or dataset_digest(spec),
        "config": effective_config(spec).digest(),
        "seed": spec.seed,
        "edits": spec.edits,
        "permuted": spec.permuted,
        "params": [[k, v] for k, v in spec.params],
    }
    payload = json.dumps(ident, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Result digest + execution
# ---------------------------------------------------------------------------

def result_digest(result: AppResult) -> str:
    """16-hex digest over the algorithmic surface of a finished run.

    Covers the identity triple, the simulated clock, the work/retire/
    launch counters and the raw output array bytes — everything the
    paper's tables are derived from.  ``extra`` (advisory diagnostics,
    optionally-attached metrics) stays out so the digest is stable
    across observability choices; byte-level cache integrity is handled
    separately by the cache's payload checksum.
    """
    h = hashlib.sha256()
    header = json.dumps(
        {
            "app": result.app,
            "impl": result.impl,
            "dataset": result.dataset,
            "elapsed_ns": repr(float(result.elapsed_ns)),
            "work_units": repr(float(result.work_units)),
            "items_retired": int(result.items_retired),
            "iterations": int(result.iterations),
            "kernel_launches": int(result.kernel_launches),
            "dtype": str(result.output.dtype),
            "shape": list(result.output.shape),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    h.update(header.encode("utf-8"))
    h.update(np.ascontiguousarray(result.output).tobytes())
    return h.hexdigest()[:16]


def execute_spec(spec: JobSpec, lab=None, *, sink=None) -> AppResult:
    """Run one job to completion and return its :class:`AppResult`.

    The single execution path shared by the broker's worker pool and the
    serial verification harness.  ``lab`` supplies warm state (graph and
    result memos); ``None`` builds a fresh one — semantics are identical
    either way because every run is deterministic.

    ``sink`` attaches an observability sink (event capture for traced
    jobs).  Sinks are passive — attaching one cannot change simulated
    results — but a sink must observe a *fresh* execution, so a static
    job with a sink routes through :meth:`Lab.run_config` (never
    memoised) instead of the memoising :meth:`Lab.run`.

    Dynamic jobs (``edits``) replay through
    :func:`repro.apps.dynamic.replay_app` and return the *final epoch's*
    result with replay totals folded into ``extra`` — NEVER through a
    warm Lab's memo: the memo key (app, dataset, impl, permuted) does
    not include the edit script, so serving replays from it would hand
    job B whatever edit script job A ran (see
    :meth:`repro.service.pool.LabPool.run` and the regression tests in
    ``tests/test_perf.py``).
    """
    from repro.harness.runner import Lab

    validate_spec(spec)
    if lab is None:
        lab = Lab(
            size=spec.size,
            backend=spec.backend,
            devices=spec.devices,
            partition=spec.partition,
        )
    if spec.edits is not None:
        dres = lab.replay(
            spec.app, _resolved(spec), spec.config, spec.edits,
            sink=sink, perturb=_perturb(spec), **dict(spec.params),
        )
        final = dres.final
        final.extra["replay_edits"] = dres.edits
        final.extra["replay_epochs"] = len(dres.epochs)
        final.extra["replay_total_elapsed_ns"] = float(dres.total_elapsed_ns)
        final.extra["replay_total_work_units"] = float(dres.total_work_units)
        return final
    if spec.seed or spec.params:
        # perturbed or parameterised runs must not touch the Lab memo —
        # its key has neither seed nor params
        from repro.apps.common import run_app

        return run_app(
            spec.app,
            lab.graph(_resolved(spec), permuted=spec.permuted),
            effective_config(spec),
            spec=lab.spec,
            max_tasks=lab.max_tasks,
            sink=sink,
            perturb=_perturb(spec),
            **dict(spec.params),
        )
    if sink is not None:
        from repro.core.config import CONFIGS

        return lab.run_config(
            spec.app, _resolved(spec), CONFIGS[spec.config],
            permuted=spec.permuted, sink=sink,
        )
    return lab.run(spec.app, _resolved(spec), spec.config, permuted=spec.permuted)


def _resolved(spec: JobSpec) -> str:
    from repro.graph.datasets import resolve_dataset

    return resolve_dataset(spec.dataset)


def _perturb(spec: JobSpec):
    if not spec.seed:
        return None
    from repro.check.fuzz import perturbation

    return perturbation(spec.seed)


# ---------------------------------------------------------------------------
# The service's response record
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JobResult:
    """What the broker hands back (and the HTTP layer serialises).

    ``digest`` is :func:`result_digest` of the underlying run — the
    number a client compares against its own serial reference.
    ``cached`` distinguishes a content-address hit from a fresh
    execution; ``attempts`` counts executions including fault-injected
    retries; ``wall_ms`` is service-side latency (queue wait included).
    ``trace_id`` names the job's span trace (:mod:`repro.dash.trace`),
    fetchable at ``GET /v1/traces/<id>`` while retained; ``None`` when
    the broker runs with tracing off.
    """

    spec: JobSpec
    digest: str
    elapsed_ms: float
    work_units: float
    items_retired: int
    iterations: int
    kernel_launches: int
    cached: bool
    attempts: int
    wall_ms: float
    tenant: str = "default"
    trace_id: str | None = None
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "job": self.spec.to_dict(),
            "digest": self.digest,
            "elapsed_ms": self.elapsed_ms,
            "work_units": self.work_units,
            "items_retired": self.items_retired,
            "iterations": self.iterations,
            "kernel_launches": self.kernel_launches,
            "cached": self.cached,
            "attempts": self.attempts,
            "wall_ms": self.wall_ms,
            "tenant": self.tenant,
            "trace_id": self.trace_id,
        }


def make_job_result(
    spec: JobSpec,
    result: AppResult,
    *,
    cached: bool,
    attempts: int,
    wall_ms: float,
    tenant: str,
    trace_id: str | None = None,
) -> JobResult:
    extra = {
        k: result.extra[k]
        for k in ("replay_edits", "replay_epochs", "replay_total_elapsed_ns")
        if k in result.extra
    }
    return JobResult(
        spec=spec,
        digest=result_digest(result),
        elapsed_ms=float(result.elapsed_ns) / 1e6,
        work_units=float(result.work_units),
        items_retired=int(result.items_retired),
        iterations=int(result.iterations),
        kernel_launches=int(result.kernel_launches),
        cached=cached,
        attempts=attempts,
        wall_ms=wall_ms,
        tenant=tenant,
        trace_id=trace_id,
        extra=extra,
    )
