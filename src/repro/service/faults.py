"""Seeded fault injection for the scheduler service.

The broker's recovery paths — retry-on-crash, timeout-and-retry,
poison-detection-and-recompute — are worthless if they are only ever
*believed* to work.  :class:`FaultInjector` exercises them mechanically:
a seeded RNG decides, per execution attempt, whether the "worker" dies
mid-job (:class:`WorkerKilled` raised inside the executor), how long a
completion is delayed (stressing the per-job timeout), and whether a
freshly stored cache entry is silently corrupted (stressing digest
detection in :class:`~repro.service.cache.ResultCache`).

Determinism matters: the same seed replays the same fault schedule, so a
failing fault test is reproducible.  For tests that need exact control
rather than probabilities, :meth:`script_kills` arms a fixed number of
guaranteed kills consumed before any probabilistic draw.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

__all__ = ["WorkerKilled", "FaultInjector", "NO_FAULTS"]


class WorkerKilled(RuntimeError):
    """A worker died mid-job (the injected stand-in for a process crash).

    The real-process analogue (a pool worker hard-exiting) is covered by
    :mod:`repro.perf.parallel`'s BrokenProcessPool handling; inside the
    broker the same contract holds — the job is lost, not the service —
    and bounded retries re-execute it.
    """


@dataclass
class FaultInjector:
    """Seeded fault source the broker consults at each hook point.

    ``kill_prob``: per attempt, raise :class:`WorkerKilled` mid-execution.
    ``delay_prob`` / ``delay_s``: per attempt, stall the completion by
    ``delay_s`` wall seconds *after* the simulation finished (models a
    straggling worker; trips the per-job timeout when ``delay_s`` exceeds
    it).  ``poison_prob``: after each cache store, flip one byte of a
    random cached entry.  All draws come from one ``random.Random(seed)``
    behind a lock, so a fixed seed yields a fixed fault schedule.
    """

    seed: int = 0
    kill_prob: float = 0.0
    delay_prob: float = 0.0
    delay_s: float = 0.0
    poison_prob: float = 0.0
    #: counters (diagnostics; the broker's stats mirror what *landed*)
    kills_injected: int = 0
    delays_injected: int = 0
    poisons_injected: int = 0
    _scripted_kills: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _lock: threading.Lock = field(init=False, repr=False)

    def __post_init__(self) -> None:
        for name in ("kill_prob", "delay_prob", "poison_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def script_kills(self, n: int) -> None:
        """Arm ``n`` guaranteed kills, consumed before probabilistic ones."""
        with self._lock:
            self._scripted_kills += n

    def maybe_kill(self) -> None:
        """Raise :class:`WorkerKilled` if this attempt draws a crash."""
        with self._lock:
            if self._scripted_kills > 0:
                self._scripted_kills -= 1
                self.kills_injected += 1
                raise WorkerKilled("injected worker crash (scripted)")
            if self.kill_prob and self._rng.random() < self.kill_prob:
                self.kills_injected += 1
                raise WorkerKilled("injected worker crash")

    def completion_delay(self) -> float:
        """Seconds to stall this attempt's completion (0 = no delay)."""
        with self._lock:
            if self.delay_prob and self._rng.random() < self.delay_prob:
                self.delays_injected += 1
                return self.delay_s
        return 0.0

    def maybe_poison(self, cache) -> bool:
        """Corrupt one random cached entry if this store draws a poison."""
        with self._lock:
            if not (self.poison_prob and self._rng.random() < self.poison_prob):
                return False
        keys = cache.keys()
        if not keys:
            return False
        with self._lock:
            victim = self._rng.choice(keys)
            self.poisons_injected += 1
        return cache.corrupt(victim)


#: the no-op injector a production broker runs with
NO_FAULTS = FaultInjector()
