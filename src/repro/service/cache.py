"""Content-addressed result cache: the heart of the service's warm path.

Every :class:`~repro.apps.common.AppResult` in this repository is a pure
function of its :func:`~repro.service.jobs.job_key`, so caching them is
not an approximation — a hit *is* the answer.  This generalises
:mod:`repro.perf.buildcache` (which memoises graph builds) to whole
serialized run results, and adds the two things a long-running service
needs that a process-local memo does not:

* **bounded memory** — entries are charged their pickled byte size
  against a budget and evicted LRU; a hot cell stays resident while a
  one-off sweep ages out;
* **integrity** — every entry stores a SHA-256 checksum of its payload
  bytes plus the run's :func:`~repro.service.jobs.result_digest`.  A
  corrupted entry (bit rot, a buggy writer, the fault injector's
  ``poison``) is *detected on read*, counted, evicted and transparently
  recomputed — a poisoned cache can cost latency, never a wrong answer.

The cache is thread-safe (one lock around the index; serialisation
happens outside it) because broker workers call it from executor
threads while the asyncio side reads stats.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.apps.common import AppResult
from repro.service.jobs import result_digest

__all__ = ["ResultCache", "CacheStats", "DEFAULT_CACHE_BYTES"]

DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of cache effectiveness and integrity counters."""

    hits: int
    misses: int
    evictions: int
    poisons_detected: int
    entries: int
    bytes: int
    max_bytes: int

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Entry:
    payload: bytes
    checksum: str  # SHA-256 of payload bytes (any flipped bit is caught)
    digest: str  # result_digest of the stored run (semantic identity)


def _checksum(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


class ResultCache:
    """LRU, byte-budgeted, integrity-checked store of serialized results."""

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._poisons = 0

    # ------------------------------------------------------------------
    def get(self, key: str) -> AppResult | None:
        """The cached result for ``key``, or ``None`` (miss / poisoned).

        Verifies the payload checksum, deserialises, and re-derives the
        result digest before trusting the entry; any mismatch evicts the
        entry, bumps ``poisons_detected`` and reports a miss so the
        caller recomputes.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
        if _checksum(entry.payload) != entry.checksum:
            self._discard_poisoned(key, entry)
            return None
        try:
            result = pickle.loads(entry.payload)
        except Exception:
            # checksum matched but the bytes never were a valid pickle:
            # a buggy writer rather than bit rot — same recovery path
            self._discard_poisoned(key, entry)
            return None
        if not isinstance(result, AppResult) or result_digest(result) != entry.digest:
            self._discard_poisoned(key, entry)
            return None
        with self._lock:
            self._hits += 1
        return result

    def put(self, key: str, result: AppResult) -> None:
        """Store ``result`` under ``key``, evicting LRU past the budget.

        A result bigger than the whole budget is simply not cached (the
        service still returns it; it just never gets a warm path).
        """
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > self.max_bytes:
            return
        entry = _Entry(
            payload=payload, checksum=_checksum(payload), digest=result_digest(result)
        )
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old.payload)
            self._entries[key] = entry
            self._bytes += len(payload)
            while self._bytes > self.max_bytes and self._entries:
                _, victim = self._entries.popitem(last=False)
                self._bytes -= len(victim.payload)
                self._evictions += 1

    def _discard_poisoned(self, key: str, entry: _Entry) -> None:
        with self._lock:
            # only evict if the slot still holds the entry we inspected
            if self._entries.get(key) is entry:
                del self._entries[key]
                self._bytes -= len(entry.payload)
            self._poisons += 1
            self._misses += 1

    # ------------------------------------------------------------------
    def corrupt(self, key: str, *, offset: int = -1) -> bool:
        """Flip one payload byte of ``key`` in place (fault injection).

        Deliberately leaves the stored checksum stale, simulating silent
        corruption; returns ``False`` when the key is absent.  Test and
        :class:`~repro.service.faults.FaultInjector` hook only.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            payload = bytearray(entry.payload)
            payload[offset] ^= 0xFF
            entry.payload = bytes(payload)
            return True

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                poisons_detected=self._poisons,
                entries=len(self._entries),
                bytes=self._bytes,
                max_bytes=self.max_bytes,
            )
