"""The async job broker: queues, fairness, retries, and the warm path.

:class:`Broker` is the scheduler-as-a-service core.  Clients ``await
submit(spec, tenant=...)``; the broker either answers from the
content-addressed :class:`~repro.service.cache.ResultCache` (warm path,
microseconds), coalesces onto an identical in-flight job (single
flight), or queues the job on its tenant's bounded deque.  A fixed pool
of asyncio workers drains the tenant queues **round-robin** — a tenant
submitting 1000 jobs cannot starve one submitting 2 — and executes each
job on a thread-pool of warm Labs (:class:`~repro.service.pool.LabPool`).

Robustness contract (exercised by ``tests/test_service_faults.py``):

* a full tenant queue rejects synchronously with :class:`QueueFull`
  (HTTP 429) instead of buffering unboundedly;
* each execution attempt runs under a per-job timeout; a worker crash
  (:class:`~repro.service.faults.WorkerKilled`) or timeout triggers a
  bounded retry with linear backoff — determinism guarantees the retry
  computes the *same* result, so a retried job is digest-identical to
  an undisturbed one;
* :meth:`drain` stops intake, finishes every accepted job, and only
  then shuts the workers down — accepted work is never dropped.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.dash.timeseries import ServiceSeries
from repro.dash.trace import EpochWallSink, Trace, Tracer
from repro.metrics.hist import LogHistogram
from repro.obs.collector import Collector
from repro.obs.events import MultiSink
from repro.obs.export import to_chrome_trace
from repro.service.cache import DEFAULT_CACHE_BYTES, CacheStats, ResultCache
from repro.service.faults import FaultInjector, WorkerKilled
from repro.service.jobs import (
    JobResult,
    JobSpec,
    job_key,
    make_job_result,
    spec_from_dict,
    validate_spec,
)
from repro.service.pool import LabPool

__all__ = [
    "Broker",
    "BrokerConfig",
    "BrokerClosed",
    "QueueFull",
    "JobFailed",
    "ServiceStats",
]


class BrokerClosed(RuntimeError):
    """Submit after :meth:`Broker.drain` started (HTTP 503)."""


class QueueFull(RuntimeError):
    """The tenant's queue is at its bound (HTTP 429) — back off and retry."""


class JobFailed(RuntimeError):
    """The job kept failing after the retry budget was spent (HTTP 500)."""


@dataclass(frozen=True)
class BrokerConfig:
    """Operating knobs; defaults suit tests and the in-process benchmark."""

    workers: int = 4
    #: per-tenant queue bound; the backpressure knob (QueueFull past it)
    tenant_queue_limit: int = 64
    cache_bytes: int = DEFAULT_CACHE_BYTES
    #: per-attempt execution timeout (queue wait not included)
    job_timeout_s: float = 60.0
    #: total executions per job, first try included
    max_attempts: int = 3
    #: linear backoff: attempt k sleeps k * retry_backoff_s before retrying
    retry_backoff_s: float = 0.02
    faults: FaultInjector = field(default_factory=FaultInjector)
    #: span tracing (queue-wait / cache / attempt / engine spans per job);
    #: on by default — the overhead is a few µs per job, gated <5% by the
    #: committed BENCH_service.json throughput diff
    tracing: bool = True
    #: additionally capture the engine's obs event stream per traced job
    #: (merged Chrome export, per-epoch spans).  Off by default: attaching
    #: a sink makes the engine construct event objects on the hot path.
    trace_events: bool = False
    #: finished traces retained in memory (FIFO eviction past this)
    trace_capacity: int = 256

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.tenant_queue_limit < 1:
            raise ValueError("tenant_queue_limit must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time snapshot of broker + cache health (JSON-ready)."""

    submitted: int
    completed: int
    failed: int
    rejected: int
    coalesced: int
    retries: int
    timeouts: int
    queue_depth: int
    peak_queue_depth: int
    tenants: int
    workers: int
    draining: bool
    cache: CacheStats
    hit_latency_ms: dict
    miss_latency_ms: dict
    kills_injected: int = 0
    delays_injected: int = 0
    poisons_injected: int = 0
    #: {tenant: {submitted, completed, rejected, queue_depth}} — the
    #: per-tenant fairness/backpressure view (additive to stats-v1)
    per_tenant: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": "repro.service/stats-v1",
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "coalesced": self.coalesced,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "queue_depth": self.queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "tenants": self.tenants,
            "workers": self.workers,
            "draining": self.draining,
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "poisons_detected": self.cache.poisons_detected,
                "entries": self.cache.entries,
                "bytes": self.cache.bytes,
                "max_bytes": self.cache.max_bytes,
                "hit_ratio": self.cache.hit_ratio,
            },
            "hit_latency_ms": self.hit_latency_ms,
            "miss_latency_ms": self.miss_latency_ms,
            "faults": {
                "kills_injected": self.kills_injected,
                "delays_injected": self.delays_injected,
                "poisons_injected": self.poisons_injected,
            },
            "per_tenant": self.per_tenant,
        }


@dataclass
class _Job:
    """One queued unit: the spec, its key, and the future its waiters share."""

    spec: JobSpec
    key: str
    tenant: str
    future: asyncio.Future  # resolves to (AppResult, attempts)
    enqueued_at: float
    enqueued_ns: int = 0
    trace: Trace | None = None


class Broker:
    """Asyncio job broker over a warm-Lab thread pool.  See module docs."""

    def __init__(self, config: BrokerConfig | None = None) -> None:
        self.config = config or BrokerConfig()
        self.cache = ResultCache(self.config.cache_bytes)
        self.pool = LabPool()
        self.faults = self.config.faults
        self._queues: dict[str, deque[_Job]] = {}
        self._rr: list[str] = []  # tenant scan order (insertion-stable)
        self._rr_next = 0
        self._inflight: dict[str, asyncio.Future] = {}
        self._inflight_jobs: dict[str, _Job] = {}
        self._cond: asyncio.Condition | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._workers: list[asyncio.Task] = []
        self._draining = False
        self._started = False
        # counters (single-threaded: only touched on the event loop)
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._coalesced = 0
        self._retries = 0
        self._timeouts = 0
        self._peak_depth = 0
        self._busy = 0
        #: per-tenant counters for the {tenant="..."} telemetry labels
        self._tenant_counts: dict[str, dict[str, int]] = {}
        #: service latency in ms; 1 µs resolution floor
        self.hit_latency = LogHistogram(min_value=1e-3)
        self.miss_latency = LogHistogram(min_value=1e-3)
        #: wall-clock dashboard series (always on; a few list ops per job)
        self.series = ServiceSeries()
        #: span tracer, or None when the config disables tracing
        self.tracer: Tracer | None = (
            Tracer(
                capacity=self.config.trace_capacity,
                capture_events=self.config.trace_events,
            )
            if self.config.tracing
            else None
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spin up the worker tasks (idempotent)."""
        if self._started:
            return
        self._cond = asyncio.Condition()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-svc"
        )
        self._workers = [
            asyncio.ensure_future(self._worker_loop(i))
            for i in range(self.config.workers)
        ]
        self._started = True

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish accepted work, stop."""
        if not self._started:
            return
        self._draining = True
        assert self._cond is not None
        async with self._cond:
            self._cond.notify_all()
        await asyncio.gather(*self._workers, return_exceptions=True)
        assert self._executor is not None
        self._executor.shutdown(wait=True)
        self._started = False

    async def __aenter__(self) -> "Broker":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    async def submit(self, spec: JobSpec | dict, *, tenant: str = "default") -> JobResult:
        """Run (or fetch) one job; resolves when its result is ready.

        Raises :class:`~repro.service.jobs.JobSpecError` on a bad spec,
        :class:`QueueFull` when the tenant is over its bound,
        :class:`BrokerClosed` during drain, :class:`JobFailed` after the
        retry budget.  Every path returns a result whose ``digest``
        equals a direct serial :func:`~repro.service.jobs.execute_spec`.
        """
        if not self._started:
            raise BrokerClosed("broker not started; use 'async with Broker()' or start()")
        if self._draining:
            raise BrokerClosed("broker is draining; not accepting new jobs")
        if not isinstance(spec, JobSpec):
            spec = spec_from_dict(spec)
        validate_spec(spec)
        self._submitted += 1
        self._bump(tenant, "submitted")
        t0_ns = time.perf_counter_ns()
        t0 = t0_ns / 1e9  # perf_counter() and perf_counter_ns() share a clock
        trace: Trace | None = None
        if self.tracer is not None:
            trace = self.tracer.start(job=spec.describe(), key="", tenant=tenant)
            trace.root.start_ns = t0_ns  # root covers key derivation too
        key_span = trace.start_span("job.key") if trace is not None else None
        key = job_key(spec)
        if trace is not None:
            trace.end_span(key_span)
            trace.key = key[:16]
        self.series.mark("submitted")
        self.series.mark_tenant(tenant, "submitted")

        lookup = trace.start_span("cache.lookup") if trace is not None else None
        cached = self.cache.get(key)
        if lookup is not None:
            trace.end_span(lookup, hit=cached is not None)
        if cached is not None:
            wall_ms = (time.perf_counter() - t0) * 1e3
            self.hit_latency.record(wall_ms)
            self.series.mark("hits")
            self.series.mark_tenant(tenant, "completed")
            self._bump(tenant, "completed")
            return make_job_result(
                spec, cached, cached=True, attempts=0, wall_ms=wall_ms, tenant=tenant,
                trace_id=self._finish_trace(trace, "hit"),
            )

        inflight = self._inflight.get(key)
        if inflight is not None:
            # single flight: identical concurrent jobs share one execution
            self._coalesced += 1
            self.series.mark("coalesced")
            leader = self._inflight_jobs.get(key)
            wait_span = trace.start_span("coalesce.wait") if trace is not None else None
            result, attempts = await asyncio.shield(inflight)
            if wait_span is not None:
                trace.end_span(wait_span)
            wall_ms = (time.perf_counter() - t0) * 1e3
            self.hit_latency.record(wall_ms)
            self.series.mark_tenant(tenant, "completed")
            self._bump(tenant, "completed")
            if trace is not None and leader is not None and leader.trace is not None:
                # the share: this trace references the leader's engine span
                engine = leader.trace.find_span("engine")
                trace.root.attrs["shared_trace_id"] = leader.trace.trace_id
                if engine is not None:
                    trace.root.attrs["engine_span_id"] = engine.span_id
            return make_job_result(
                spec, result, cached=True, attempts=attempts, wall_ms=wall_ms,
                tenant=tenant, trace_id=self._finish_trace(trace, "coalesced"),
            )

        queue = self._queues.setdefault(tenant, deque())
        if tenant not in self._rr:
            self._rr.append(tenant)
        if len(queue) >= self.config.tenant_queue_limit:
            self._rejected += 1
            self._bump(tenant, "rejected")
            self.series.mark("rejected")
            self._finish_trace(trace, "rejected", error="tenant queue full")
            raise QueueFull(
                f"tenant {tenant!r} queue is full "
                f"({self.config.tenant_queue_limit} jobs); retry later"
            )
        job = _Job(
            spec=spec,
            key=key,
            tenant=tenant,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=t0,
            enqueued_ns=time.perf_counter_ns(),
            trace=trace,
        )
        queue.append(job)
        self._inflight[key] = job.future
        self._inflight_jobs[key] = job
        depth = sum(len(q) for q in self._queues.values())
        if depth > self._peak_depth:
            self._peak_depth = depth
        self.series.gauge("queue_depth", depth)
        assert self._cond is not None
        async with self._cond:
            self._cond.notify()
        try:
            result, attempts = await asyncio.shield(job.future)
        except BaseException:
            self._finish_trace(trace, "failed")
            raise
        finally:
            if self._inflight.get(key) is job.future:
                del self._inflight[key]
            if self._inflight_jobs.get(key) is job:
                del self._inflight_jobs[key]
        wall_ms = (time.perf_counter() - t0) * 1e3
        self.miss_latency.record(wall_ms)
        self.series.mark("completed")
        self.series.mark_tenant(tenant, "completed")
        self._bump(tenant, "completed")
        return make_job_result(
            spec, result, cached=False, attempts=attempts, wall_ms=wall_ms, tenant=tenant,
            trace_id=self._finish_trace(trace, "miss", attempts=attempts),
        )

    # ------------------------------------------------------------------
    # Tracing / accounting helpers
    # ------------------------------------------------------------------
    def _bump(self, tenant: str, name: str) -> None:
        counts = self._tenant_counts.get(tenant)
        if counts is None:
            counts = self._tenant_counts[tenant] = {
                "submitted": 0, "completed": 0, "rejected": 0
            }
        counts[name] += 1

    def _finish_trace(self, trace: Trace | None, outcome: str, **attrs) -> str | None:
        """Close and retain ``trace``; returns its id (None when untraced)."""
        if trace is None:
            return None
        assert self.tracer is not None
        self.tracer.finish(trace, outcome=outcome, **attrs)
        return trace.trace_id

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _next_job(self) -> _Job | None:
        """Round-robin dequeue across tenants; ``None`` means shut down."""
        assert self._cond is not None
        async with self._cond:
            while True:
                if self._rr:
                    n = len(self._rr)
                    for step in range(n):
                        tenant = self._rr[(self._rr_next + step) % n]
                        queue = self._queues[tenant]
                        if queue:
                            self._rr_next = (self._rr_next + step + 1) % n
                            return queue.popleft()
                if self._draining:
                    return None
                await self._cond.wait()

    async def _worker_loop(self, index: int) -> None:
        while True:
            job = await self._next_job()
            if job is None:
                return
            await self._execute(job, index)

    def _attempt(self, spec: JobSpec, trace: Trace | None = None, attempt_span=None):
        """One execution attempt, run on an executor thread.

        When tracing, the engine span is measured *here* — tight around
        the actual Lab execution, on the thread that ran it — and lands
        in the trace through its append lock.  With event capture on,
        the run also gets a per-job :class:`Collector` (tagged with the
        trace id) plus an :class:`EpochWallSink` whose epoch marks become
        child spans of the engine span for dynamic jobs.
        """
        self.faults.maybe_kill()
        sink = collector = epoch_sink = None
        if trace is not None and self.config.trace_events:
            collector = Collector(trace_id=trace.trace_id)
            epoch_sink = EpochWallSink()
            sink = MultiSink(collector, epoch_sink)
        e0 = time.perf_counter_ns()
        result = self.pool.run(spec, sink=sink)
        e1 = time.perf_counter_ns()
        if trace is not None:
            parent_id = attempt_span.span_id if attempt_span is not None else "root"
            attrs = dict(attempt_span.attrs) if attempt_span is not None else {}
            engine = trace.add_span(
                "engine", start_ns=e0, end_ns=e1, parent_id=parent_id, attrs=attrs
            )
            if collector is not None:
                trace.engine_doc = to_chrome_trace(
                    collector, process_name=f"engine {spec.app}"
                )
                for name, s0, s1 in epoch_sink.epoch_spans():
                    trace.add_span(name, start_ns=s0, end_ns=s1, parent_id=engine.span_id)
        delay = self.faults.completion_delay()
        if delay:
            time.sleep(delay)
        return result

    async def _execute(self, job: _Job, worker: int = 0) -> None:
        """Drive one job through the attempt/retry loop and settle its future."""
        loop = asyncio.get_running_loop()
        trace = job.trace
        if trace is not None:
            trace.add_span(
                "queue.wait",
                start_ns=job.enqueued_ns,
                end_ns=time.perf_counter_ns(),
                attrs={"worker": worker},
            )
        self._busy += 1
        self.series.gauge("busy_workers", self._busy)
        self.series.gauge("queue_depth", self.queue_depth())
        try:
            await self._run_attempts(job, worker, loop, trace)
        finally:
            self._busy -= 1
            self.series.gauge("busy_workers", self._busy)

    async def _run_attempts(self, job: _Job, worker: int, loop, trace: Trace | None) -> None:
        last_error: BaseException | None = None
        for attempt in range(1, self.config.max_attempts + 1):
            cached = self.cache.get(job.key)
            if cached is not None:
                # a sibling worker (or earlier drain pass) beat us to it
                if not job.future.done():
                    job.future.set_result((cached, 0))
                return
            attempt_span = None
            if trace is not None:
                attempt_span = trace.start_span("attempt")
                attempt_span.attrs.update(attempt=attempt, worker=worker)
            try:
                result = await asyncio.wait_for(
                    loop.run_in_executor(
                        self._executor, self._attempt, job.spec, trace, attempt_span
                    ),
                    timeout=self.config.job_timeout_s,
                )
            except WorkerKilled as exc:
                last_error = exc
                if trace is not None:
                    trace.end_span(
                        attempt_span, status="error", error=f"WorkerKilled: {exc}"
                    )
                if attempt < self.config.max_attempts:
                    # retries counts re-executions actually scheduled, so a
                    # kill on the final attempt is a failure, not a retry
                    self._retries += 1
                    await asyncio.sleep(self.config.retry_backoff_s * attempt)
                continue
            except asyncio.TimeoutError as exc:
                # NOTE: the executor thread keeps running (Python threads
                # cannot be killed); the broker just stops waiting for it.
                last_error = TimeoutError(
                    f"attempt {attempt} exceeded {self.config.job_timeout_s}s"
                )
                last_error.__cause__ = exc
                self._timeouts += 1
                if trace is not None:
                    trace.end_span(attempt_span, status="error", error=str(last_error))
                if attempt < self.config.max_attempts:
                    self._retries += 1
                    await asyncio.sleep(self.config.retry_backoff_s * attempt)
                continue
            except Exception as exc:
                # deterministic failure: retrying would fail identically
                self._failed += 1
                self.series.mark("failed")
                if trace is not None:
                    trace.end_span(
                        attempt_span, status="error",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                if not job.future.done():
                    job.future.set_exception(
                        JobFailed(f"{job.spec.describe()}: {type(exc).__name__}: {exc}")
                    )
                return
            if trace is not None:
                trace.end_span(attempt_span)
            self.cache.put(job.key, result)
            self.faults.maybe_poison(self.cache)
            self._completed += 1
            if not job.future.done():
                job.future.set_result((result, attempt))
            return
        self._failed += 1
        self.series.mark("failed")
        if not job.future.done():
            job.future.set_exception(
                JobFailed(
                    f"{job.spec.describe()}: gave up after "
                    f"{self.config.max_attempts} attempts: {last_error}"
                )
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def queue_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def timeseries(self) -> dict:
        """The ``/v1/timeseries`` document: dashboard series + stats."""
        doc = self.series.to_dict()
        doc["tracing"] = self.tracer is not None
        doc["stats"] = self.stats().to_dict()
        return doc

    def traces_doc(self, *, limit: int = 100) -> dict:
        """The ``/v1/traces`` document: recent trace summaries."""
        return {
            "schema": "repro.dash/traces-v1",
            "tracing": self.tracer is not None,
            "traces": self.tracer.summaries(limit=limit) if self.tracer else [],
        }

    def trace_doc(self, trace_id: str) -> dict | None:
        """One full trace document, or None (unknown id / tracing off)."""
        if self.tracer is None:
            return None
        trace = self.tracer.get(trace_id)
        return trace.to_dict() if trace is not None else None

    def stats(self) -> ServiceStats:
        return ServiceStats(
            submitted=self._submitted,
            completed=self._completed,
            failed=self._failed,
            rejected=self._rejected,
            coalesced=self._coalesced,
            retries=self._retries,
            timeouts=self._timeouts,
            queue_depth=self.queue_depth(),
            peak_queue_depth=self._peak_depth,
            tenants=len(self._queues),
            workers=self.config.workers,
            draining=self._draining,
            cache=self.cache.stats(),
            hit_latency_ms=self.hit_latency.to_dict(),
            miss_latency_ms=self.miss_latency.to_dict(),
            kills_injected=self.faults.kills_injected,
            delays_injected=self.faults.delays_injected,
            poisons_injected=self.faults.poisons_injected,
            per_tenant={
                tenant: {
                    **counts,
                    "queue_depth": len(self._queues.get(tenant, ())),
                }
                for tenant, counts in sorted(self._tenant_counts.items())
            },
        )
