"""The async job broker: queues, fairness, retries, and the warm path.

:class:`Broker` is the scheduler-as-a-service core.  Clients ``await
submit(spec, tenant=...)``; the broker either answers from the
content-addressed :class:`~repro.service.cache.ResultCache` (warm path,
microseconds), coalesces onto an identical in-flight job (single
flight), or queues the job on its tenant's bounded deque.  A fixed pool
of asyncio workers drains the tenant queues **round-robin** — a tenant
submitting 1000 jobs cannot starve one submitting 2 — and executes each
job on a thread-pool of warm Labs (:class:`~repro.service.pool.LabPool`).

Robustness contract (exercised by ``tests/test_service_faults.py``):

* a full tenant queue rejects synchronously with :class:`QueueFull`
  (HTTP 429) instead of buffering unboundedly;
* each execution attempt runs under a per-job timeout; a worker crash
  (:class:`~repro.service.faults.WorkerKilled`) or timeout triggers a
  bounded retry with linear backoff — determinism guarantees the retry
  computes the *same* result, so a retried job is digest-identical to
  an undisturbed one;
* :meth:`drain` stops intake, finishes every accepted job, and only
  then shuts the workers down — accepted work is never dropped.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.metrics.hist import LogHistogram
from repro.service.cache import DEFAULT_CACHE_BYTES, CacheStats, ResultCache
from repro.service.faults import FaultInjector, WorkerKilled
from repro.service.jobs import (
    JobResult,
    JobSpec,
    job_key,
    make_job_result,
    spec_from_dict,
    validate_spec,
)
from repro.service.pool import LabPool

__all__ = [
    "Broker",
    "BrokerConfig",
    "BrokerClosed",
    "QueueFull",
    "JobFailed",
    "ServiceStats",
]


class BrokerClosed(RuntimeError):
    """Submit after :meth:`Broker.drain` started (HTTP 503)."""


class QueueFull(RuntimeError):
    """The tenant's queue is at its bound (HTTP 429) — back off and retry."""


class JobFailed(RuntimeError):
    """The job kept failing after the retry budget was spent (HTTP 500)."""


@dataclass(frozen=True)
class BrokerConfig:
    """Operating knobs; defaults suit tests and the in-process benchmark."""

    workers: int = 4
    #: per-tenant queue bound; the backpressure knob (QueueFull past it)
    tenant_queue_limit: int = 64
    cache_bytes: int = DEFAULT_CACHE_BYTES
    #: per-attempt execution timeout (queue wait not included)
    job_timeout_s: float = 60.0
    #: total executions per job, first try included
    max_attempts: int = 3
    #: linear backoff: attempt k sleeps k * retry_backoff_s before retrying
    retry_backoff_s: float = 0.02
    faults: FaultInjector = field(default_factory=FaultInjector)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.tenant_queue_limit < 1:
            raise ValueError("tenant_queue_limit must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time snapshot of broker + cache health (JSON-ready)."""

    submitted: int
    completed: int
    failed: int
    rejected: int
    coalesced: int
    retries: int
    timeouts: int
    queue_depth: int
    peak_queue_depth: int
    tenants: int
    workers: int
    draining: bool
    cache: CacheStats
    hit_latency_ms: dict
    miss_latency_ms: dict
    kills_injected: int = 0
    delays_injected: int = 0
    poisons_injected: int = 0

    def to_dict(self) -> dict:
        return {
            "schema": "repro.service/stats-v1",
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "coalesced": self.coalesced,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "queue_depth": self.queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "tenants": self.tenants,
            "workers": self.workers,
            "draining": self.draining,
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "poisons_detected": self.cache.poisons_detected,
                "entries": self.cache.entries,
                "bytes": self.cache.bytes,
                "max_bytes": self.cache.max_bytes,
                "hit_ratio": self.cache.hit_ratio,
            },
            "hit_latency_ms": self.hit_latency_ms,
            "miss_latency_ms": self.miss_latency_ms,
            "faults": {
                "kills_injected": self.kills_injected,
                "delays_injected": self.delays_injected,
                "poisons_injected": self.poisons_injected,
            },
        }


@dataclass
class _Job:
    """One queued unit: the spec, its key, and the future its waiters share."""

    spec: JobSpec
    key: str
    tenant: str
    future: asyncio.Future  # resolves to (AppResult, attempts)
    enqueued_at: float


class Broker:
    """Asyncio job broker over a warm-Lab thread pool.  See module docs."""

    def __init__(self, config: BrokerConfig | None = None) -> None:
        self.config = config or BrokerConfig()
        self.cache = ResultCache(self.config.cache_bytes)
        self.pool = LabPool()
        self.faults = self.config.faults
        self._queues: dict[str, deque[_Job]] = {}
        self._rr: list[str] = []  # tenant scan order (insertion-stable)
        self._rr_next = 0
        self._inflight: dict[str, asyncio.Future] = {}
        self._cond: asyncio.Condition | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._workers: list[asyncio.Task] = []
        self._draining = False
        self._started = False
        # counters (single-threaded: only touched on the event loop)
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._coalesced = 0
        self._retries = 0
        self._timeouts = 0
        self._peak_depth = 0
        #: service latency in ms; 1 µs resolution floor
        self.hit_latency = LogHistogram(min_value=1e-3)
        self.miss_latency = LogHistogram(min_value=1e-3)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spin up the worker tasks (idempotent)."""
        if self._started:
            return
        self._cond = asyncio.Condition()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-svc"
        )
        self._workers = [
            asyncio.ensure_future(self._worker_loop(i))
            for i in range(self.config.workers)
        ]
        self._started = True

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish accepted work, stop."""
        if not self._started:
            return
        self._draining = True
        assert self._cond is not None
        async with self._cond:
            self._cond.notify_all()
        await asyncio.gather(*self._workers, return_exceptions=True)
        assert self._executor is not None
        self._executor.shutdown(wait=True)
        self._started = False

    async def __aenter__(self) -> "Broker":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    async def submit(self, spec: JobSpec | dict, *, tenant: str = "default") -> JobResult:
        """Run (or fetch) one job; resolves when its result is ready.

        Raises :class:`~repro.service.jobs.JobSpecError` on a bad spec,
        :class:`QueueFull` when the tenant is over its bound,
        :class:`BrokerClosed` during drain, :class:`JobFailed` after the
        retry budget.  Every path returns a result whose ``digest``
        equals a direct serial :func:`~repro.service.jobs.execute_spec`.
        """
        if not self._started:
            raise BrokerClosed("broker not started; use 'async with Broker()' or start()")
        if self._draining:
            raise BrokerClosed("broker is draining; not accepting new jobs")
        if not isinstance(spec, JobSpec):
            spec = spec_from_dict(spec)
        validate_spec(spec)
        self._submitted += 1
        t0 = time.perf_counter()
        key = job_key(spec)

        cached = self.cache.get(key)
        if cached is not None:
            wall_ms = (time.perf_counter() - t0) * 1e3
            self.hit_latency.record(wall_ms)
            return make_job_result(
                spec, cached, cached=True, attempts=0, wall_ms=wall_ms, tenant=tenant
            )

        inflight = self._inflight.get(key)
        if inflight is not None:
            # single flight: identical concurrent jobs share one execution
            self._coalesced += 1
            result, attempts = await asyncio.shield(inflight)
            wall_ms = (time.perf_counter() - t0) * 1e3
            self.hit_latency.record(wall_ms)
            return make_job_result(
                spec, result, cached=True, attempts=attempts, wall_ms=wall_ms, tenant=tenant
            )

        queue = self._queues.setdefault(tenant, deque())
        if tenant not in self._rr:
            self._rr.append(tenant)
        if len(queue) >= self.config.tenant_queue_limit:
            self._rejected += 1
            raise QueueFull(
                f"tenant {tenant!r} queue is full "
                f"({self.config.tenant_queue_limit} jobs); retry later"
            )
        job = _Job(
            spec=spec,
            key=key,
            tenant=tenant,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=t0,
        )
        queue.append(job)
        self._inflight[key] = job.future
        depth = sum(len(q) for q in self._queues.values())
        if depth > self._peak_depth:
            self._peak_depth = depth
        assert self._cond is not None
        async with self._cond:
            self._cond.notify()
        try:
            result, attempts = await asyncio.shield(job.future)
        finally:
            if self._inflight.get(key) is job.future:
                del self._inflight[key]
        wall_ms = (time.perf_counter() - t0) * 1e3
        self.miss_latency.record(wall_ms)
        return make_job_result(
            spec, result, cached=False, attempts=attempts, wall_ms=wall_ms, tenant=tenant
        )

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _next_job(self) -> _Job | None:
        """Round-robin dequeue across tenants; ``None`` means shut down."""
        assert self._cond is not None
        async with self._cond:
            while True:
                if self._rr:
                    n = len(self._rr)
                    for step in range(n):
                        tenant = self._rr[(self._rr_next + step) % n]
                        queue = self._queues[tenant]
                        if queue:
                            self._rr_next = (self._rr_next + step + 1) % n
                            return queue.popleft()
                if self._draining:
                    return None
                await self._cond.wait()

    async def _worker_loop(self, index: int) -> None:
        while True:
            job = await self._next_job()
            if job is None:
                return
            await self._execute(job)

    def _attempt(self, spec: JobSpec):
        """One execution attempt, run on an executor thread."""
        self.faults.maybe_kill()
        result = self.pool.run(spec)
        delay = self.faults.completion_delay()
        if delay:
            time.sleep(delay)
        return result

    async def _execute(self, job: _Job) -> None:
        """Drive one job through the attempt/retry loop and settle its future."""
        loop = asyncio.get_running_loop()
        last_error: BaseException | None = None
        for attempt in range(1, self.config.max_attempts + 1):
            cached = self.cache.get(job.key)
            if cached is not None:
                # a sibling worker (or earlier drain pass) beat us to it
                if not job.future.done():
                    job.future.set_result((cached, 0))
                return
            try:
                result = await asyncio.wait_for(
                    loop.run_in_executor(self._executor, self._attempt, job.spec),
                    timeout=self.config.job_timeout_s,
                )
            except WorkerKilled as exc:
                last_error = exc
                if attempt < self.config.max_attempts:
                    # retries counts re-executions actually scheduled, so a
                    # kill on the final attempt is a failure, not a retry
                    self._retries += 1
                    await asyncio.sleep(self.config.retry_backoff_s * attempt)
                continue
            except asyncio.TimeoutError as exc:
                # NOTE: the executor thread keeps running (Python threads
                # cannot be killed); the broker just stops waiting for it.
                last_error = TimeoutError(
                    f"attempt {attempt} exceeded {self.config.job_timeout_s}s"
                )
                last_error.__cause__ = exc
                self._timeouts += 1
                if attempt < self.config.max_attempts:
                    self._retries += 1
                    await asyncio.sleep(self.config.retry_backoff_s * attempt)
                continue
            except Exception as exc:
                # deterministic failure: retrying would fail identically
                self._failed += 1
                if not job.future.done():
                    job.future.set_exception(
                        JobFailed(f"{job.spec.describe()}: {type(exc).__name__}: {exc}")
                    )
                return
            self.cache.put(job.key, result)
            self.faults.maybe_poison(self.cache)
            self._completed += 1
            if not job.future.done():
                job.future.set_result((result, attempt))
            return
        self._failed += 1
        if not job.future.done():
            job.future.set_exception(
                JobFailed(
                    f"{job.spec.describe()}: gave up after "
                    f"{self.config.max_attempts} attempts: {last_error}"
                )
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def queue_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def stats(self) -> ServiceStats:
        return ServiceStats(
            submitted=self._submitted,
            completed=self._completed,
            failed=self._failed,
            rejected=self._rejected,
            coalesced=self._coalesced,
            retries=self._retries,
            timeouts=self._timeouts,
            queue_depth=self.queue_depth(),
            peak_queue_depth=self._peak_depth,
            tenants=len(self._queues),
            workers=self.config.workers,
            draining=self._draining,
            cache=self.cache.stats(),
            hit_latency_ms=self.hit_latency.to_dict(),
            miss_latency_ms=self.miss_latency.to_dict(),
            kills_injected=self.faults.kills_injected,
            delays_injected=self.faults.delays_injected,
            poisons_injected=self.faults.poisons_injected,
        )
