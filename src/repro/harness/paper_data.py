"""The paper's published numbers, as data.

Machine-readable transcription of the evaluation-section results of
Chen et al., ICPP 2022 — used by :mod:`repro.harness.report` to print
paper-vs-measured tables and compute shape verdicts, and by a few
benchmarks to assert reproduction targets.  Keeping the numbers in one
audited place avoids scattering magic constants through benches.

All runtimes are milliseconds on the authors' V100; speedups are
"x over BSP" exactly as printed in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PaperCell",
    "PAPER_TABLE1",
    "PAPER_TABLE4",
    "PAPER_PERMUTATION",
    "PAPER_DATASETS",
    "table1_speedup",
    "table4_ratio",
]


@dataclass(frozen=True)
class PaperCell:
    """One (implementation) cell of a paper Table 1 row."""

    runtime_ms: float
    speedup: float


# Table 1 — runtime (ms) and speedup vs BSP.
# {app: {dataset: {"BSP": ms, impl: PaperCell, ...}}}
PAPER_TABLE1: dict[str, dict[str, dict[str, object]]] = {
    "bfs": {
        "soc-LiveJournal1": {
            "BSP": 15.3,
            "persist-warp": PaperCell(22.3, 0.68),
            "persist-CTA": PaperCell(12.4, 1.23),
            "discrete-CTA": PaperCell(10.7, 1.42),
        },
        "hollywood-2009": {
            "BSP": 9.26,
            "persist-warp": PaperCell(12.2, 0.75),
            "persist-CTA": PaperCell(6.23, 1.48),
            "discrete-CTA": PaperCell(4.56, 2.02),
        },
        "indochina-2004": {
            "BSP": 13.2,
            "persist-warp": PaperCell(15.6, 0.84),
            "persist-CTA": PaperCell(8.03, 1.65),
            "discrete-CTA": PaperCell(7.42, 1.79),
        },
        "road_usa": {
            "BSP": 604.0,
            "persist-warp": PaperCell(327.0, 1.84),
            "persist-CTA": PaperCell(46.9, 12.8),
            "discrete-CTA": PaperCell(174.0, 3.46),
        },
        "roadNet-CA": {
            "BSP": 55.9,
            "persist-warp": PaperCell(39.6, 1.41),
            "persist-CTA": PaperCell(4.35, 12.8),
            "discrete-CTA": PaperCell(15.5, 3.58),
        },
    },
    "pagerank": {
        "soc-LiveJournal1": {
            "BSP": 262.0,
            "persist-warp": PaperCell(156.0, 1.68),
            "persist-CTA": PaperCell(113.0, 2.31),
            "discrete-CTA": PaperCell(116.0, 2.25),
        },
        "hollywood-2009": {
            "BSP": 87.1,
            "persist-warp": PaperCell(80.0, 1.08),
            "persist-CTA": PaperCell(68.5, 1.27),
            "discrete-CTA": PaperCell(72.4, 1.20),
        },
        "indochina-2004": {
            "BSP": 159.0,
            "persist-warp": PaperCell(84.7, 1.88),
            "persist-CTA": PaperCell(52.6, 3.02),
            "discrete-CTA": PaperCell(49.6, 3.20),
        },
        "road_usa": {
            "BSP": 221.0,
            "persist-warp": PaperCell(169.0, 1.30),
            "persist-CTA": PaperCell(121.0, 1.81),
            "discrete-CTA": PaperCell(112.0, 1.95),
        },
        "roadNet-CA": {
            "BSP": 20.5,
            "persist-warp": PaperCell(16.2, 1.26),
            "persist-CTA": PaperCell(10.1, 2.03),
            "discrete-CTA": PaperCell(8.28, 2.47),
        },
    },
    "coloring": {
        "soc-LiveJournal1": {
            "BSP": 96.5,
            "persist-warp": PaperCell(20.4, 4.71),
            "persist-CTA": PaperCell(36.1, 2.67),
            "discrete-warp": PaperCell(63.2, 1.52),
        },
        "hollywood-2009": {
            "BSP": 77.9,
            "persist-warp": PaperCell(31.9, 2.40),
            "persist-CTA": PaperCell(59.3, 1.31),
            "discrete-warp": PaperCell(274.0, 0.28),
        },
        "indochina-2004": {
            "BSP": 673.0,
            "persist-warp": PaperCell(74.1, 9.08),
            "persist-CTA": PaperCell(184.0, 3.65),
            "discrete-warp": PaperCell(2073.0, 0.32),
        },
        "road_usa": {
            "BSP": 38.2,
            "persist-warp": PaperCell(51.4, 0.74),
            "persist-CTA": PaperCell(19.3, 1.97),
            "discrete-warp": PaperCell(81.9, 0.46),
        },
        "roadNet-CA": {
            "BSP": 9.11,
            "persist-warp": PaperCell(4.18, 2.18),
            "persist-CTA": PaperCell(3.52, 2.58),
            "discrete-warp": PaperCell(12.0, 0.75),
        },
    },
}

# Table 4 — workload ratios.  BFS/PageRank vs Gunrock; coloring vs |V|.
PAPER_TABLE4: dict[str, dict[str, dict[str, float]]] = {
    "bfs": {
        "soc-LiveJournal1": {"persist-warp": 1.43, "persist-CTA": 1.06, "discrete-CTA": 1.01},
        "hollywood-2009": {"persist-warp": 2.26, "persist-CTA": 1.19, "discrete-CTA": 1.07},
        "indochina-2004": {"persist-warp": 1.28, "persist-CTA": 1.00, "discrete-CTA": 1.00},
        "road_usa": {"persist-warp": 3.56, "persist-CTA": 1.05, "discrete-CTA": 1.04},
        "roadNet-CA": {"persist-warp": 2.05, "persist-CTA": 1.02, "discrete-CTA": 1.04},
    },
    "pagerank": {
        "soc-LiveJournal1": {"persist-warp": 0.73, "persist-CTA": 0.72, "discrete-CTA": 0.72},
        "hollywood-2009": {"persist-warp": 1.08, "persist-CTA": 1.18, "discrete-CTA": 0.90},
        "indochina-2004": {"persist-warp": 0.76, "persist-CTA": 0.73, "discrete-CTA": 0.75},
        "road_usa": {"persist-warp": 0.79, "persist-CTA": 0.79, "discrete-CTA": 0.92},
        "roadNet-CA": {"persist-warp": 1.18, "persist-CTA": 1.11, "discrete-CTA": 0.97},
    },
    "coloring": {
        "soc-LiveJournal1": {"BSP": 1.17, "persist-warp": 1.00, "persist-CTA": 1.74, "discrete-warp": 2.78},
        "hollywood-2009": {"BSP": 3.31, "persist-warp": 1.15, "persist-CTA": 5.24, "discrete-warp": 37.34},
        "indochina-2004": {"BSP": 1.96, "persist-warp": 1.04, "persist-CTA": 4.45, "discrete-warp": 16.97},
        "road_usa": {"BSP": 1.22, "persist-warp": 1.00, "persist-CTA": 1.46, "discrete-warp": 1.41},
        "roadNet-CA": {"BSP": 2.55, "persist-warp": 1.00, "persist-CTA": 1.74, "discrete-warp": 2.44},
    },
}

# Section 6.3 inline table — coloring runtime (ms) before -> after random
# vertex-id permutation, scale-free datasets only.
PAPER_PERMUTATION: dict[str, dict[str, tuple[float, float]]] = {
    "soc-LiveJournal1": {
        "discrete-warp": (63.0, 31.0),
        "persist-CTA": (36.0, 21.0),
        "BSP": (96.0, 89.0),
    },
    "hollywood-2009": {
        "discrete-warp": (274.0, 26.0),
        "persist-CTA": (59.0, 28.0),
        "BSP": (77.0, 61.0),
    },
    "indochina-2004": {
        "discrete-warp": (2073.0, 222.0),
        "persist-CTA": (184.0, 50.0),
        "BSP": (673.0, 485.0),
    },
}

# Table 2 — the original datasets' stats (vertices, edges, diameter,
# max in-degree, max out-degree, average degree).
PAPER_DATASETS: dict[str, dict[str, float]] = {
    "soc-LiveJournal1": {"vertices": 4.8e6, "edges": 68e6, "diameter": 20, "max_in": 13905, "max_out": 20292, "avg_degree": 14},
    "hollywood-2009": {"vertices": 1.1e6, "edges": 112e6, "diameter": 11, "max_in": 11467, "max_out": 11467, "avg_degree": 105},
    "indochina-2004": {"vertices": 7.4e6, "edges": 191e6, "diameter": 26, "max_in": 256425, "max_out": 6984, "avg_degree": 8},
    "road_usa": {"vertices": 23.9e6, "edges": 57e6, "diameter": 6809, "max_in": 9, "max_out": 9, "avg_degree": 2},
    "roadNet-CA": {"vertices": 1.9e6, "edges": 5e6, "diameter": 849, "max_in": 12, "max_out": 12, "avg_degree": 2},
}


def table1_speedup(app: str, dataset: str, impl: str) -> float:
    """Paper Table 1 speedup for one cell."""
    cell = PAPER_TABLE1[app][dataset][impl]
    if not isinstance(cell, PaperCell):
        raise KeyError(f"{impl!r} has no speedup (it is the baseline)")
    return cell.speedup


def table4_ratio(app: str, dataset: str, impl: str) -> float:
    """Paper Table 4 workload ratio for one cell."""
    return PAPER_TABLE4[app][dataset][impl]
