"""Benchmark harness: one entry point per paper artifact.

:class:`~repro.harness.runner.Lab` runs the experiment matrix (application
x dataset x implementation) with memoisation, so regenerating Figure 1
reuses the runs Table 1 already performed.  :mod:`repro.harness.experiments`
is the registry mapping every paper table/figure to the workload,
parameters, and modules that reproduce it (the DESIGN.md per-experiment
index, as code).
"""

from repro.harness.experiments import EXPERIMENTS, Experiment
from repro.harness.report import shape_report
from repro.harness.runner import Lab

__all__ = ["Lab", "EXPERIMENTS", "Experiment", "shape_report"]
