"""Registry of reproducible paper artifacts.

Each :class:`Experiment` entry records what the paper reported, which
workload regenerates it, and which modules implement the pieces — the
machine-readable version of DESIGN.md's per-experiment index.  Benchmarks
look their experiment up here so the mapping lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Experiment", "EXPERIMENTS", "ALL_DATASETS", "SCALE_FREE", "MESH"]

ALL_DATASETS = (
    "soc-LiveJournal1",
    "hollywood-2009",
    "indochina-2004",
    "road_usa",
    "roadNet-CA",
)
SCALE_FREE = ALL_DATASETS[:3]
MESH = ALL_DATASETS[3:]

#: implementation matrix of Section 6.1, per application
TABLE1_IMPLS = {
    "bfs": ("BSP", "persist-warp", "persist-CTA", "discrete-CTA"),
    "pagerank": ("BSP", "persist-warp", "persist-CTA", "discrete-CTA"),
    "coloring": ("BSP", "persist-warp", "persist-CTA", "discrete-warp"),
}


@dataclass(frozen=True)
class Experiment:
    """One paper artifact and how to regenerate it."""

    key: str
    paper_artifact: str
    description: str
    datasets: tuple[str, ...]
    apps: tuple[str, ...]
    modules: tuple[str, ...]
    bench: str
    notes: str = ""
    parameters: dict = field(default_factory=dict)


EXPERIMENTS: dict[str, Experiment] = {
    exp.key: exp
    for exp in [
        Experiment(
            key="table1",
            paper_artifact="Table 1",
            description=(
                "Runtime and speedup of BSP vs three Atos variants for "
                "BFS, PageRank and graph coloring on five datasets"
            ),
            datasets=ALL_DATASETS,
            apps=("bfs", "pagerank", "coloring"),
            modules=(
                "repro.apps.bfs",
                "repro.apps.pagerank",
                "repro.apps.coloring",
                "repro.bsp.engine",
                "repro.core.scheduler",
            ),
            bench="benchmarks/bench_table1.py",
            parameters={"impls": TABLE1_IMPLS},
        ),
        Experiment(
            key="table2",
            paper_artifact="Table 2",
            description="Dataset summary: vertices, edges, diameter, degree stats",
            datasets=ALL_DATASETS,
            apps=(),
            modules=("repro.graph.datasets", "repro.graph.metrics"),
            bench="benchmarks/bench_table2.py",
            notes="Reports the synthetic stand-ins' stats next to the paper's",
        ),
        Experiment(
            key="table3",
            paper_artifact="Table 3",
            description="Per-(app, graph-class) BSP performance challenges",
            datasets=ALL_DATASETS,
            apps=("bfs", "pagerank", "coloring"),
            modules=("repro.analysis.challenges",),
            bench="benchmarks/bench_table3.py",
            notes="Derived from measured BSP traces, not transcribed",
        ),
        Experiment(
            key="table4",
            paper_artifact="Table 4",
            description=(
                "Workload ratios: Atos vs Gunrock for BFS/PageRank; "
                "assignments per vertex for coloring"
            ),
            datasets=ALL_DATASETS,
            apps=("bfs", "pagerank", "coloring"),
            modules=("repro.analysis.overwork",),
            bench="benchmarks/bench_table4.py",
        ),
        Experiment(
            key="fig1",
            paper_artifact="Figure 1",
            description="BFS normalized throughput vs timeline, 4 impls",
            datasets=ALL_DATASETS,
            apps=("bfs",),
            modules=("repro.sim.trace", "repro.analysis.throughput"),
            bench="benchmarks/bench_fig1.py",
        ),
        Experiment(
            key="fig2",
            paper_artifact="Figure 2",
            description="PageRank normalized throughput vs timeline",
            datasets=ALL_DATASETS,
            apps=("pagerank",),
            modules=("repro.sim.trace", "repro.analysis.throughput"),
            bench="benchmarks/bench_fig2.py",
        ),
        Experiment(
            key="fig3",
            paper_artifact="Figure 3",
            description="Graph coloring normalized throughput vs timeline",
            datasets=ALL_DATASETS,
            apps=("coloring",),
            modules=("repro.sim.trace", "repro.analysis.throughput"),
            bench="benchmarks/bench_fig3.py",
        ),
        Experiment(
            key="fig4",
            paper_artifact="Figure 4",
            description=(
                "Runtime heatmap over (worker size, fetch size) for BFS and "
                "PageRank on soc-LiveJournal1 and road_usa; lower triangle"
            ),
            datasets=("soc-LiveJournal1", "road_usa"),
            apps=("bfs", "pagerank"),
            modules=("repro.core.config", "repro.harness.runner"),
            bench="benchmarks/bench_fig4.py",
            parameters={
                "worker_sizes": (32, 64, 128, 256, 512),
                "fetch_sizes": (1, 4, 16, 64, 256),
            },
        ),
        Experiment(
            key="permute-gc",
            paper_artifact="Section 6.3 inline table",
            description=(
                "Graph-coloring runtimes before/after random vertex-id "
                "permutation, scale-free datasets"
            ),
            datasets=SCALE_FREE,
            apps=("coloring",),
            modules=("repro.graph.permute", "repro.apps.coloring"),
            bench="benchmarks/bench_permutation.py",
            parameters={"impls": ("discrete-warp", "persist-CTA", "BSP")},
        ),
        Experiment(
            key="kernel-strategy",
            paper_artifact="Section 6.5",
            description=(
                "Persistent vs discrete gap: mesh BFS and permuted "
                "indochina coloring (paper: ~4.3x)"
            ),
            datasets=("road_usa", "roadNet-CA", "indochina-2004"),
            apps=("bfs", "coloring"),
            modules=("repro.core.scheduler",),
            bench="benchmarks/bench_kernel_strategy.py",
        ),
        Experiment(
            key="queue-scaling",
            paper_artifact="Section 1 design claim",
            description=(
                "Single shared queue vs multi-queue: contention wait and "
                "runtime (ablation; the paper asserts one queue suffices)"
            ),
            datasets=("soc-LiveJournal1",),
            apps=("bfs",),
            modules=("repro.queueing.broker",),
            bench="benchmarks/bench_ablations.py",
        ),
    ]
}
