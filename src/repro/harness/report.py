"""Paper-vs-measured reporting with shape verdicts.

This is the machinery behind the EXPERIMENTS.md comparison: for every
Table 1 / Table 4 cell it pairs the paper's published value
(:mod:`repro.harness.paper_data`) with the reproduction's measurement and
assigns a *shape verdict*:

* ``match``     — same side of 1.0 and within a factor of 2;
* ``direction`` — same side of 1.0 (who wins agrees) but magnitude off;
* ``miss``      — the winner flipped.

The suite-level summary (fraction of cells at ``match``/``direction``)
is the one-number answer to "did the reproduction work?".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.harness.paper_data import PAPER_TABLE1, PAPER_TABLE4, PaperCell
from repro.harness.runner import Lab

__all__ = ["CellVerdict", "compare_table1", "compare_table4", "shape_report"]

_MAGNITUDE_TOLERANCE = 2.0


@dataclass(frozen=True)
class CellVerdict:
    """One paper-vs-measured comparison cell."""

    app: str
    dataset: str
    impl: str
    paper: float
    measured: float
    verdict: str  # "match" | "direction" | "miss"

    @staticmethod
    def judge(paper: float, measured: float) -> str:
        """Shape verdict for a ratio-valued quantity (speedup or workload)."""
        if paper <= 0 or measured <= 0:
            return "miss"
        same_side = (paper >= 1.0) == (measured >= 1.0)
        # quantities straddling 1.0 by a hair are effectively ties
        near_tie = abs(paper - 1.0) < 0.15 or abs(measured - 1.0) < 0.15
        magnitude = max(paper / measured, measured / paper)
        if same_side and magnitude <= _MAGNITUDE_TOLERANCE:
            return "match"
        if same_side or near_tie:
            return "direction"
        return "miss"


def compare_table1(lab: Lab, app: str) -> list[CellVerdict]:
    """Verdicts for every Atos speedup cell of one Table 1 sub-table."""
    verdicts = []
    for dataset, cells in PAPER_TABLE1[app].items():
        rows = lab.table1(app, (dataset,))
        measured = rows[0].speedups
        for impl, cell in cells.items():
            if not isinstance(cell, PaperCell):
                continue
            verdicts.append(
                CellVerdict(
                    app=app,
                    dataset=dataset,
                    impl=impl,
                    paper=cell.speedup,
                    measured=measured[impl],
                    verdict=CellVerdict.judge(cell.speedup, measured[impl]),
                )
            )
    return verdicts


def compare_table4(lab: Lab, app: str) -> list[CellVerdict]:
    """Verdicts for every workload-ratio cell of one Table 4 sub-table."""
    verdicts = []
    for dataset, cells in PAPER_TABLE4[app].items():
        row = lab.table4(app, (dataset,))[0]
        for impl, paper_ratio in cells.items():
            measured = float(row[impl])
            verdicts.append(
                CellVerdict(
                    app=app,
                    dataset=dataset,
                    impl=impl,
                    paper=paper_ratio,
                    measured=measured,
                    verdict=CellVerdict.judge(paper_ratio, measured),
                )
            )
    return verdicts


def shape_report(lab: Lab, *, apps: tuple[str, ...] = ("bfs", "pagerank", "coloring")) -> str:
    """Full paper-vs-measured report with the suite-level verdict."""
    sections = []
    all_verdicts: list[CellVerdict] = []
    for app in apps:
        for title, verdicts in (
            (f"Table 1 speedups — {app}", compare_table1(lab, app)),
            (f"Table 4 workload ratios — {app}", compare_table4(lab, app)),
        ):
            all_verdicts.extend(verdicts)
            rows = [
                [v.dataset, v.impl, f"{v.paper:.2f}", f"{v.measured:.2f}", v.verdict]
                for v in verdicts
            ]
            sections.append(
                format_table(
                    ["Dataset", "impl", "paper", "measured", "verdict"],
                    rows,
                    title=title,
                )
            )
    n = len(all_verdicts)
    matches = sum(v.verdict == "match" for v in all_verdicts)
    directions = sum(v.verdict == "direction" for v in all_verdicts)
    misses = n - matches - directions
    sections.append(
        f"shape verdict: {matches}/{n} match, {directions}/{n} direction-only, "
        f"{misses}/{n} miss "
        f"({(matches + directions) / max(n, 1):.0%} of cells agree on the winner)"
    )
    return "\n\n".join(sections)
