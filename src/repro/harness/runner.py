"""The experiment runner.

:class:`Lab` memoises application runs over the (app, dataset,
implementation) matrix and derives every table and figure from them, so a
full regeneration of the paper's evaluation section shares work across
artifacts.  All entry points return plain data structures plus a
``format_*`` companion that renders the paper-shaped ASCII table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.challenges import ChallengeReport, classify_challenges
from repro.analysis.overwork import coloring_workload_ratio, workload_ratio
from repro.analysis.tables import format_table
from repro.analysis.throughput import normalized_series, render_figure
from repro.apps.common import AppResult, get_adapter, run_app
from repro.graph.csr import Csr
from repro.graph.datasets import DATASETS, load_dataset
from repro.graph.metrics import compute_stats
from repro.graph.permute import permute_vertices
from repro.core.config import CONFIGS, AtosConfig, KernelStrategy
from repro.harness.experiments import ALL_DATASETS, TABLE1_IMPLS
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = ["Lab", "Table1Row"]


@dataclass(frozen=True)
class Table1Row:
    """One (app, dataset) row of Table 1."""

    app: str
    dataset: str
    graph_type: str
    bsp_ms: float
    atos_ms: dict  # impl -> runtime ms
    speedups: dict  # impl -> speedup over BSP


@dataclass
class Lab:
    """Caching experiment runner over the paper's evaluation matrix."""

    size: str = "default"
    spec: GpuSpec = field(default_factory=lambda: V100_SPEC)
    max_tasks: int = 20_000_000
    #: oracle-check every run's output (repro.check.oracles); wrong
    #: answers raise instead of silently feeding a table
    validate: bool = False
    #: stream telemetry on every engine-level run (repro.metrics): the
    #: MetricsSummary document lands in ``result.extra["metrics"]``
    metrics: bool = False
    #: engine inner-loop override (repro.core.backend); None keeps each
    #: configuration's own ``backend`` field.  Purely a wall-clock knob —
    #: results are bit-identical across backends
    backend: str | None = None
    #: simulate every engine-level run on N devices: rebases each config
    #: onto the distributed strategy (repro.core.distributed), keeping its
    #: name so cells stay comparable across device counts.  Unlike
    #: ``backend`` this CHANGES simulated results — it is the scaling
    #: study knob, not an equivalence knob.  None/1 leaves configs alone
    devices: int | None = None
    #: partition choice for ``devices`` > 1 (repro.graph.partition:
    #: "edge"/"vertex" or a method name); None keeps each config's own
    partition: str | None = None

    def __post_init__(self) -> None:
        self._graphs: dict[str, Csr] = {}
        self._results: dict[tuple, AppResult] = {}

    def _effective_config(self, config: AtosConfig) -> AtosConfig:
        """Apply the Lab-level device override to one configuration.

        BSP configs have no engine (and no queues to distribute), so they
        pass through untouched, exactly like the ``backend`` override.
        """
        if not self.devices or self.devices <= 1:
            return config
        if config.strategy is KernelStrategy.BSP:
            return config
        overrides: dict = {
            "strategy": KernelStrategy.DISTRIBUTED,
            "devices": self.devices,
        }
        if self.partition is not None:
            overrides["partition"] = self.partition
        return config.with_overrides(**overrides)

    # ------------------------------------------------------------------
    def graph(self, dataset: str, *, permuted: bool = False) -> Csr:
        """Load (and cache) a dataset stand-in, optionally id-permuted."""
        key = f"{dataset}+perm" if permuted else dataset
        if key not in self._graphs:
            g = load_dataset(dataset, self.size)
            if permuted:
                g = permute_vertices(g, seed=42)
            self._graphs[key] = g
        return self._graphs[key]

    def run(self, app: str, dataset: str, impl: str, *, permuted: bool = False) -> AppResult:
        """Run (and cache) one cell of the evaluation matrix.

        ``impl`` is any named configuration from
        :data:`repro.core.config.CONFIGS` — ``"BSP"``, the paper's four Atos
        variants, or the hybrid extensions.
        """
        get_adapter(app)  # fail fast before loading the graph
        cache_key = (app, dataset, impl, permuted)
        if cache_key in self._results:
            return self._results[cache_key]
        if impl not in CONFIGS:
            raise KeyError(
                f"unknown implementation {impl!r}; known: {sorted(CONFIGS)}"
            )
        graph = self.graph(dataset, permuted=permuted)
        result = run_app(
            app,
            graph,
            self._effective_config(CONFIGS[impl]),
            spec=self.spec,
            max_tasks=self.max_tasks,
            validate=self.validate,
            metrics=self.metrics and CONFIGS[impl].strategy is not KernelStrategy.BSP,
            backend=self.backend,
        )
        self._stamp_metrics(result)
        self._results[cache_key] = result
        return result

    def _stamp_metrics(self, result: AppResult) -> None:
        """Fill the Lab-level identity (size) into a run's MetricsSummary."""
        summary = result.extra.get("metrics")
        if summary is not None:
            summary["size"] = self.size

    def run_grid(
        self,
        apps: tuple[str, ...] | list[str],
        datasets: tuple[str, ...] | list[str],
        impls: tuple[str, ...] | list[str],
        *,
        permuted: bool = False,
        workers: int | None = None,
    ) -> list:
        """Run the full apps x datasets x impls grid; see :meth:`run_cells`."""
        from repro.perf.parallel import SweepCell

        cells = [
            SweepCell(app, ds, impl, permuted)
            for app in apps
            for ds in datasets
            for impl in impls
        ]
        return self.run_cells(cells, workers=workers)

    def run_cells(self, cells, *, workers: int | None = None) -> list:
        """Run a list of :class:`~repro.perf.parallel.SweepCell`.

        Returns one entry per cell, in cell order: the
        :class:`~repro.apps.common.AppResult`, or a
        :class:`~repro.perf.parallel.CellError` if that cell raised.
        ``workers`` of ``None``/0/1 runs serially in this process through
        the Lab's memo; larger values fan out over a process pool (each
        worker keeps its own warm Lab) and fold the results back into
        this Lab's memo, so a parallel sweep primes later table calls
        exactly like a serial one.
        """
        from repro.perf.parallel import CellError, replay_cell, run_cells

        cells = list(cells)
        if not workers or workers <= 1:
            out = []
            for cell in cells:
                try:
                    if getattr(cell, "edits", None) is not None:
                        # dynamic cell: replay (never memoised) instead of
                        # run — the run memo's key has no edit script
                        out.append(replay_cell(cell, self))
                    else:
                        out.append(
                            self.run(cell.app, cell.dataset, cell.impl, permuted=cell.permuted)
                        )
                except Exception as exc:
                    import traceback as _tb

                    out.append(
                        CellError(
                            cell=cell,
                            kind=type(exc).__name__,
                            message=str(exc),
                            traceback="".join(
                                _tb.format_exception(type(exc), exc, exc.__traceback__)
                            ),
                        )
                    )
            return out
        results = run_cells(
            cells,
            size=self.size,
            spec=self.spec,
            max_tasks=self.max_tasks,
            validate=self.validate,
            backend=self.backend,
            workers=workers,
            devices=self.devices,
            partition=self.partition,
        )
        for cell, res in zip(cells, results):
            # dynamic cells must NOT be folded into the run memo: its key
            # (app, dataset, impl, permuted) has no edit script, so a later
            # static run() of the same coordinates would be served the
            # replay's final epoch (regression-pinned in tests/test_perf.py)
            if not isinstance(res, CellError) and getattr(cell, "edits", None) is None:
                self._results[(cell.app, cell.dataset, cell.impl, cell.permuted)] = res
        return results

    def run_config(
        self,
        app: str,
        dataset: str,
        config: AtosConfig,
        *,
        permuted: bool = False,
        sink=None,
        metrics=None,
    ) -> AppResult:
        """Run an arbitrary configuration (design-space sweeps).

        ``sink`` attaches an observability sink (:class:`repro.obs.Collector`)
        to the run; unlike :meth:`run`, nothing here is memoised, so the
        sink always observes a fresh execution.  ``metrics`` overrides the
        Lab-level default (``True``/``False`` or a pre-configured
        :class:`~repro.metrics.sink.MetricsSink`).
        """
        graph = self.graph(dataset, permuted=permuted)
        result = run_app(
            app,
            graph,
            self._effective_config(config),
            spec=self.spec,
            max_tasks=self.max_tasks,
            sink=sink,
            validate=self.validate,
            metrics=(
                self.metrics and config.strategy is not KernelStrategy.BSP
                if metrics is None
                else metrics
            ),
            backend=self.backend,
        )
        self._stamp_metrics(result)
        return result

    def collect(
        self,
        app: str,
        dataset: str,
        config: AtosConfig | str,
        *,
        permuted: bool = False,
        metrics=None,
        trace_id: str | None = None,
    ):
        """Run one cell with a fresh :class:`~repro.obs.Collector` attached.

        The observability entry point the ``trace`` and ``dash`` CLI
        commands (and the service's event-capture mode) share: returns
        ``(result, collector)`` from a never-memoised execution, so the
        collector saw every event of exactly this run.  ``trace_id``
        stamps the collector for correlation with a service trace.
        """
        from repro.obs.collector import Collector

        if isinstance(config, str):
            config = CONFIGS[config]
        collector = Collector(trace_id=trace_id)
        result = self.run_config(
            app, dataset, config, permuted=permuted, sink=collector, metrics=metrics
        )
        return result, collector

    def replay(
        self,
        app: str,
        dataset: str,
        config: AtosConfig | str,
        edits: str,
        *,
        sink=None,
        validate: bool | None = None,
        perturb=None,
        **params,
    ):
        """Replay an edit script through a dynamic app on a Lab dataset.

        The dynamic counterpart of :meth:`run_config`: resolves the graph
        through the Lab's dataset cache and size preset, then hands off to
        :func:`repro.apps.dynamic.replay_app`.  Never memoised — the
        kernel mutates across epochs, so every replay is fresh.
        """
        from repro.apps.dynamic import replay_app

        graph = self.graph(dataset)
        if isinstance(config, str):
            config = CONFIGS[config]
        return replay_app(
            app,
            graph,
            self._effective_config(config),
            edits,
            spec=self.spec,
            max_tasks=self.max_tasks,
            sink=sink,
            validate=self.validate if validate is None else validate,
            perturb=perturb,
            backend=self.backend,
            **params,
        )

    # ------------------------------------------------------------------
    # Table 1
    # ------------------------------------------------------------------
    def table1(self, app: str, datasets: tuple[str, ...] = ALL_DATASETS) -> list[Table1Row]:
        """Runtime + speedup rows for one application."""
        impls = TABLE1_IMPLS[app]
        rows = []
        for ds in datasets:
            base = self.run(app, ds, "BSP")
            atos_ms = {}
            speedups = {}
            for impl in impls[1:]:
                res = self.run(app, ds, impl)
                atos_ms[impl] = res.elapsed_ms
                speedups[impl] = res.speedup_over(base)
            rows.append(
                Table1Row(
                    app=app,
                    dataset=ds,
                    graph_type=DATASETS[ds].graph_type,
                    bsp_ms=base.elapsed_ms,
                    atos_ms=atos_ms,
                    speedups=speedups,
                )
            )
        return rows

    def format_table1(self, app: str, datasets: tuple[str, ...] = ALL_DATASETS) -> str:
        impls = TABLE1_IMPLS[app][1:]
        rows = self.table1(app, datasets)
        body = []
        for r in rows:
            cells = [f"{r.dataset} ({r.graph_type[0]})", f"{r.bsp_ms:.3f}"]
            for impl in impls:
                cells.append(f"{r.atos_ms[impl]:.3f} (x{r.speedups[impl]:.2f})")
            body.append(cells)
        return format_table(
            ["Dataset", "BSP (ms)", *impls],
            body,
            title=f"Table 1 — {app} (runtime ms, speedup vs BSP)",
        )

    # ------------------------------------------------------------------
    # Table 2
    # ------------------------------------------------------------------
    def table2(self, datasets: tuple[str, ...] = ALL_DATASETS) -> list:
        """Structural stats of the stand-ins (paper Table 2)."""
        return [compute_stats(self.graph(ds)) for ds in datasets]

    def format_table2(self, datasets: tuple[str, ...] = ALL_DATASETS) -> str:
        body = []
        for ds, stats in zip(datasets, self.table2(datasets)):
            info = DATASETS[ds]
            body.append(
                [
                    ds,
                    info.graph_type,
                    stats.num_vertices,
                    stats.num_edges,
                    stats.diameter,
                    stats.max_in_degree,
                    stats.max_out_degree,
                    round(stats.avg_degree, 1),
                    f"{info.paper_vertices}/{info.paper_edges}/d{info.paper_diameter}",
                ]
            )
        return format_table(
            [
                "Dataset",
                "Type",
                "Vertices",
                "Edges",
                "Diam.",
                "MaxIn",
                "MaxOut",
                "AvgDeg",
                "Paper(V/E/diam)",
            ],
            body,
            title="Table 2 — dataset stand-ins",
        )

    # ------------------------------------------------------------------
    # Table 3
    # ------------------------------------------------------------------
    def table3(self, datasets: tuple[str, ...] = ALL_DATASETS) -> list[ChallengeReport]:
        reports = []
        for app in ("bfs", "pagerank", "coloring"):
            for ds in datasets:
                base = self.run(app, ds, "BSP")
                reports.append(classify_challenges(self.graph(ds), base))
        return reports

    def format_table3(self, datasets: tuple[str, ...] = ALL_DATASETS) -> str:
        reports = self.table3(datasets)
        by_cell: dict[tuple[str, str], list[str]] = {}
        for r in reports:
            by_cell.setdefault((r.app, r.graph_type), []).append(r.label())
        body = []
        for gtype in ("scale-free", "mesh-like"):
            cells = [gtype]
            for app in ("bfs", "pagerank", "coloring"):
                labels = by_cell.get((app, gtype), [])
                # majority label across the class's datasets
                cells.append(max(set(labels), key=labels.count) if labels else "-")
            body.append(cells)
        return format_table(
            ["Graph class", "BFS", "PageRank", "Graph Coloring"],
            body,
            title="Table 3 — BSP performance challenges (derived)",
        )

    # ------------------------------------------------------------------
    # Table 4
    # ------------------------------------------------------------------
    def table4(self, app: str, datasets: tuple[str, ...] = ALL_DATASETS) -> list[dict]:
        """Workload ratios for one application."""
        rows = []
        for ds in datasets:
            base = self.run(app, ds, "BSP")
            row: dict[str, object] = {"dataset": ds}
            if app == "coloring":
                n = self.graph(ds).num_vertices
                row["BSP"] = coloring_workload_ratio(base, n)
                for impl in TABLE1_IMPLS[app][1:]:
                    row[impl] = coloring_workload_ratio(self.run(app, ds, impl), n)
            else:
                for impl in TABLE1_IMPLS[app][1:]:
                    row[impl] = workload_ratio(self.run(app, ds, impl), base)
            rows.append(row)
        return rows

    def format_table4(self, app: str, datasets: tuple[str, ...] = ALL_DATASETS) -> str:
        rows = self.table4(app, datasets)
        impls = [k for k in rows[0] if k != "dataset"]
        body = [[r["dataset"], *[f"{r[i]:.2f}" for i in impls]] for r in rows]
        unit = "assignments / |V|" if app == "coloring" else "work vs BSP"
        return format_table(
            ["Dataset", *impls],
            body,
            title=f"Table 4 — {app} workload ratio ({unit})",
        )

    # ------------------------------------------------------------------
    # Figures 1-3
    # ------------------------------------------------------------------
    def figure(self, app: str, dataset: str, *, bins: int = 60) -> list[tuple[str, object]]:
        """Normalized-throughput curves for one (app, dataset) panel."""
        impls = TABLE1_IMPLS[app]
        base = self.run(app, dataset, "BSP")
        results = {impl: self.run(app, dataset, impl) for impl in impls}
        end = max(r.elapsed_ns for r in results.values())
        curves = []
        for impl, res in results.items():
            if app == "coloring":
                over = coloring_workload_ratio(res, self.graph(dataset).num_vertices)
            elif impl == "BSP":
                over = 1.0
            else:
                over = workload_ratio(res, base)
            curves.append(
                (impl, normalized_series(res, max(over, 1e-9), bins=bins, end_time=end))
            )
        return curves

    def format_figure(self, app: str, dataset: str, *, bins: int = 60) -> str:
        curves = self.figure(app, dataset, bins=bins)
        fig_no = {"bfs": 1, "pagerank": 2, "coloring": 3}[app]
        return render_figure(
            f"Figure {fig_no} — {app} on {dataset}: normalized throughput vs time",
            curves,
        )

    # ------------------------------------------------------------------
    # Figure 4: design-space sweep
    # ------------------------------------------------------------------
    def sweep(
        self,
        app: str,
        dataset: str,
        *,
        worker_sizes: tuple[int, ...] = (32, 64, 128, 256, 512),
        fetch_sizes: tuple[int, ...] = (1, 4, 16, 64, 256),
        persistent: bool = True,
    ) -> np.ndarray:
        """Runtime (ms) heatmap over worker size x fetch size.

        Entries above the "lower triangle" (fetch_size > worker_threads)
        are NaN — matching the valid region of the paper's Figure 4.
        """
        out = np.full((len(worker_sizes), len(fetch_sizes)), np.nan)
        for i, w in enumerate(worker_sizes):
            for j, f in enumerate(fetch_sizes):
                if f > w:
                    continue  # outside the paper's valid triangle
                config = AtosConfig(
                    strategy=KernelStrategy.PERSISTENT if persistent else KernelStrategy.DISCRETE,
                    worker_threads=w,
                    fetch_size=f,
                    internal_lb=w > 32,
                    registers_per_thread=56 if persistent else 40,
                    name=f"{'persist' if persistent else 'discrete'}-{w}-{f}",
                )
                out[i, j] = self.run_config(app, dataset, config).elapsed_ms
        return out

    def format_sweep(
        self,
        app: str,
        dataset: str,
        *,
        worker_sizes: tuple[int, ...] = (32, 64, 128, 256, 512),
        fetch_sizes: tuple[int, ...] = (1, 4, 16, 64, 256),
    ) -> str:
        grid = self.sweep(app, dataset, worker_sizes=worker_sizes, fetch_sizes=fetch_sizes)
        body = []
        for i, w in enumerate(worker_sizes):
            row = [f"worker={w}"]
            for j in range(len(fetch_sizes)):
                v = grid[i, j]
                row.append("-" if np.isnan(v) else f"{v:.3f}")
            body.append(row)
        return format_table(
            ["", *[f"fetch={f}" for f in fetch_sizes]],
            body,
            title=f"Figure 4 — {app} on {dataset}: runtime (ms) heatmap",
        )

    # ------------------------------------------------------------------
    # Section 6.3 permutation study
    # ------------------------------------------------------------------
    def permutation_study(
        self, datasets: tuple[str, ...]
    ) -> list[dict]:
        """Coloring runtimes before/after random id permutation."""
        rows = []
        for ds in datasets:
            row: dict[str, object] = {"dataset": ds}
            for impl in ("discrete-warp", "persist-CTA", "BSP"):
                before = self.run("coloring", ds, impl, permuted=False)
                after = self.run("coloring", ds, impl, permuted=True)
                row[impl] = (before.elapsed_ms, after.elapsed_ms)
            rows.append(row)
        return rows

    def format_permutation_study(self, datasets: tuple[str, ...]) -> str:
        rows = self.permutation_study(datasets)
        body = []
        for r in rows:
            cells = [r["dataset"]]
            for impl in ("discrete-warp", "persist-CTA", "BSP"):
                before, after = r[impl]
                cells.append(f"{before:.3f} -> {after:.3f}")
            body.append(cells)
        return format_table(
            ["Dataset", "discrete-warp", "persist-CTA", "BSP"],
            body,
            title="Section 6.3 — coloring runtime (ms), before -> after id permutation",
        )
