"""Wall-clock service time series feeding the live dashboard.

:class:`ServiceSeries` reuses :class:`~repro.metrics.series.StrideSeries`
— built for *simulated* nanoseconds, but the contract (fixed-stride
grid, stride-doubling rescale, O(max_bins) memory) is axis-agnostic — on
the broker's wall clock.  One instance lives on the broker and is bumped
a handful of times per job (submit, complete, queue-depth change), so
the cost is a few dict/list ops per request: negligible next to a cache
lookup, let alone a simulation.

Per-tenant series are capped at ``max_tenants`` distinct tenants;
overflow traffic folds into the ``"…other"`` bucket so a tenant-id storm
cannot grow the document unboundedly (the same bounded-memory stance as
everywhere else in the telemetry stack).
"""

from __future__ import annotations

import time

from repro.metrics.series import StrideSeries

__all__ = ["TIMESERIES_SCHEMA", "ServiceSeries"]

TIMESERIES_SCHEMA = "repro.dash/timeseries-v1"

#: starting bin width: 250 ms of wall time (doubles as the run grows)
_STRIDE_NS = 250e6
_OVERFLOW = "…other"


def _rate() -> StrideSeries:
    return StrideSeries("rate", stride_ns=_STRIDE_NS)


def _gauge() -> StrideSeries:
    return StrideSeries("gauge", stride_ns=_STRIDE_NS)


class ServiceSeries:
    """Bounded-memory dashboard series over the broker's wall clock."""

    #: global series names in render order
    NAMES = (
        "submitted",
        "completed",
        "hits",
        "coalesced",
        "rejected",
        "failed",
        "queue_depth",
        "busy_workers",
    )

    def __init__(self, *, max_tenants: int = 16) -> None:
        self.t0_ns = time.perf_counter_ns()
        self.max_tenants = max_tenants
        self.series: dict[str, StrideSeries] = {
            "submitted": _rate(),
            "completed": _rate(),
            "hits": _rate(),
            "coalesced": _rate(),
            "rejected": _rate(),
            "failed": _rate(),
            "queue_depth": _gauge(),
            "busy_workers": _gauge(),
        }
        self.tenants: dict[str, dict[str, StrideSeries]] = {}

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return float(time.perf_counter_ns() - self.t0_ns)

    def _tenant(self, tenant: str) -> dict[str, StrideSeries]:
        block = self.tenants.get(tenant)
        if block is None:
            if len(self.tenants) >= self.max_tenants:
                tenant = _OVERFLOW
                block = self.tenants.get(tenant)
                if block is None:
                    block = self.tenants[tenant] = {
                        "submitted": _rate(), "completed": _rate()
                    }
            else:
                block = self.tenants[tenant] = {
                    "submitted": _rate(), "completed": _rate()
                }
        return block

    # ------------------------------------------------------------------
    def mark(self, name: str, n: float = 1.0) -> None:
        """Bump one of the global rate series at wall-now."""
        self.series[name].add(self._now(), n)

    def mark_tenant(self, tenant: str, name: str, n: float = 1.0) -> None:
        """Bump a per-tenant rate (``submitted`` / ``completed``)."""
        self._tenant(tenant)[name].add(self._now(), n)

    def gauge(self, name: str, value: float) -> None:
        """Record a gauge (``queue_depth`` / ``busy_workers``) at wall-now."""
        self.series[name].observe(self._now(), value)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": TIMESERIES_SCHEMA,
            "wall_s": self._now() / 1e9,
            "series": {name: s.to_dict() for name, s in self.series.items()},
            "tenants": {
                tenant: {name: s.to_dict() for name, s in block.items()}
                for tenant, block in sorted(self.tenants.items())
            },
        }
