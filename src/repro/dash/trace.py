"""Span-based tracing for the service path (broker → LabPool → engine).

The obs layer (:mod:`repro.obs`) records *simulated* time inside one
engine run; this module records *wall-clock* spans across the service
machinery around it, so one submitted job becomes one :class:`Trace`:

* a root ``job`` span covering submit → result,
* a ``cache.lookup`` child (every path),
* a ``queue.wait`` child (enqueue → worker dequeue),
* one ``attempt`` child per execution attempt (failed attempts carry
  ``status="error"``),
* an ``engine`` child inside each attempt, measured on the executor
  thread around the actual :meth:`~repro.service.pool.LabPool.run`, and
* for dynamic (``--edits``) jobs with event capture on, one ``epoch``
  child per replay epoch under the engine span
  (:class:`EpochWallSink` stamps the wall clock at each
  :class:`~repro.obs.events.EpochMark`).

Design constraints that shaped this:

* **Event reprs are digest-pinned.**  The obs event dataclasses cannot
  grow a ``trace_id`` field without changing their byte-stable reprs
  (and thereby every golden digest).  Correlation therefore lives one
  level up: the broker tags the per-job :class:`~repro.obs.Collector`
  with the trace id, and the Chrome export stamps it into ``otherData``
  — the *stream* stays bit-identical.
* **Spans close on executor threads.**  The engine span is measured on
  the worker thread that ran the simulation, while the root closes on
  the event loop; :class:`Trace` serialises appends behind a lock.
* **Bounded memory.**  :class:`Tracer` keeps the last ``capacity``
  finished traces (FIFO eviction), mirroring the bounded-memory
  contract everywhere else in the telemetry stack.

:func:`trace_to_chrome` merges one trace with its captured engine event
stream into a single Chrome ``trace_event`` document: broker wall-clock
spans under one pid, the engine's simulated-time events under another,
``otherData.trace_id`` shared — the "one merged trace file per job".
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.obs.events import EpochMark, TraceEvent

__all__ = [
    "TRACE_SCHEMA",
    "TraceContext",
    "Span",
    "Trace",
    "Tracer",
    "EpochWallSink",
    "trace_to_chrome",
]

TRACE_SCHEMA = "repro.dash/trace-v1"

#: wall-clock now in integer nanoseconds (one clock for every span)
now_ns = time.perf_counter_ns


def _new_id() -> str:
    """16-hex random id (trace or span); uniqueness, not cryptography."""
    return os.urandom(8).hex()


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The propagatable identity of a trace: its id + the parent span id.

    Minted at :meth:`~repro.service.broker.Broker.submit`; everything
    downstream (LabPool, engine Collector, Chrome export) references the
    ``trace_id``, and child spans attach under ``span_id``.
    """

    trace_id: str
    span_id: str

    def child_of(self, span: "Span") -> "TraceContext":
        return TraceContext(self.trace_id, span.span_id)


@dataclass(slots=True)
class Span:
    """One named wall-clock interval inside a trace."""

    span_id: str
    parent_id: str | None
    name: str
    start_ns: int
    end_ns: int | None = None
    status: str = "ok"
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return 0 if self.end_ns is None else self.end_ns - self.start_ns

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class Trace:
    """One job's spans plus (optionally) its captured engine events.

    Appends are lock-serialised: the engine span lands from an executor
    thread while the root span closes on the event loop.
    """

    def __init__(self, trace_id: str, *, job: str, key: str, tenant: str) -> None:
        self.trace_id = trace_id
        self.job = job
        self.key = key
        self.tenant = tenant
        self.outcome = "open"
        self.spans: list[Span] = []
        self.engine_doc: dict | None = None  # Chrome doc of the captured run
        self._lock = threading.Lock()
        self.root = self.start_span("job", parent_id=None)

    # ------------------------------------------------------------------
    def start_span(
        self, name: str, *, parent_id: str | None = "root", start_ns: int | None = None
    ) -> Span:
        """Open a span; ``parent_id="root"`` (default) nests under the root."""
        if parent_id == "root":
            parent_id = self.root.span_id
        span = Span(
            span_id=_new_id(),
            parent_id=parent_id,
            name=name,
            start_ns=now_ns() if start_ns is None else start_ns,
        )
        with self._lock:
            self.spans.append(span)
        return span

    def end_span(self, span: Span, *, status: str = "ok", **attrs) -> Span:
        span.end_ns = now_ns()
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        return span

    def add_span(
        self,
        name: str,
        *,
        start_ns: int,
        end_ns: int,
        parent_id: str | None = "root",
        status: str = "ok",
        attrs: dict | None = None,
    ) -> Span:
        """Record a span whose bounds were measured externally."""
        span = self.start_span(name, parent_id=parent_id, start_ns=start_ns)
        span.end_ns = end_ns
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        return span

    # ------------------------------------------------------------------
    def find_span(self, name: str) -> Span | None:
        """First span with this name, or None."""
        with self._lock:
            for span in self.spans:
                if span.name == name:
                    return span
        return None

    def spans_named(self, name: str) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.name == name]

    @property
    def wall_ms(self) -> float:
        return self.root.duration_ns / 1e6

    def to_dict(self) -> dict:
        with self._lock:
            spans = [s.to_dict() for s in self.spans]
        doc = {
            "schema": TRACE_SCHEMA,
            "trace_id": self.trace_id,
            "job": self.job,
            "key": self.key,
            "tenant": self.tenant,
            "outcome": self.outcome,
            "start_ns": self.root.start_ns,
            "wall_ms": self.wall_ms,
            "spans": spans,
        }
        if self.engine_doc is not None:
            doc["engine"] = self.engine_doc
        return doc

    def summary(self, *, t0_ns: int | None = None) -> dict:
        """Compact row for the trace table / task-stream panel."""
        engine = self.find_span("engine")
        attempts = self.spans_named("attempt")
        worker = None
        for span in attempts:
            worker = span.attrs.get("worker", worker)
        base = self.root.start_ns - (t0_ns if t0_ns is not None else self.root.start_ns)
        return {
            "trace_id": self.trace_id,
            "job": self.job,
            "tenant": self.tenant,
            "outcome": self.outcome,
            "start_ms": base / 1e6,
            "wall_ms": self.wall_ms,
            "engine_ms": (engine.duration_ns / 1e6) if engine else 0.0,
            "attempts": len(attempts),
            "worker": worker,
            "spans": len(self.spans),
        }


class Tracer:
    """Mints traces and retains the last ``capacity`` finished ones."""

    def __init__(self, *, capacity: int = 256, capture_events: bool = False) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.capture_events = capture_events
        self.t0_ns = now_ns()
        self._done: OrderedDict[str, Trace] = OrderedDict()
        self._lock = threading.Lock()
        self.started = 0
        self.finished = 0

    # ------------------------------------------------------------------
    def start(self, *, job: str, key: str, tenant: str) -> Trace:
        self.started += 1
        return Trace(_new_id(), job=job, key=key, tenant=tenant)

    def finish(self, trace: Trace, *, outcome: str, **attrs) -> Trace:
        """Close the root span, stamp the outcome, and retain the trace."""
        trace.end_span(
            trace.root, status="error" if outcome in ("failed", "rejected") else "ok",
            **attrs,
        )
        trace.outcome = outcome
        with self._lock:
            self.finished += 1
            self._done[trace.trace_id] = trace
            while len(self._done) > self.capacity:
                self._done.popitem(last=False)
        return trace

    # ------------------------------------------------------------------
    def get(self, trace_id: str) -> Trace | None:
        with self._lock:
            return self._done.get(trace_id)

    def traces(self, *, limit: int | None = None) -> list[Trace]:
        """Finished traces, most recent first."""
        with self._lock:
            out = list(reversed(self._done.values()))
        return out if limit is None else out[:limit]

    def summaries(self, *, limit: int = 100) -> list[dict]:
        return [t.summary(t0_ns=self.t0_ns) for t in self.traces(limit=limit)]


class EpochWallSink:
    """EventSink stamping the wall clock at each dynamic-replay epoch mark.

    Attached (alongside the capturing Collector) only when event capture
    is on — attaching any sink makes the engine construct event objects,
    so the spans-only fast path must stay sink-free.
    """

    def __init__(self) -> None:
        self.start_ns = now_ns()
        self.marks: list[tuple[int, int]] = []  # (epoch, wall ns)

    def emit(self, event: TraceEvent) -> None:
        if isinstance(event, EpochMark):
            self.marks.append((event.epoch, now_ns()))

    def epoch_spans(self) -> list[tuple[str, int, int]]:
        """``(name, start_ns, end_ns)`` per observed epoch boundary."""
        out = []
        prev = self.start_ns
        for epoch, t in self.marks:
            out.append((f"epoch {epoch}", prev, t))
            prev = t
        return out


# ---------------------------------------------------------------------------
# Merged Chrome export
# ---------------------------------------------------------------------------

#: pid of the broker's wall-clock spans in the merged document
_BROKER_PID = 1
#: pid engine (simulated-time) events are rebased onto
_ENGINE_PID = 2
#: tid offset for broker worker lanes ("worker 0" → 100)
_WORKER_TID_BASE = 100


def trace_to_chrome(doc: dict) -> dict:
    """Merge one trace document into a single Chrome ``trace_event`` doc.

    Broker spans render as "X" events under pid 1 in *wall* microseconds
    (zeroed at the root span); the captured engine stream — already a
    Chrome doc in *simulated* microseconds — is rebased onto pid 2.  The
    two clocks are different by construction; the shared ``trace_id`` in
    ``otherData`` is the join key, not the time axis.
    """
    base_ns = doc["start_ns"]
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _BROKER_PID,
            "args": {"name": f"broker (wall) {doc['job']}"},
        },
        {"name": "thread_name", "ph": "M", "pid": _BROKER_PID, "tid": 0,
         "args": {"name": "client"}},
    ]
    worker_tids: set[int] = set()
    for span in doc["spans"]:
        worker = span["attrs"].get("worker")
        if span["name"] in ("attempt", "engine") and worker is not None:
            tid = _WORKER_TID_BASE + int(worker)
            if tid not in worker_tids:
                worker_tids.add(tid)
                events.append(
                    {"name": "thread_name", "ph": "M", "pid": _BROKER_PID,
                     "tid": tid, "args": {"name": f"svc worker {worker}"}}
                )
        else:
            tid = 0
        end_ns = span["end_ns"] if span["end_ns"] is not None else span["start_ns"]
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "pid": _BROKER_PID,
                "tid": tid,
                "ts": (span["start_ns"] - base_ns) / 1e3,
                "dur": (end_ns - span["start_ns"]) / 1e3,
                "args": {"status": span["status"], **span["attrs"]},
            }
        )
    other = {"trace_id": doc["trace_id"], "outcome": doc["outcome"], "job": doc["job"]}
    engine = doc.get("engine")
    if engine is not None:
        for ev in engine["traceEvents"]:
            ev = dict(ev)
            ev["pid"] = _ENGINE_PID
            events.append(ev)
        other["engine_digest"] = engine.get("otherData", {}).get("digest")
    return {"traceEvents": events, "displayTimeUnit": "ms", "otherData": other}
