"""The live dashboard page: one self-contained HTML document, no deps.

Served at ``GET /dash`` by :class:`~repro.service.http.ServiceServer`
and written to disk by ``repro dash --snapshot``.  Everything is inline
— CSS, vanilla JS, hand-drawn SVG — because the container has no web
stack and the dashboard must work from a ``file://`` open of a committed
CI artifact.

Two data modes, one page:

* **live** — ``window.SNAPSHOT`` is ``null``; the page polls
  ``/v1/timeseries`` (series + embedded stats) and ``/v1/traces`` every
  second and re-renders.  Clicking a trace row fetches
  ``/v1/traces/<id>`` for the span waterfall.
* **snapshot** — ``window.SNAPSHOT`` carries the same documents (plus
  pre-fetched trace details, plus optionally an ``engine`` block for
  Collector-only offline runs); polling is skipped and the page renders
  once.

The panel set follows the dask ``distributed/bokeh`` idiom the ROADMAP
names: task-stream lanes per worker, queue-depth and occupancy strips,
per-tenant throughput, cache hit ratio, and latency histograms.
"""

from __future__ import annotations

import json

__all__ = ["render_page"]


def render_page(snapshot: dict | None = None) -> str:
    """The dashboard HTML; ``snapshot`` embeds data for offline viewing."""
    if snapshot is None:
        payload = "null"
    else:
        # "</" must not appear verbatim inside a <script> block
        payload = json.dumps(snapshot, sort_keys=True).replace("</", "<\\/")
    return _PAGE.replace("__SNAPSHOT_JSON__", payload)


_PAGE = r"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro dash</title>
<style>
  :root { --bg:#11151c; --panel:#1a2029; --ink:#d8dee9; --dim:#7b8699;
          --acc:#6fb3ff; --ok:#69d58c; --warn:#e8c268; --err:#e06c75; }
  body { background:var(--bg); color:var(--ink); margin:0;
         font:13px/1.45 ui-monospace,Menlo,Consolas,monospace; }
  header { display:flex; gap:16px; align-items:baseline; padding:10px 16px;
           border-bottom:1px solid #2a3240; }
  header h1 { font-size:15px; margin:0; color:var(--acc); }
  header .mode { color:var(--dim); }
  #cards { display:flex; flex-wrap:wrap; gap:10px; padding:12px 16px 0; }
  .card { background:var(--panel); border:1px solid #2a3240; border-radius:6px;
          padding:8px 14px; min-width:96px; }
  .card .v { font-size:19px; color:var(--acc); }
  .card .k { color:var(--dim); font-size:11px; }
  #panels { display:grid; grid-template-columns:1fr 1fr; gap:12px; padding:12px 16px; }
  .panel { background:var(--panel); border:1px solid #2a3240; border-radius:6px;
           padding:8px 10px; }
  .panel.wide { grid-column:1 / -1; }
  .panel h2 { font-size:12px; margin:0 0 6px; color:var(--dim);
              text-transform:uppercase; letter-spacing:.08em; }
  svg { display:block; width:100%; }
  table { width:100%; border-collapse:collapse; }
  th,td { text-align:left; padding:3px 8px; border-bottom:1px solid #242c38;
          white-space:nowrap; }
  th { color:var(--dim); font-weight:normal; }
  tr.trace { cursor:pointer; } tr.trace:hover { background:#222a36; }
  .ok{color:var(--ok)} .hit{color:var(--acc)} .coalesced{color:var(--warn)}
  .failed,.rejected,.error{color:var(--err)} .miss{color:var(--ink)}
  #detail pre { color:var(--dim); margin:4px 0; }
  #err { color:var(--err); padding:4px 16px; }
</style>
</head>
<body>
<header>
  <h1>repro dash</h1>
  <span class="mode" id="mode"></span>
  <span class="mode" id="wall"></span>
</header>
<div id="err"></div>
<div id="cards"></div>
<div id="panels"></div>
<script>
"use strict";
window.SNAPSHOT = __SNAPSHOT_JSON__;

const $ = (id) => document.getElementById(id);
const esc = (s) => String(s).replace(/[&<>"]/g,
  c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
const fmt = (v, d) => (v === null || v === undefined) ? "-"
  : Number(v).toLocaleString("en-US", {maximumFractionDigits: d ?? 0});

// ---- tiny SVG helpers ------------------------------------------------
const W = 560, H = 64;
function svgOpen(h) { return `<svg viewBox="0 0 ${W} ${h||H}" preserveAspectRatio="none" height="${h||H}">`; }
function stepPath(values, h, peak) {
  h = h || H;
  if (!values.length) return "";
  peak = peak || Math.max(...values, 1e-9);
  const dx = W / values.length;
  let d = `M0,${h - h * values[0] / peak}`;
  values.forEach((v, i) => {
    const y = h - h * Math.min(1, v / peak);
    d += `L${i * dx},${y}L${(i + 1) * dx},${y}`;
  });
  return d + `L${W},${h}L0,${h}Z`;
}
function area(values, color, h, label, unit) {
  h = h || H;
  const peak = Math.max(...values, 1e-9);
  return svgOpen(h)
    + `<path d="${stepPath(values, h, peak)}" fill="${color}" fill-opacity="0.35" stroke="${color}"/>`
    + `<text x="4" y="12" fill="#7b8699" font-size="10">${esc(label || "")} peak=${fmt(peak, 2)}${esc(unit || "")}</text>`
    + `</svg>`;
}
function barRow(label, value, peak, color) {
  const w = peak > 0 ? Math.max(1, 260 * value / peak) : 1;
  return `<tr><td>${esc(label)}</td>`
    + `<td><svg width="264" height="10" viewBox="0 0 264 10">`
    + `<rect x="0" y="1" width="${w}" height="8" fill="${color}"/></svg></td>`
    + `<td>${fmt(value, 1)}</td></tr>`;
}
function histBars(hist, color) {
  if (!hist || !hist.count) return "<div class='mode'>(no samples)</div>";
  const idxs = Object.keys(hist.buckets).map(Number).sort((a, b) => a - b);
  const peak = Math.max(...idxs.map(i => hist.buckets[String(i)]), 1);
  const bw = Math.max(2, Math.floor(W / Math.max(idxs.length, 1)) - 1);
  let s = svgOpen(56);
  idxs.forEach((idx, i) => {
    const c = hist.buckets[String(idx)];
    const h = Math.max(1, 44 * c / peak);
    s += `<rect x="${i * (bw + 1)}" y="${50 - h}" width="${bw}" height="${h}" fill="${color}"/>`;
  });
  s += `<text x="4" y="12" fill="#7b8699" font-size="10">n=${hist.count} p50=${fmt(hist.p50,2)}ms p99=${fmt(hist.p99,2)}ms</text></svg>`;
  return s;
}
const LANE = 16;
function taskStream(rows, span) {
  // rows: [{lane, start, end, color, title}], times in ms on a shared axis
  const lanes = [...new Set(rows.map(r => r.lane))].sort((a, b) => a - b);
  if (!lanes.length) return "<div class='mode'>(no completed work yet)</div>";
  const h = Math.max(LANE * lanes.length + 4, 40);
  const t0 = Math.min(...rows.map(r => r.start));
  const t1 = Math.max(...rows.map(r => r.end), t0 + 1e-9);
  const sx = (t) => (t - t0) / (t1 - t0) * (W - 60) + 56;
  let s = svgOpen(h);
  lanes.forEach((lane, i) => {
    s += `<text x="2" y="${i * LANE + 12}" fill="#7b8699" font-size="10">${esc(span)} ${esc(lane)}</text>`;
  });
  rows.forEach(r => {
    const i = lanes.indexOf(r.lane);
    const x = sx(r.start), w = Math.max(1.5, sx(r.end) - x);
    s += `<rect x="${x}" y="${i * LANE + 3}" width="${w}" height="${LANE - 5}" `
      + `fill="${r.color}" fill-opacity="0.85"><title>${esc(r.title)}</title></rect>`;
  });
  return s + "</svg>";
}
const PALETTE = ["#6fb3ff","#69d58c","#e8c268","#c678dd","#56b6c2","#e06c75","#98c379","#d19a66"];
const hue = (s) => PALETTE[[...String(s)].reduce((a, c) => a + c.charCodeAt(0), 0) % PALETTE.length];

// ---- panels ----------------------------------------------------------
function card(k, v) { return `<div class="card"><div class="v">${v}</div><div class="k">${esc(k)}</div></div>`; }
function panel(title, body, wide) {
  return `<div class="panel${wide ? " wide" : ""}"><h2>${esc(title)}</h2>${body}</div>`;
}

function renderService(ts, traces, details) {
  const stats = ts.stats || {};
  const cache = stats.cache || {};
  const s = ts.series || {};
  const val = (n) => (s[n] && s[n].values) || [];
  const rate = (n) => {
    const d = s[n]; if (!d || !d.values.length) return [];
    return d.values.map(v => v / (d.stride_ns / 1e9)); // per second
  };
  $("wall").textContent = `wall ${fmt(ts.wall_s, 1)}s`;
  $("cards").innerHTML =
    card("submitted", fmt(stats.submitted)) +
    card("completed", fmt(stats.completed)) +
    card("cache hit ratio", fmt(100 * (cache.hit_ratio || 0), 1) + "%") +
    card("coalesced", fmt(stats.coalesced)) +
    card("queue depth", fmt(stats.queue_depth)) +
    card("peak depth", fmt(stats.peak_queue_depth)) +
    card("failed", fmt((stats.failed || 0) + (stats.rejected || 0))) +
    card("tenants", fmt(stats.tenants)) +
    card("workers", fmt(stats.workers));

  const tenants = ts.tenants || {};
  const tPeak = Math.max(1, ...Object.values(tenants).map(
    b => b.submitted.values.reduce((a, v) => a + v, 0)));
  const tenantRows = Object.entries(tenants).map(([name, b]) =>
    barRow(name, b.submitted.values.reduce((a, v) => a + v, 0), tPeak, hue(name))
  ).join("");

  const stream = (traces.traces || [])
    .filter(t => t.worker !== null && t.engine_ms > 0)
    .map(t => ({
      lane: t.worker,
      start: t.start_ms + t.wall_ms - t.engine_ms,
      end: t.start_ms + t.wall_ms,
      color: hue(t.job.split("/")[0]),
      title: `${t.job} [${t.outcome}] ${fmt(t.engine_ms, 2)}ms engine`,
    }));

  const rows = (traces.traces || []).slice(0, 20).map(t =>
    `<tr class="trace" data-id="${esc(t.trace_id)}">`
    + `<td>${esc(t.trace_id.slice(0, 8))}</td><td>${esc(t.job)}</td>`
    + `<td>${esc(t.tenant)}</td><td class="${esc(t.outcome)}">${esc(t.outcome)}</td>`
    + `<td>${fmt(t.wall_ms, 3)}</td><td>${fmt(t.engine_ms, 3)}</td>`
    + `<td>${t.attempts}</td><td>${t.worker ?? "-"}</td></tr>`).join("");

  $("panels").innerHTML =
    panel("task stream (engine spans per service worker, wall ms)",
          taskStream(stream, "w"), true) +
    panel("queue depth", area(val("queue_depth"), "#e8c268", H, "depth")) +
    panel("busy workers (occupancy)", area(val("busy_workers"), "#69d58c", H, "busy")) +
    panel("throughput: completed+hits", area(
      rate("completed").map((v, i) => v + (rate("hits")[i] || 0)),
      "#6fb3ff", H, "req", "/s")) +
    panel("rejected + failed", area(
      rate("rejected").map((v, i) => v + (rate("failed")[i] || 0)),
      "#e06c75", H, "req", "/s")) +
    panel("per-tenant submitted", `<table>${tenantRows}</table>`) +
    panel("hit latency (log buckets)", histBars(stats.hit_latency_ms, "#6fb3ff")) +
    panel("miss latency (log buckets)", histBars(stats.miss_latency_ms, "#e8c268")) +
    panel("recent traces",
      `<table><tr><th>trace</th><th>job</th><th>tenant</th><th>outcome</th>`
      + `<th>wall ms</th><th>engine ms</th><th>att</th><th>wkr</th></tr>${rows}</table>`
      + `<div id="detail"></div>`, true);

  document.querySelectorAll("tr.trace").forEach(tr =>
    tr.addEventListener("click", () => showTrace(tr.dataset.id, details)));
}

function waterfall(doc) {
  const spans = doc.spans || [];
  if (!spans.length) return "(no spans)";
  const t0 = Math.min(...spans.map(s => s.start_ns));
  const t1 = Math.max(...spans.map(s => s.end_ns ?? s.start_ns), t0 + 1);
  const sx = (t) => (t - t0) / (t1 - t0) * (W - 180) + 170;
  let s = svgOpen(spans.length * LANE + 6);
  spans.forEach((sp, i) => {
    const x = sx(sp.start_ns), w = Math.max(1.5, sx(sp.end_ns ?? sp.start_ns) - x);
    const color = sp.status === "error" ? "#e06c75" : hue(sp.name);
    s += `<text x="2" y="${i * LANE + 12}" fill="#7b8699" font-size="10">`
      + `${esc(sp.name)}${sp.attrs.attempt ? " #" + sp.attrs.attempt : ""}</text>`
      + `<rect x="${x}" y="${i * LANE + 3}" width="${w}" height="${LANE - 5}" fill="${color}">`
      + `<title>${esc(sp.name)} ${fmt(sp.duration_ns / 1e6, 3)}ms [${esc(sp.status)}]</title></rect>`;
  });
  return s + "</svg>";
}

async function showTrace(id, details) {
  let doc = details && details[id];
  if (!doc && !window.SNAPSHOT) {
    try { doc = await (await fetch(`/v1/traces/${id}`)).json(); }
    catch (e) { $("detail").innerHTML = `<pre>fetch failed: ${esc(e)}</pre>`; return; }
  }
  if (!doc) { $("detail").innerHTML = "<pre>trace detail not in snapshot</pre>"; return; }
  $("detail").innerHTML =
    `<pre>${esc(doc.trace_id)} ${esc(doc.job)} tenant=${esc(doc.tenant)} `
    + `outcome=${esc(doc.outcome)} wall=${fmt(doc.wall_ms, 3)}ms`
    + `${doc.engine ? " (engine events captured: " + doc.engine.otherData.events + ")" : ""}</pre>`
    + waterfall(doc);
}

// ---- offline engine (Collector-only) snapshot ------------------------
function renderEngine(eng) {
  const m = eng.meta || {};
  $("wall").textContent = `simulated ${fmt(m.elapsed_ns / 1e6, 3)}ms`;
  $("cards").innerHTML =
    card("app", esc(m.app || "-")) + card("dataset", esc(m.dataset || "-")) +
    card("config", esc(m.config || "-")) + card("tasks", fmt(m.tasks)) +
    card("retired", fmt(m.retired)) + card("events", fmt(m.events)) +
    card("workers", fmt(m.workers));
  const stream = (eng.spans || []).map(r => ({
    lane: r[0], start: r[1] / 1e6, end: r[2] / 1e6, color: hue(r[0]),
    title: `worker ${r[0]}: ${r[3]} items, ${r[4]} retired`,
  }));
  const q = (eng.queue || []).map(p => p[1]);
  const occ = eng.occupancy || [];
  let panels =
    panel("task stream (simulated time)", taskStream(stream, "w"), true) +
    panel("queue depth (simulated time)", area(q, "#e8c268", H, "depth")) +
    panel("worker utilization", `<table>${occ.map(o =>
      barRow("w" + o[0], 100 * o[1], 100, "#69d58c")).join("")}</table>`);
  const ms = eng.metrics;
  if (ms && ms.series) {
    for (const name of Object.keys(ms.series)) {
      panels += panel(`metrics: ${name}`, area(ms.series[name].values, "#6fb3ff", 48, name));
    }
  }
  $("panels").innerHTML = panels;
}

// ---- main loop -------------------------------------------------------
async function poll() {
  try {
    const [ts, traces] = await Promise.all([
      (await fetch("/v1/timeseries")).json(),
      (await fetch("/v1/traces")).json(),
    ]);
    $("err").textContent = "";
    renderService(ts, traces, null);
  } catch (e) {
    $("err").textContent = `poll failed: ${e}`;
  }
}

if (window.SNAPSHOT) {
  $("mode").textContent = "static snapshot";
  if (window.SNAPSHOT.engine) renderEngine(window.SNAPSHOT.engine);
  else renderService(window.SNAPSHOT.timeseries || {},
                     window.SNAPSHOT.traces || {traces: []},
                     window.SNAPSHOT.details || {});
} else {
  $("mode").textContent = "live · polling 1s";
  poll();
  setInterval(poll, 1000);
}
</script>
</body>
</html>
"""
