"""repro.dash: end-to-end job tracing + the live/zero-dep web dashboard.

* :mod:`repro.dash.trace` — wall-clock span tracing across broker →
  LabPool → engine (:class:`TraceContext`, :class:`Tracer`), plus the
  merged Chrome export joining broker spans with the captured engine
  event stream under one ``trace_id``;
* :mod:`repro.dash.timeseries` — :class:`ServiceSeries`, the broker's
  bounded-memory wall-clock dashboard series (queue depth, occupancy,
  per-tenant throughput) built on the existing
  :class:`~repro.metrics.series.StrideSeries`;
* :mod:`repro.dash.page` — the self-contained HTML/JS/SVG dashboard
  served at ``GET /dash`` and written by ``repro dash --snapshot``;
* :mod:`repro.dash.snapshot` — static snapshot assembly from a live
  service or from a single :class:`~repro.obs.Collector` run.

See ``docs/observability.md`` ("Tracing" / "Live dashboard").
"""

from repro.dash.page import render_page
from repro.dash.snapshot import (
    collector_snapshot,
    service_snapshot,
    write_snapshot,
)
from repro.dash.timeseries import TIMESERIES_SCHEMA, ServiceSeries
from repro.dash.trace import (
    TRACE_SCHEMA,
    EpochWallSink,
    Span,
    Trace,
    TraceContext,
    Tracer,
    trace_to_chrome,
)

__all__ = [
    "TIMESERIES_SCHEMA",
    "TRACE_SCHEMA",
    "EpochWallSink",
    "ServiceSeries",
    "Span",
    "Trace",
    "TraceContext",
    "Tracer",
    "collector_snapshot",
    "render_page",
    "service_snapshot",
    "trace_to_chrome",
    "write_snapshot",
]
