"""Static snapshot assembly for the dashboard (CI artifacts, offline runs).

Two producers, one page:

* :func:`service_snapshot` — point-in-time copy of a *running* service:
  the ``/v1/timeseries`` document (stats embedded), the recent-trace
  list, and pre-fetched detail documents for the newest traces, so the
  emitted HTML is fully clickable with no server behind it.
* :func:`collector_snapshot` — offline rendering for non-service runs: a
  :class:`~repro.obs.Collector` from one traced cell becomes the
  task-stream / queue-depth / occupancy panels in *simulated* time,
  optionally alongside the run's streamed-metrics summary
  (``result.extra["metrics"]``) series.

Both return the plain-dict payload that
:func:`~repro.dash.page.render_page` embeds as ``window.SNAPSHOT``;
:func:`write_snapshot` is the one-call "give me the HTML file" form.
"""

from __future__ import annotations

from pathlib import Path

from repro.dash.page import render_page

__all__ = [
    "SNAPSHOT_SCHEMA",
    "service_snapshot",
    "collector_snapshot",
    "write_snapshot",
]

SNAPSHOT_SCHEMA = "repro.dash/snapshot-v1"


def service_snapshot(client, *, detail_limit: int = 20) -> dict:
    """Capture a running service's dashboard state via its HTTP API.

    ``client`` is a :class:`~repro.service.client.ServiceClient`; the
    newest ``detail_limit`` traces are fetched in full so the snapshot's
    waterfall view works offline.
    """
    timeseries = client.timeseries()
    traces = client.traces()
    details: dict[str, dict] = {}
    for row in traces.get("traces", [])[:detail_limit]:
        trace_id = row.get("trace_id")
        if trace_id:
            try:
                details[trace_id] = client.trace(trace_id)
            except Exception:  # noqa: BLE001 - a trace may be evicted mid-walk
                continue
    return {
        "schema": SNAPSHOT_SCHEMA,
        "timeseries": timeseries,
        "traces": traces,
        "details": details,
    }


def collector_snapshot(collector, result=None, *, config: str | None = None) -> dict:
    """Offline (no service) snapshot from one collected engine run.

    ``collector`` is a :class:`~repro.obs.Collector` that observed the
    run; ``result`` the :class:`~repro.apps.common.AppResult` (supplies
    identity, the authoritative elapsed clock, and — when the run was
    executed with ``metrics=True`` — the streamed-metrics summary whose
    :class:`~repro.metrics.series.StrideSeries` panels render alongside).
    """
    elapsed = float(result.elapsed_ns) if result is not None else collector.end_time()
    spans = [
        [int(s.worker), float(s.start), float(s.end), int(s.items), int(s.retired)]
        for s in collector.task_spans()
    ]
    summaries = collector.worker_summaries(elapsed_ns=elapsed)
    engine = {
        "meta": {
            "app": getattr(result, "app", None),
            "dataset": getattr(result, "dataset", None),
            "config": config or getattr(result, "impl", None),
            "elapsed_ns": elapsed,
            "tasks": len(spans),
            "retired": int(sum(s[4] for s in spans)),
            "events": len(collector.events),
            "workers": len(summaries),
            "digest": collector.digest(),
            "trace_id": getattr(collector, "trace_id", None),
        },
        "spans": spans,
        "queue": [[float(t), int(d)] for t, d in collector.queue_depth_series()],
        "occupancy": [[w.worker, w.utilization] for w in summaries],
        "metrics": (result.extra.get("metrics") if result is not None else None),
    }
    return {"schema": SNAPSHOT_SCHEMA, "engine": engine}


def write_snapshot(snapshot: dict, path: str | Path) -> Path:
    """Render ``snapshot`` through the dashboard page and write it."""
    path = Path(path)
    path.write_text(render_page(snapshot), encoding="utf-8")
    return path
