"""ASCII table rendering for the benchmark harness and examples."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a fixed-width table.

    Numbers are formatted to a sensible precision; columns are sized to
    their widest cell.  Returns a string ready for ``print``.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
