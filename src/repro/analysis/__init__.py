"""Analysis layer: the paper's tables and figures from raw run records.

* :mod:`repro.analysis.overwork` — workload ratios (Table 4);
* :mod:`repro.analysis.challenges` — small-frontier / load-imbalance
  classification (Table 3);
* :mod:`repro.analysis.throughput` — normalized-throughput series and
  terminal figures (Figures 1-3);
* :mod:`repro.analysis.tables` — ASCII table rendering shared by the
  benchmark harness and the examples.
"""

from repro.analysis.challenges import ChallengeReport, classify_challenges
from repro.analysis.frontier import (
    FrontierSample,
    frontier_series,
    saturation_point,
    throughput_vs_frontier,
)
from repro.analysis.overwork import coloring_workload_ratio, workload_ratio
from repro.analysis.tables import format_table
from repro.analysis.throughput import normalized_series, render_figure

__all__ = [
    "workload_ratio",
    "coloring_workload_ratio",
    "ChallengeReport",
    "classify_challenges",
    "format_table",
    "normalized_series",
    "render_figure",
    "FrontierSample",
    "frontier_series",
    "throughput_vs_frontier",
    "saturation_point",
]
