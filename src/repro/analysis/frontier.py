"""Frontier-size analysis (the Gunrock study the paper cites as [24]).

The paper's small-frontier argument leans on Gunrock's published
"Throughput vs. Frontier Size" analysis: below some frontier size the GPU
cannot be filled and throughput collapses.  This module derives the same
curves from our BSP runs:

* :func:`frontier_series` — per-iteration ``(frontier_size, edges,
  busy_time)`` samples from a BSP application run;
* :func:`throughput_vs_frontier` — the [24]-style scatter, aggregated into
  size bins;
* :func:`saturation_point` — the smallest frontier that reaches a target
  fraction of peak throughput (the "fill the GPU" threshold).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import Csr
from repro.sim.cost import bsp_kernel_time
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = [
    "FrontierSample",
    "frontier_series",
    "throughput_vs_frontier",
    "saturation_point",
]


@dataclass(frozen=True)
class FrontierSample:
    """One BSP iteration's frontier and its modeled processing rate."""

    iteration: int
    frontier_size: int
    edge_count: int
    busy_ns: float

    @property
    def throughput(self) -> float:
        """Edges per ns while this frontier was being processed."""
        if self.busy_ns <= 0:
            return 0.0
        return self.edge_count / self.busy_ns


def frontier_series(
    graph: Csr,
    *,
    source: int = 0,
    spec: GpuSpec = V100_SPEC,
    strategy: str = "lbs",
) -> list[FrontierSample]:
    """Level-synchronous BFS frontier trajectory with modeled kernel times.

    This replays the BSP BFS frontier evolution (the app layer's run_bsp
    does the same walk) and records the per-iteration cost-model output,
    giving the raw material of the [24] analysis without re-running the
    full application machinery.
    """
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range")
    depth = np.full(n, -1, dtype=np.int64)
    depth[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    samples = []
    iteration = 0
    while frontier.size:
        _, nbrs = graph.gather_neighbors(frontier)
        busy = bsp_kernel_time(
            spec,
            frontier_size=int(frontier.size),
            edge_count=int(nbrs.size),
            strategy=strategy,
        )
        samples.append(
            FrontierSample(
                iteration=iteration,
                frontier_size=int(frontier.size),
                edge_count=int(nbrs.size),
                busy_ns=busy + spec.kernel_launch_ns + spec.barrier_ns,
            )
        )
        iteration += 1
        if nbrs.size == 0:
            break
        fresh = np.unique(nbrs[depth[nbrs] < 0])
        if fresh.size == 0:
            break
        depth[fresh] = iteration
        frontier = fresh
    return samples


def throughput_vs_frontier(
    samples: list[FrontierSample], *, bins: int = 12
) -> list[tuple[float, float]]:
    """Aggregate samples into log-spaced frontier-size bins.

    Returns ``[(bin_center_size, mean_throughput), ...]`` for non-empty
    bins, sorted by size — the [24] curve.
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    sized = [s for s in samples if s.frontier_size > 0]
    if not sized:
        return []
    sizes = np.array([s.frontier_size for s in sized], dtype=np.float64)
    rates = np.array([s.throughput for s in sized])
    lo, hi = sizes.min(), sizes.max()
    if lo == hi:
        return [(float(lo), float(rates.mean()))]
    edges = np.geomspace(lo, hi * 1.0001, bins + 1)
    out = []
    for i in range(bins):
        mask = (sizes >= edges[i]) & (sizes < edges[i + 1])
        if mask.any():
            center = float(np.sqrt(edges[i] * edges[i + 1]))
            out.append((center, float(rates[mask].mean())))
    return out


def saturation_point(
    samples: list[FrontierSample], *, fraction: float = 0.5
) -> int | None:
    """Smallest frontier size reaching ``fraction`` of peak throughput.

    Returns ``None`` when no frontier gets there (a run entirely inside
    the small-frontier regime — e.g. BFS on road networks).
    """
    if not (0 < fraction <= 1):
        raise ValueError("fraction must be in (0, 1]")
    curve = throughput_vs_frontier(samples)
    if not curve:
        return None
    peak = max(rate for _, rate in curve)
    if peak <= 0:
        return None
    for size, rate in curve:
        if rate >= fraction * peak:
            return int(round(size))
    return None
