"""Normalized-throughput figures (the paper's Figures 1-3).

The paper plots *normalized throughput* — measured throughput divided by
the overwork factor from Table 4 — against the execution timeline, one
curve per implementation.  ``normalized_series`` produces the numeric
series; ``render_figure`` draws the terminal version (one sparkline per
implementation, shared time axis), which is what the benchmark harness
prints and what EXPERIMENTS.md embeds.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import AppResult
from repro.sim.trace import ThroughputSeries

__all__ = ["normalized_series", "render_figure", "series_csv"]


def normalized_series(
    result: AppResult,
    overwork_factor: float,
    *,
    bins: int = 60,
    end_time: float | None = None,
) -> ThroughputSeries:
    """Items/ns over the run, divided by the overwork factor.

    ``end_time`` lets multiple implementations share one time axis (the
    paper's figures clip each curve at its own end; we keep a common axis
    so the sparklines align).
    """
    series = result.trace.series(bins=bins, end_time=end_time or result.elapsed_ns)
    return series.normalized(overwork_factor)


def render_figure(
    title: str,
    curves: list[tuple[str, ThroughputSeries]],
    *,
    width: int = 60,
) -> str:
    """One labelled sparkline per implementation, common peak scale."""
    blocks = "▁▂▃▄▅▆▇█"
    peak = max((c.peak() for _, c in curves), default=0.0)
    lines = [title]
    label_w = max((len(name) for name, _ in curves), default=0)
    for name, series in curves:
        if series.rates.size == 0 or peak <= 0:
            spark = "(no data)"
        else:
            rates = series.rates
            if rates.size > width:
                # re-bin to the display width
                idx = (np.arange(rates.size) * width // rates.size)
                agg = np.zeros(width)
                counts = np.bincount(idx, minlength=width).astype(float)
                np.add.at(agg, idx, rates)
                rates = agg / np.maximum(counts, 1.0)
            levels = np.minimum(
                (rates / peak * (len(blocks) - 1)).round().astype(int),
                len(blocks) - 1,
            )
            spark = "".join(blocks[l] for l in np.maximum(levels, 0))
        lines.append(f"  {name.ljust(label_w)} {spark}")
    return "\n".join(lines)


def series_csv(curves: list[tuple[str, ThroughputSeries]]) -> str:
    """CSV dump of the curves (time_ns, one column per implementation).

    All curves must share a bin layout (use a common ``end_time`` and
    ``bins`` in :func:`normalized_series`).
    """
    if not curves:
        return ""
    times = curves[0][1].times
    for name, series in curves[1:]:
        if series.times.shape != times.shape:
            raise ValueError(f"curve {name!r} has a different bin layout")
    header = "time_ns," + ",".join(name for name, _ in curves)
    rows = [header]
    for i, t in enumerate(times):
        cells = ",".join(f"{series.rates[i]:.6g}" for _, series in curves)
        rows.append(f"{t:.0f},{cells}")
    return "\n".join(rows)
