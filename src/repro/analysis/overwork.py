"""Workload-ratio computation (the paper's Table 4).

Table 4 has two conventions:

* **BFS / PageRank** — the ratio of an Atos implementation's work (edge
  traversals) to the Gunrock baseline's work on the same dataset.  A ratio
  of ``n`` means the relaxed-barrier run did ``n`` times the edge work.
* **Graph coloring** — every implementation (including BSP) is speculative,
  so the ratio is against the lowest possible workload: one color
  assignment per vertex, i.e. ``assignments / |V|``.
"""

from __future__ import annotations

from repro.apps.common import AppResult

__all__ = ["workload_ratio", "coloring_workload_ratio"]


def workload_ratio(result: AppResult, baseline: AppResult) -> float:
    """Atos-vs-BSP work ratio for BFS and PageRank rows of Table 4."""
    if result.app != baseline.app:
        raise ValueError(
            f"cannot compare work across apps: {result.app} vs {baseline.app}"
        )
    if result.dataset != baseline.dataset:
        raise ValueError(
            f"cannot compare work across datasets: "
            f"{result.dataset} vs {baseline.dataset}"
        )
    if baseline.work_units <= 0:
        raise ValueError("baseline performed no work")
    return result.work_units / baseline.work_units


def coloring_workload_ratio(result: AppResult, num_vertices: int) -> float:
    """Assignments-per-vertex ratio for the coloring rows of Table 4."""
    if result.app != "coloring":
        raise ValueError(f"expected a coloring result, got {result.app!r}")
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    return result.work_units / num_vertices
