"""BSP performance-challenge classification (the paper's Table 3).

The paper identifies two BSP pathologies per (application, dataset) pair:

* **load imbalance** — driven by degree variance.  Scale-free graphs have
  heavy-tailed degrees (high coefficient of variation); meshes do not.
* **small frontier** — the BSP run spends most of its time in iterations
  whose frontiers are too small to cover the fixed per-kernel cost; the
  paper detects it as "low throughput over a long duration" in the
  Figure 1-3 timelines.

``classify_challenges`` reproduces the classification from measured BSP
run records + graph structure, so Table 3 is *derived*, not transcribed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.common import AppResult
from repro.graph.csr import Csr
from repro.graph.metrics import degree_cv
from repro.sim.spec import V100_SPEC, GpuSpec

__all__ = ["ChallengeReport", "classify_challenges"]

# Degree-CV above this means the inner loops are imbalanced (same threshold
# as the Table 2 scale-free classification).
_IMBALANCE_CV = 0.5
# A bin counts as "low throughput" when its measured *work* rate (edge
# traversals per ns) is below this fraction of the machine's saturated
# bandwidth; the small-frontier problem is diagnosed when the run spends
# more than _LOW_TIME_FRACTION of its makespan in such bins.  This matches
# the paper's reading of Figures 1-3 ("low throughput over a long duration")
# against what the GPU could sustain, not against the run's own peak.
_LOW_RATE_FRACTION = 0.15
_LOW_TIME_FRACTION = 0.50


@dataclass(frozen=True)
class ChallengeReport:
    """One cell of Table 3."""

    app: str
    dataset: str
    graph_type: str
    load_imbalance: bool
    small_frontier: bool
    low_throughput_time_fraction: float
    degree_cv: float

    def label(self) -> str:
        """The Table 3 cell text."""
        parts = []
        if self.load_imbalance:
            parts.append("Load Imbalance")
        if self.small_frontier:
            parts.append("Small Frontier")
        return " + ".join(parts) if parts else "None"


def low_throughput_fraction(
    result: AppResult, *, spec: GpuSpec = V100_SPEC, bins: int = 60
) -> float:
    """Fraction of the makespan spent below 15% of machine bandwidth."""
    series = result.trace.series(
        bins=bins, end_time=result.elapsed_ns, use_work=True
    )
    if series.rates.size == 0:
        return 0.0
    low = series.rates < _LOW_RATE_FRACTION * spec.mem_edges_per_ns
    return float(low.mean())


def classify_challenges(
    graph: Csr, bsp_result: AppResult, *, spec: GpuSpec = V100_SPEC
) -> ChallengeReport:
    """Classify one (application, dataset) BSP run into Table 3 categories."""
    cv = degree_cv(graph)
    low_frac = low_throughput_fraction(bsp_result, spec=spec)
    return ChallengeReport(
        app=bsp_result.app,
        dataset=bsp_result.dataset,
        graph_type="scale-free" if cv >= _IMBALANCE_CV else "mesh-like",
        load_imbalance=cv >= _IMBALANCE_CV,
        small_frontier=low_frac >= _LOW_TIME_FRACTION,
        low_throughput_time_fraction=low_frac,
        degree_cv=cv,
    )
