"""BSP cost/trace accumulator.

A BSP application is a sequence of kernels separated by global barriers
(``cudaDeviceSynchronize`` in the paper's Algorithm 1/3/5).  Each kernel's
busy time comes from :func:`repro.sim.cost.bsp_kernel_time`; this module
keeps the running clock, counts launches, and feeds the throughput trace so
Figures 1-3 can be regenerated for the baseline too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import Barrier, EventSink, KernelLaunch
from repro.sim.cost import bsp_kernel_time
from repro.sim.spec import V100_SPEC, GpuSpec
from repro.sim.trace import ThroughputTrace

__all__ = ["BspTimeline"]


@dataclass
class BspTimeline:
    """Simulated clock for a BSP run."""

    spec: GpuSpec = field(default_factory=lambda: V100_SPEC)
    now: float = 0.0
    iterations: int = 0
    kernel_launches: int = 0
    trace: ThroughputTrace = field(default_factory=ThroughputTrace)
    #: optional observability sink (None = tracing off)
    sink: EventSink | None = None

    def kernel(
        self,
        *,
        frontier_size: int,
        edge_count: int,
        strategy: str = "lbs",
        items_retired: int = 0,
        work_units: float = 0.0,
    ) -> float:
        """Run one kernel; returns its completion time.

        ``items_retired``/``work_units`` attribute the kernel's output to
        the throughput trace at the kernel's completion instant (BSP retires
        a whole frontier at once — which is what makes the paper's
        throughput plots spiky for the baseline).
        """
        self.kernel_launches += 1
        if self.sink is not None:
            self.sink.emit(
                KernelLaunch(t=self.now, duration_ns=self.spec.kernel_launch_ns)
            )
        self.now += self.spec.kernel_launch_ns
        busy = bsp_kernel_time(
            self.spec,
            frontier_size=frontier_size,
            edge_count=edge_count,
            strategy=strategy,
        )
        self.now += busy
        if items_retired or work_units:
            self.trace.record(self.now, items_retired, work_units)
        return self.now

    def barrier(self) -> float:
        """Global synchronization between kernels."""
        if self.sink is not None:
            self.sink.emit(Barrier(t=self.now, duration_ns=self.spec.barrier_ns))
        self.now += self.spec.barrier_ns
        return self.now

    def end_iteration(self) -> None:
        """Bookkeeping: one outer-loop iteration finished."""
        self.iterations += 1
