"""Data-parallel load-balancing primitives.

Two techniques from Section 3.3 of the paper:

* **load-balancing search** (Davidson/Baxter/Merrill) — prefix-sum the
  frontier's degrees, flatten the nested loop into one edge array, and
  split it into equal-size chunks.  :func:`flatten_frontier` +
  :func:`balanced_chunks` implement the data movement; the cost model
  charges for it separately.
* **TWC bucketing** (Merrill's thread-warp-CTA mapping) — partition
  frontier vertices by degree class so each class can be processed with an
  appropriately-sized worker.  :func:`twc_buckets` implements the
  partition; the BSP coloring baseline also uses it as its sub-bucket
  serialization structure (Section 6.3 notes this reduces intra-kernel
  conflicts).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Csr

__all__ = ["flatten_frontier", "balanced_chunks", "twc_buckets"]


def flatten_frontier(graph: Csr, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Load-balancing search: flatten a frontier's neighbor lists.

    Returns ``(sources, destinations)`` aligned edge-wise — every edge of
    the frontier exactly once, regardless of how skewed the degrees are.
    """
    return graph.gather_neighbors(np.asarray(frontier, dtype=np.int64))


def balanced_chunks(total_edges: int, num_workers: int) -> np.ndarray:
    """Split ``total_edges`` flattened edges into near-equal chunks.

    Returns an ``(num_workers + 1,)`` offsets array; chunk ``i`` covers
    ``[offsets[i], offsets[i+1])``.  Chunk sizes differ by at most one —
    the defining property of the load-balancing search.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    if total_edges < 0:
        raise ValueError("total_edges must be non-negative")
    base, rem = divmod(total_edges, num_workers)
    sizes = np.full(num_workers, base, dtype=np.int64)
    sizes[:rem] += 1
    return np.concatenate(([0], np.cumsum(sizes)))


def twc_buckets(
    graph: Csr,
    frontier: np.ndarray,
    *,
    warp_threshold: int = 32,
    cta_threshold: int = 256,
) -> dict[str, np.ndarray]:
    """Partition frontier vertices into thread/warp/CTA degree classes.

    ``thread``: degree < ``warp_threshold`` — one thread each;
    ``warp``: degree in [warp_threshold, cta_threshold) — one warp each;
    ``cta``: degree >= ``cta_threshold`` — one CTA each.
    Relative order within each bucket is preserved (stable partition).
    """
    if warp_threshold <= 0 or cta_threshold <= warp_threshold:
        raise ValueError("thresholds must satisfy 0 < warp_threshold < cta_threshold")
    f = np.asarray(frontier, dtype=np.int64)
    deg = graph.indptr[f + 1] - graph.indptr[f]
    return {
        "thread": f[deg < warp_threshold],
        "warp": f[(deg >= warp_threshold) & (deg < cta_threshold)],
        "cta": f[deg >= cta_threshold],
    }
