"""Bulk-synchronous-parallel baseline engine (the Gunrock stand-in).

The BSP model launches one (or more) kernels per outer-loop iteration with a
global barrier in between.  :class:`BspTimeline` accumulates the simulated
cost of each kernel + barrier and the per-iteration throughput trace; the
application modules drive it with their vectorised per-frontier steps.
"""

from repro.bsp.engine import BspTimeline
from repro.bsp.loadbalance import (
    balanced_chunks,
    flatten_frontier,
    twc_buckets,
)

__all__ = ["BspTimeline", "flatten_frontier", "balanced_chunks", "twc_buckets"]
