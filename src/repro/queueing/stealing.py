"""Work-stealing worklist — the distributed-queue alternative.

The paper's Section 1 argues for a *single shared queue* because it
"balances load more quickly than a distributed queue, yet is fast enough to
keep GPU workers occupied".  This module implements the alternative the
claim is measured against: per-worker-group deques with steal-on-empty
(Cederman & Tsigas-style GPU work stealing, the paper's reference [7]).

Timing model: each deque has its own atomic pair (owner pops and thief
steals serialize on it); a steal additionally pays ``steal_probe_ns`` per
*probed* deque, modeling the remote-scan cost that makes distributed
queues slower to balance.  :mod:`benchmarks/bench_ablations` uses the drop-in
:class:`StealingWorklist` to put numbers on the paper's design claim.
"""

from __future__ import annotations

import numpy as np

from repro.obs.events import EventSink, QueueSteal
from repro.queueing.mpmc import MpmcQueue
from repro.queueing.protocol import WorklistStats

__all__ = ["StealingWorklist"]


class StealingWorklist:
    """Per-group deques with steal-on-empty.

    API-compatible with :class:`~repro.queueing.broker.QueueBroker`
    (``push(items, now)``, ``pop(max_items, now, home=...)``, ``size``) so
    the scheduler can run on either — workers push to their *home* deque
    and steal half a victim's items when theirs runs dry.
    """

    def __init__(
        self,
        num_deques: int = 8,
        *,
        capacity: int = 1 << 62,
        atomic_ns: float = 2.0,
        steal_probe_ns: float = 30.0,
        seed: int = 0,
        name: str = "steal",
        sink: EventSink | None = None,
    ) -> None:
        if num_deques <= 0:
            raise ValueError("num_deques must be positive")
        if steal_probe_ns < 0:
            raise ValueError("steal_probe_ns must be non-negative")
        self.deques = [
            MpmcQueue(capacity, atomic_ns=atomic_ns, name=f"{name}[{i}]", sink=sink)
            for i in range(num_deques)
        ]
        self.steal_probe_ns = float(steal_probe_ns)
        self.steals = 0
        self.failed_steals = 0
        self.banked_items = 0
        self._probe_seq = seed
        self.sink = sink

    # ------------------------------------------------------------------
    @property
    def num_queues(self) -> int:
        return len(self.deques)

    @property
    def size(self) -> int:
        return sum(d.size for d in self.deques)

    def __len__(self) -> int:
        return self.size

    def __bool__(self) -> bool:
        return self.size > 0

    # ------------------------------------------------------------------
    def push(self, items: np.ndarray, now: float = 0.0, *, home: int = 0) -> float:
        """Push to the producer's own deque (no scatter)."""
        return self.deques[home % self.num_queues].push(items, now)

    def _victim_order(self, home: int) -> list[int]:
        """Seeded deterministic permutation of the victims (excludes home).

        A Fisher-Yates shuffle driven by the worklist's LCG, so every
        ordering of the victims is reachable.  (An earlier version only
        rotated the fixed ring ``home+1, home+2, ...`` from a random start,
        which always probed ``start+1`` before ``start+2`` — a selection
        bias the Cederman & Tsigas model doesn't have.)  One shared LCG,
        not per-home state, keeps the sequence reproducible across
        interleaved thieves; a single-victim worklist has only one
        ordering, so it draws nothing.
        """
        n = self.num_queues
        order = [v for v in range(n) if v != home % n]
        seq = self._probe_seq
        for i in range(len(order) - 1, 0, -1):
            seq = (seq * 1103515245 + 12345) & 0x7FFFFFFF
            # draw from the high bits: the glibc-style LCG's low bits have
            # tiny periods modulo small i (the multiplier is divisible by 3)
            j = (seq >> 16) % (i + 1)
            order[i], order[j] = order[j], order[i]
        self._probe_seq = seq
        return order

    def pop(self, max_items: int, now: float = 0.0, *, home: int = 0) -> tuple[np.ndarray, float]:
        """Pop from the home deque; on empty, probe victims and steal half."""
        if max_items <= 0:
            raise ValueError("max_items must be positive")
        own = self.deques[home % self.num_queues]
        items, t = own.pop(max_items, now)
        if items.size:
            return items, t
        for victim_idx in self._victim_order(home):
            t += self.steal_probe_ns  # remote probe cost
            victim = self.deques[victim_idx]
            if victim.size == 0:
                self.failed_steals += 1
                continue
            # steal half the victim's items (classic stealing granularity)
            take = max(1, victim.size // 2)
            loot, t = victim.pop(take, t)
            if loot.size == 0:
                self.failed_steals += 1
                continue
            self.steals += 1
            banked = int(loot.size) - max_items if loot.size > max_items else 0
            if self.sink is not None:
                self.sink.emit(
                    QueueSteal(
                        t=t,
                        thief=home % self.num_queues,
                        victim=victim_idx,
                        items=int(loot.size),
                        banked=banked,
                    )
                )
            # keep what we can process now; bank the rest in our own deque.
            # The banking push serializes on our deque's tail atomic like
            # any other push, so its completion time is charged to the
            # steal (a previous version dropped it, making banked surplus
            # free in simulated time and flattering stealing in the
            # bench_ablations comparison).  Banked items hit the push/pop
            # item counters a second time; ``banked_items`` records how
            # many, so distinct-item accounting can subtract them.
            if banked:
                self.banked_items += banked
                t = own.push(loot[max_items:], t)
                loot = loot[:max_items]
            return loot, t
        return np.empty(0, dtype=np.int64), t

    def drain(self) -> np.ndarray:
        """Snapshot-and-clear all deques (deque order)."""
        parts = [d.drain() for d in self.deques]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def total_contention_wait(self) -> float:
        return sum(d.stats.contention_wait_ns for d in self.deques)

    def stats(self) -> WorklistStats:
        """Aggregate deque counters plus steal outcomes (``Worklist`` protocol)."""
        agg = WorklistStats(
            steals=self.steals,
            failed_steals=self.failed_steals,
            banked_items=self.banked_items,
        )
        for d in self.deques:
            s = d.stats
            agg.pushes += s.pushes
            agg.pops += s.pops
            agg.items_pushed += s.items_pushed
            agg.items_popped += s.items_popped
            agg.empty_pops += s.empty_pops
            agg.contention_wait_ns += s.contention_wait_ns
            agg.max_size = max(agg.max_size, s.max_size)
        return agg
