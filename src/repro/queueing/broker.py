"""Multi-queue broker — the ``Queues`` object of the paper's Listing 3.

Atos allocates ``num_queues`` physical queues per logical work list.  With
one queue all workers contend on a single pair of atomic counters; with
several, pushes are scattered round-robin and each worker pops from a home
queue first, then steals from siblings.  The paper uses a single shared
queue for its headline results ("fast enough to keep GPU workers
occupied"); the broker makes the 1-vs-N comparison an experiment instead of
a constant.
"""

from __future__ import annotations

import numpy as np

from repro.obs.events import EventSink
from repro.queueing.mpmc import MpmcQueue
from repro.queueing.protocol import WorklistStats

__all__ = ["QueueBroker"]


class QueueBroker:
    """Round-robin scatter over ``num_queues`` :class:`MpmcQueue` instances."""

    def __init__(
        self,
        num_queues: int = 1,
        *,
        capacity: int = 1 << 62,
        atomic_ns: float = 2.0,
        name: str = "worklist",
        sink: EventSink | None = None,
    ) -> None:
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        self.queues = [
            MpmcQueue(capacity, atomic_ns=atomic_ns, name=f"{name}[{i}]", sink=sink)
            for i in range(num_queues)
        ]
        self._push_cursor = 0
        self.name = name
        #: fast path: with one physical queue (the paper's headline setup)
        #: push/pop/size skip the scatter machinery entirely
        self._single = self.queues[0] if num_queues == 1 else None

    # ------------------------------------------------------------------
    @property
    def num_queues(self) -> int:
        return len(self.queues)

    @property
    def size(self) -> int:
        """Total items across all physical queues."""
        single = self._single
        if single is not None:
            return single._tail - single._head
        return sum(q.size for q in self.queues)

    def __len__(self) -> int:
        return self.size

    def __bool__(self) -> bool:
        return self.size > 0

    # ------------------------------------------------------------------
    def push(self, items: np.ndarray, now: float = 0.0, *, home: int = 0) -> float:
        """Scatter ``items`` round-robin; returns the last completion time.

        ``home`` is accepted for API compatibility with
        :class:`~repro.queueing.stealing.StealingWorklist` (which pushes to
        the producer's own deque); the shared broker ignores it.
        """
        single = self._single
        if single is not None:
            return single.push(items, now)
        items = np.asarray(items, dtype=np.int64).ravel()
        if items.size == 0:
            return now
        n = self.num_queues
        t = now
        # round-robin in contiguous chunks: item k goes to queue
        # (cursor + k) % n, realised as n strided slices (vectorised).
        for offset in range(n):
            qi = (self._push_cursor + offset) % n
            chunk = items[offset::n]
            if chunk.size:
                t = max(t, self.queues[qi].push(chunk, now))
        self._push_cursor = (self._push_cursor + items.size) % n
        return t

    def pop(self, max_items: int, now: float = 0.0, *, home: int = 0) -> tuple[np.ndarray, float]:
        """Pop up to ``max_items``, preferring the worker's home queue.

        Visits queues starting at ``home % num_queues`` and steals from
        siblings until the request is filled or every queue came up empty.
        Each visited queue charges its own atomic cost.
        """
        single = self._single
        if single is not None:
            return single.pop(max_items, now)
        n = self.num_queues
        collected: list[np.ndarray] = []
        remaining = max_items
        t = now
        for offset in range(n):
            q = self.queues[(home + offset) % n]
            if q.size == 0 and collected:
                continue  # don't pay for obviously-empty siblings once fed
            got, t_op = q.pop(remaining, t)
            t = t_op
            if got.size:
                collected.append(got)
                remaining -= got.size
                if remaining == 0:
                    break
        if not collected:
            return np.empty(0, dtype=np.int64), t
        return np.concatenate(collected) if len(collected) > 1 else collected[0], t

    def drain(self) -> np.ndarray:
        """Snapshot-and-clear all queues in global push order.

        Used by the discrete kernel strategy to materialise one generation.
        Returns the remaining items in the exact order they were pushed —
        regardless of ``num_queues`` and of any pops in between —
        preserving the global vertex-id ordering that the coloring study
        (Section 6.3) depends on.

        The round-robin scatter puts the ``g``-th item ever pushed into
        physical queue ``g % n`` (the cursor advances by each push's item
        count, so consecutive items land in consecutive queues across push
        boundaries).  Queues are strict FIFOs and pops only remove from the
        head, so the ``j``-th item *remaining* in queue ``q`` has global
        index ``(removed_q + j) * n + q`` where ``removed_q`` counts every
        item ever popped or drained from that queue.  Merging by global
        index reconstructs exact push order.  (A previous version
        interleaved parts starting at queue 0 and index 0, which reordered
        items whenever the push cursor was mid-rotation — e.g. pushing
        ``a b`` after pops emptied the queues drained as ``b a``.)
        """
        n = self.num_queues
        if n == 1:
            return self.queues[0].drain()
        parts: list[np.ndarray] = []
        order_keys: list[np.ndarray] = []
        for qi, q in enumerate(self.queues):
            removed = q.stats.items_popped + q.stats.items_drained
            part = q.drain()
            if part.size:
                parts.append(part)
                order_keys.append(
                    (removed + np.arange(part.size, dtype=np.int64)) * n + qi
                )
        if not parts:
            return np.empty(0, dtype=np.int64)
        items = np.concatenate(parts)
        order = np.argsort(np.concatenate(order_keys), kind="stable")
        return items[order]

    def total_contention_wait(self) -> float:
        """Aggregate atomic-contention wait across all physical queues."""
        return sum(q.stats.contention_wait_ns for q in self.queues)

    def stats(self) -> WorklistStats:
        """Aggregate the physical queues' counters (``Worklist`` protocol).

        A shared broker never steals, so the stealing counters are zero.
        """
        agg = WorklistStats()
        for q in self.queues:
            s = q.stats
            agg.pushes += s.pushes
            agg.pops += s.pops
            agg.items_pushed += s.items_pushed
            agg.items_popped += s.items_popped
            agg.empty_pops += s.empty_pops
            agg.contention_wait_ns += s.contention_wait_ns
            agg.max_size = max(agg.max_size, s.max_size)
        return agg
