"""A simulated multi-producer/multi-consumer FIFO queue.

Payloads are ``int64`` work items (vertex ids; the coloring app also stores
negated ids as conflict-check tags).  Storage is a flat ring buffer that
doubles on demand — pops slice contiguous runs, so a fetch of ``k`` items is
O(k) with no Python-level per-item loop.

Timing model
------------
Real Atos queues serialize on two atomic counters (head and tail).  We model
each operation as acquiring the queue's atomic for ``atomic_ns`` simulated
nanoseconds: operations arriving while the atomic is held queue up behind
it.  :attr:`QueueStats.contention_wait_ns` accumulates the induced waiting
so experiments can report how far a single shared queue is from becoming
the bottleneck (it never is, in the paper and in our runs — but the model
lets us check rather than assume).

Conservation
------------
Items leave a queue by exactly two routes — :meth:`MpmcQueue.pop` (counted
in :attr:`QueueStats.items_popped`) and :meth:`MpmcQueue.drain` (counted in
:attr:`QueueStats.items_drained`, deliberately *not* in ``items_popped``:
a drain is a host-side generation snapshot, not a worker pop, and the
broker's order-preserving drain needs the two counted separately).  So at
any instant every queue satisfies::

    stats.items_pushed == stats.items_popped + stats.items_drained + size

:func:`repro.check.invariants.verify_queue_conservation` asserts this
equation; ``tests/test_check_invariants.py`` exercises it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.events import EmptyPop, EventSink, QueuePop, QueuePush

__all__ = ["MpmcQueue", "QueueStats"]

#: shared zero-length result for empty pops (never mutable: it has no
#: elements to write, and callers only inspect ``.size``)
_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class QueueStats:
    """Operation counters for one queue."""

    pushes: int = 0
    pops: int = 0
    items_pushed: int = 0
    items_popped: int = 0
    empty_pops: int = 0
    contention_wait_ns: float = 0.0
    max_size: int = 0
    #: items removed via :meth:`MpmcQueue.drain` (not counted as pops);
    #: the broker's order-preserving drain needs the total removal count
    items_drained: int = 0


class MpmcQueue:
    """FIFO of int64 items with an atomic-serialization timing model."""

    __slots__ = (
        "_buf",
        "_head",
        "_tail",
        "_pop_atomic_free",
        "_push_atomic_free",
        "atomic_ns",
        "capacity",
        "stats",
        "name",
        "sink",
    )

    def __init__(
        self,
        capacity: int = 1 << 62,
        *,
        atomic_ns: float = 2.0,
        initial_buffer: int = 1024,
        name: str = "queue",
        sink: EventSink | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._buf = np.empty(max(16, initial_buffer), dtype=np.int64)
        self._head = 0  # index of next item to pop
        self._tail = 0  # index one past the last item
        # Head and tail counters are distinct atomics on the device, so pop
        # and push traffic serialize independently.
        self._pop_atomic_free = 0.0
        self._push_atomic_free = 0.0
        self.atomic_ns = float(atomic_ns)
        self.capacity = int(capacity)
        self.stats = QueueStats()
        self.name = name
        #: optional observability sink; ``None`` disables event emission
        #: entirely (emit points reduce to one attribute test)
        self.sink = sink

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of items currently queued."""
        return self._tail - self._head

    def __len__(self) -> int:
        return self.size

    def __bool__(self) -> bool:
        return self.size > 0

    def _acquire_pop_atomic(self, now: float) -> float:
        """Serialize on the head counter; returns the operation end time."""
        start = max(now, self._pop_atomic_free)
        self.stats.contention_wait_ns += start - now
        self._pop_atomic_free = start + self.atomic_ns
        return self._pop_atomic_free

    def _acquire_push_atomic(self, now: float) -> float:
        """Serialize on the tail counter; returns the operation end time."""
        start = max(now, self._push_atomic_free)
        self.stats.contention_wait_ns += start - now
        self._push_atomic_free = start + self.atomic_ns
        return self._push_atomic_free

    def _ensure_room(self, extra: int) -> None:
        if self._tail + extra <= self._buf.size:
            return
        live = self.size
        need = live + extra
        new_size = self._buf.size
        while new_size < need:
            new_size *= 2
        new_buf = np.empty(new_size, dtype=np.int64)
        new_buf[:live] = self._buf[self._head : self._tail]
        self._buf = new_buf
        self._head = 0
        self._tail = live

    # ------------------------------------------------------------------
    def push(self, items: np.ndarray, now: float = 0.0) -> float:
        """Append ``items``; returns the simulated completion time.

        Raises :class:`OverflowError` when the queue would exceed its
        configured capacity — mirroring the fixed-size device buffers the
        real framework allocates in ``Queues::init``.
        """
        items = np.asarray(items, dtype=np.int64).ravel()
        k = items.size
        if k == 0:
            return now
        if self.size + k > self.capacity:
            raise OverflowError(
                f"queue {self.name!r} over capacity: "
                f"{self.size} + {k} > {self.capacity}"
            )
        # inlined _acquire_push_atomic (hot path: one call per completion)
        stats = self.stats
        free = self._push_atomic_free
        start = now if now > free else free
        stats.contention_wait_ns += start - now
        t = self._push_atomic_free = start + self.atomic_ns
        self._ensure_room(k)
        tail = self._tail
        self._buf[tail : tail + k] = items
        self._tail = tail + k
        stats.pushes += 1
        stats.items_pushed += k
        size = self._tail - self._head
        if size > stats.max_size:
            stats.max_size = size
        if self.sink is not None:
            self.sink.emit(
                QueuePush(
                    t=t,
                    queue=self.name,
                    items=int(items.size),
                    depth=self.size,
                    wait_ns=max(0.0, t - now - self.atomic_ns),
                )
            )
        return t

    def pop(self, max_items: int, now: float = 0.0) -> tuple[np.ndarray, float]:
        """Remove up to ``max_items`` from the head.

        Returns ``(items, completion_time)``.  An empty pop still pays the
        atomic cost (the worker had to look), and is counted separately in
        the stats — empty pops are what drive the persistent kernel's
        polling overhead.
        """
        if max_items <= 0:
            raise ValueError("max_items must be positive")
        # inlined _acquire_pop_atomic (hot path: one call per worker poll)
        stats = self.stats
        free = self._pop_atomic_free
        start = now if now > free else free
        stats.contention_wait_ns += start - now
        t = self._pop_atomic_free = start + self.atomic_ns
        head = self._head
        n = self._tail - head
        if n > max_items:
            n = max_items
        if n == 0:
            stats.empty_pops += 1
            if self.sink is not None:
                self.sink.emit(
                    EmptyPop(
                        t=t,
                        queue=self.name,
                        wait_ns=max(0.0, t - now - self.atomic_ns),
                    )
                )
            return _EMPTY, t
        out = self._buf[head : head + n].copy()
        self._head = head = head + n
        stats.pops += 1
        stats.items_popped += n
        if head == self._tail:
            # reset to keep the buffer compact
            self._head = self._tail = 0
        if self.sink is not None:
            self.sink.emit(
                QueuePop(
                    t=t,
                    queue=self.name,
                    items=n,
                    depth=self.size,
                    wait_ns=max(0.0, t - now - self.atomic_ns),
                )
            )
        return out, t

    def drain(self) -> np.ndarray:
        """Remove and return everything (no timing; used by discrete mode
        to snapshot a generation and by tests).

        Drained items bypass ``stats.items_popped`` by design — they are
        accounted in ``stats.items_drained``, keeping the conservation
        equation ``items_pushed == items_popped + items_drained + size``
        exact (see the module docstring)."""
        out = self._buf[self._head : self._tail].copy()
        self._head = self._tail = 0
        self.stats.items_drained += out.size
        return out

    def peek_all(self) -> np.ndarray:
        """A copy of the current contents without removing them."""
        return self._buf[self._head : self._tail].copy()
