"""Simulated concurrent work queues.

Atos's central data structure is a single shared task queue that GPU workers
pop from and push to with atomic counter operations.  :class:`MpmcQueue`
models one such queue: FIFO payload storage plus a serialization point that
charges simulated time for every atomic acquire — the contention model that
lets benchmarks measure when a single shared queue stops being "fast enough
to keep GPU workers occupied" (paper Section 1).

:class:`QueueBroker` is the ``Queues`` object from the paper's Listing 3:
it fans pushes across ``num_queues`` physical queues (round-robin) and lets
workers pop from their home queue first, stealing from siblings when empty.
"""

from repro.queueing.mpmc import MpmcQueue, QueueStats
from repro.queueing.broker import QueueBroker
from repro.queueing.priority import BucketedWorklist
from repro.queueing.protocol import Worklist, WorklistStats
from repro.queueing.stealing import StealingWorklist

__all__ = [
    "MpmcQueue",
    "QueueStats",
    "QueueBroker",
    "BucketedWorklist",
    "StealingWorklist",
    "Worklist",
    "WorklistStats",
]
