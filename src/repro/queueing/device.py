"""Per-device worklists with interconnect-priced remote operations.

:class:`DeviceWorklist` is the multi-device sibling of
:class:`~repro.queueing.stealing.StealingWorklist`: one deque per *device*
(not per worker group), where every cross-device movement of work pays the
cluster's :class:`~repro.sim.spec.InterconnectSpec` cost model:

* a **remote push** (a completion whose new items belong to another
  device under the partition) reserves the directed ``src -> dst`` link —
  transfers behind an earlier transfer on the same link queue up — and
  the items only become poppable at ``link_end + latency``.  The
  scheduling of that arrival is the policy's job (it owns the event
  loop); this class owns the link clocks and the delivery;
* a **remote steal** reuses the parent's Fisher-Yates victim order, with
  ``steal_probe_ns`` set to the interconnect latency (a probe is a remote
  read of another device's queue counter).  A steal only proceeds when
  the estimated work of the loot beats ``steal_ratio`` times its transfer
  cost — the forwarding heuristic that makes stealing profitable on
  work-rich scale-free frontiers and a loss on narrow mesh wavefronts;
* the **host** (initial seeding, ``final_check`` re-seeds) scatters items
  directly into owner deques with no link cost, like a ``cudaMemcpy``
  staged before the launch.

Conservation is inherited: items enter a deque by push/delivery and leave
by pop/steal/drain, so the per-queue and distinct-item equations of
:func:`repro.check.invariants.verify_queue_conservation` hold unchanged.
The remote counters (``remote_pushes``, ``remote_items``,
``remote_steals``, ``comm_ns``) extend :class:`WorklistStats` without
touching single-device accounting.
"""

from __future__ import annotations

import numpy as np

from repro.graph.partition import Partition
from repro.obs.events import EventSink, QueueSteal, RemotePush, RemoteSteal
from repro.queueing.mpmc import MpmcQueue
from repro.queueing.protocol import WorklistStats
from repro.queueing.stealing import StealingWorklist
from repro.sim.spec import InterconnectSpec

__all__ = ["DeviceWorklist"]


class DeviceWorklist(StealingWorklist):
    """One deque per device; remote push/steal pays the interconnect.

    ``home`` in :meth:`push`/:meth:`pop` is a **device index**, not a
    worker id — the distributed policy routes every worker through its
    device's deque.  Deques are named ``{name}@dev{i}`` so the invariant
    monitor and metrics sink can attribute queue events to devices by
    parsing the suffix.
    """

    def __init__(
        self,
        partition: Partition,
        interconnect: InterconnectSpec,
        *,
        capacity: int = 1 << 62,
        atomic_ns: float = 2.0,
        seed: int = 0,
        name: str = "dist",
        sink: EventSink | None = None,
        steal_ratio: float = 2.0,
        item_work_ns: float = 1.0,
    ) -> None:
        num_devices = partition.num_parts
        super().__init__(
            num_devices,
            capacity=capacity,
            atomic_ns=atomic_ns,
            steal_probe_ns=interconnect.latency_ns,
            seed=seed,
            name=name,
            sink=sink,
        )
        # rename the parent's deques to the device-tagged scheme the
        # check/metrics layers parse ("{name}[{i}]" -> "{name}@dev{i}")
        for i, d in enumerate(self.deques):
            d.name = f"{name}@dev{i}"
        self.partition = partition
        self.interconnect = interconnect
        self.steal_ratio = float(steal_ratio)
        #: estimated service time of one work item on its executing device;
        #: the steal gate compares loot work against transfer cost with it
        self.item_work_ns = float(item_work_ns)
        #: per-directed-link serialization clock (src, dst) -> free-at time
        self._link_free: dict[tuple[int, int], float] = {}
        self.remote_pushes = 0
        self.remote_items = 0
        self.remote_steals = 0
        self.comm_ns = 0.0

    # -- interconnect ---------------------------------------------------
    def reserve_link(self, src: int, dst: int, units: float, now: float) -> float:
        """Occupy the directed ``src -> dst`` link for ``units`` of payload.

        Returns the serialization end time; the payload is usable at
        ``end + latency``.  Link occupancy plus the latency are charged to
        ``comm_ns`` (queueing *behind* the link is waiting, not
        communication, and is visible in elapsed time instead).
        """
        link = self.interconnect
        key = (src, dst)
        start = self._link_free.get(key, 0.0)
        if now > start:
            start = now
        end = start + units / link.items_per_ns
        self._link_free[key] = end
        self.comm_ns += (end - start) + link.latency_ns
        return end

    def send(
        self, src: int, dst: int, items: np.ndarray, now: float
    ) -> tuple[float, float]:
        """Start a remote push of ``items``; returns ``(arrival, transfer_ns)``.

        The caller (the distributed policy) schedules the arrival on its
        event loop and completes it with :meth:`deliver` — the items are
        in flight until then, owned by neither deque.
        """
        end = self.reserve_link(src, dst, float(items.size), now)
        arrive = end + self.interconnect.latency_ns
        self.remote_pushes += 1
        self.remote_items += int(items.size)
        return arrive, arrive - now

    def deliver(
        self, src: int, dst: int, items: np.ndarray, t: float, transfer_ns: float
    ) -> float:
        """Complete a remote push: land ``items`` in device ``dst``'s deque."""
        t_done = self.deques[dst].push(items, t)
        if self.sink is not None:
            self.sink.emit(
                RemotePush(
                    t=t,
                    src=src,
                    dst=dst,
                    items=int(items.size),
                    transfer_ns=transfer_ns,
                )
            )
        return t_done

    # -- worklist protocol ----------------------------------------------
    def push(self, items: np.ndarray, now: float = 0.0, *, home: int = 0) -> float:
        """Host-side scatter: route ``items`` to their owner deques, free.

        This is the seeding path (initial items, ``final_check`` refills):
        the host stages data on every device before work begins, so no
        link cost applies.  Device-side pushes go through
        :meth:`push_local` / :meth:`send` instead — ``home`` is ignored
        because ownership, not the producer, decides placement here.
        """
        if items.size == 0:
            return now
        owners = self.partition.owner_of(items)
        t = now
        for dev in np.unique(owners):
            t = max(t, self.deques[int(dev)].push(items[owners == dev], now))
        return t

    def push_local(self, dev: int, items: np.ndarray, now: float) -> float:
        """A device-side push into the producer's own deque."""
        return self.deques[dev].push(items, now)

    def pop(
        self,
        max_items: int,
        now: float = 0.0,
        *,
        home: int = 0,
        allow_steal: bool = True,
    ) -> tuple[np.ndarray, float]:
        """Pop from the home device's deque; optionally steal cross-device.

        The steal path mirrors the parent's probe loop but every probe
        costs one interconnect latency, the loot must pass the
        steal-ratio gate, and moving it reserves the victim->thief link —
        the items only become usable at the transfer's arrival time.
        """
        if max_items <= 0:
            raise ValueError("max_items must be positive")
        own = self.deques[home % self.num_queues]
        items, t = own.pop(max_items, now)
        if items.size or not allow_steal:
            return items, t
        link = self.interconnect
        for victim_idx in self._victim_order(home):
            t += self.steal_probe_ns  # remote queue-counter read
            victim = self.deques[victim_idx]
            if victim.size == 0:
                self.failed_steals += 1
                continue
            take = max(1, victim.size // 2)
            # forwarding heuristic: stolen work must beat its freight
            if take * self.item_work_ns < self.steal_ratio * link.transfer_ns(take):
                self.failed_steals += 1
                continue
            loot, t = victim.pop(take, t)
            if loot.size == 0:
                self.failed_steals += 1
                continue
            self.steals += 1
            self.remote_steals += 1
            end = self.reserve_link(victim_idx, home % self.num_queues, float(loot.size), t)
            arrive = end + link.latency_ns
            banked = int(loot.size) - max_items if loot.size > max_items else 0
            if self.sink is not None:
                self.sink.emit(
                    QueueSteal(
                        t=arrive,
                        thief=home % self.num_queues,
                        victim=victim_idx,
                        items=int(loot.size),
                        banked=banked,
                    )
                )
                self.sink.emit(
                    RemoteSteal(
                        t=arrive,
                        thief=home % self.num_queues,
                        victim=victim_idx,
                        items=int(loot.size),
                        transfer_ns=arrive - t,
                    )
                )
            if banked:
                self.banked_items += banked
                arrive = own.push(loot[max_items:], arrive)
                loot = loot[:max_items]
            return loot, arrive
        return np.empty(0, dtype=np.int64), t

    def stats(self) -> WorklistStats:
        """Parent aggregation plus the remote/communication counters."""
        agg = super().stats()
        agg.remote_pushes = self.remote_pushes
        agg.remote_items = self.remote_items
        agg.remote_steals = self.remote_steals
        agg.comm_ns = self.comm_ns
        return agg
