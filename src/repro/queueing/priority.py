"""Bucketed priority work list (delta-stepping style).

The paper's single FIFO queue treats all ready work as equal.  For
priority-ordered algorithms (SSSP being the canonical case) a *bucketed*
work list — an array of FIFO queues indexed by ``priority // delta`` —
recovers most of the ordering benefit of a heap at queue-like cost, which
is exactly the classic delta-stepping structure.  This module provides the
simulated bucket list with the same atomic timing model as
:class:`~repro.queueing.mpmc.MpmcQueue`, plus the scheduling convention
used by :mod:`repro.apps.delta_sssp`: pops always come from the lowest
non-empty bucket.

Buckets beyond ``num_buckets`` wrap around (a circular bucket array, as in
practical delta-stepping implementations); correctness is preserved
because items are re-examined against the distance array at pop.
"""

from __future__ import annotations

import numpy as np

from repro.queueing.mpmc import MpmcQueue
from repro.queueing.protocol import WorklistStats

__all__ = ["BucketedWorklist"]


class BucketedWorklist:
    """Circular array of FIFO buckets keyed by ``priority // delta``."""

    def __init__(
        self,
        delta: float,
        *,
        num_buckets: int = 64,
        atomic_ns: float = 2.0,
        name: str = "buckets",
    ) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        self.delta = float(delta)
        self.buckets = [
            MpmcQueue(atomic_ns=atomic_ns, name=f"{name}[{i}]")
            for i in range(num_buckets)
        ]
        #: index of the lowest bucket that may hold work
        self.cursor = 0

    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    @property
    def size(self) -> int:
        return sum(b.size for b in self.buckets)

    def __len__(self) -> int:
        return self.size

    def __bool__(self) -> bool:
        return self.size > 0

    def bucket_of(self, priority: float) -> int:
        """Bucket index for a priority value (circular)."""
        if priority < 0:
            raise ValueError("priorities must be non-negative")
        return int(priority / self.delta) % self.num_buckets

    # ------------------------------------------------------------------
    def push(self, items: np.ndarray, priorities: np.ndarray, now: float = 0.0) -> float:
        """Scatter items into buckets by priority; returns last op time."""
        items = np.asarray(items, dtype=np.int64).ravel()
        priorities = np.asarray(priorities, dtype=np.float64).ravel()
        if items.shape != priorities.shape:
            raise ValueError("items and priorities must align")
        if items.size == 0:
            return now
        if priorities.min() < 0:
            raise ValueError("priorities must be non-negative")
        idx = (priorities / self.delta).astype(np.int64) % self.num_buckets
        t = now
        for b in np.unique(idx):
            t = max(t, self.buckets[b].push(items[idx == b], now))
        return t

    def pop(self, max_items: int, now: float = 0.0) -> tuple[np.ndarray, float]:
        """Pop from the lowest non-empty bucket at or after the cursor.

        Advances the cursor past exhausted buckets (each advance costs one
        empty-pop atomic on the skipped bucket — the "find next bucket"
        scan of real delta-stepping).
        """
        if max_items <= 0:
            raise ValueError("max_items must be positive")
        t = now
        for _ in range(self.num_buckets):
            bucket = self.buckets[self.cursor]
            items, t = bucket.pop(max_items, t)
            if items.size:
                return items, t
            self.cursor = (self.cursor + 1) % self.num_buckets
        return np.empty(0, dtype=np.int64), t

    def total_contention_wait(self) -> float:
        return sum(b.stats.contention_wait_ns for b in self.buckets)

    def stats(self) -> WorklistStats:
        """Aggregate bucket counters (priority push, no stealing)."""
        agg = WorklistStats()
        for b in self.buckets:
            s = b.stats
            agg.pushes += s.pushes
            agg.pops += s.pops
            agg.items_pushed += s.items_pushed
            agg.items_popped += s.items_popped
            agg.empty_pops += s.empty_pops
            agg.contention_wait_ns += s.contention_wait_ns
            agg.max_size = max(agg.max_size, s.max_size)
        return agg
