"""The formal ``Worklist`` protocol the scheduler runs against.

The execution engine used to duck-type its way across queue
implementations (``hasattr(q, "queues")`` to find the backing FIFOs,
``getattr(q, "steals", 0)`` for stealing counters).  This module replaces
that with an explicit contract: anything the scheduler can drive must
provide ``push`` / ``pop`` / ``size`` / ``stats()``, where ``stats()``
returns one :class:`WorklistStats` record aggregated over every physical
queue the worklist owns.

Implementations in this package:

* :class:`~repro.queueing.broker.QueueBroker` — the paper's shared
  multi-queue worklist (round-robin scatter, home-queue pop);
* :class:`~repro.queueing.stealing.StealingWorklist` — per-group deques
  with steal-on-empty (the distributed alternative of reference [7]);
* :class:`~repro.queueing.priority.BucketedWorklist` — delta-stepping
  buckets (push takes priorities, so it satisfies the stats/size half of
  the contract and is driven by the BSP timeline rather than the engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["WorklistStats", "Worklist"]


@dataclass
class WorklistStats:
    """Aggregated operation counters for one logical worklist.

    Sums the per-physical-queue :class:`~repro.queueing.mpmc.QueueStats`
    plus the worklist-level stealing counters (zero for non-stealing
    organisations), so the engine can absorb a retiring queue's counters
    without knowing how the worklist is organised internally.
    """

    pushes: int = 0
    pops: int = 0
    items_pushed: int = 0
    items_popped: int = 0
    empty_pops: int = 0
    contention_wait_ns: float = 0.0
    max_size: int = 0
    steals: int = 0
    failed_steals: int = 0
    #: items re-pushed into the thief's own deque as stolen surplus.  These
    #: are counted a second time in ``items_pushed`` (the banking push is a
    #: real queue operation) and their steal-pop a second time in
    #: ``items_popped``, so *distinct* item totals are
    #: ``items_pushed - banked_items`` / ``items_popped - banked_items``.
    banked_items: int = 0

    # --- multi-device counters (zero on single-device worklists) ---------
    #: pushes whose producer device differed from the item's owner device
    remote_pushes: int = 0
    #: items those remote pushes carried across the interconnect
    remote_items: int = 0
    #: successful steals whose victim deque lived on another device
    remote_steals: int = 0
    #: total simulated time spent occupying interconnect links
    comm_ns: float = 0.0


@runtime_checkable
class Worklist(Protocol):
    """What the execution engine requires of a work list.

    ``push``/``pop`` carry simulated time (operations complete at the
    returned instant); ``home`` identifies the calling worker's group for
    organisations that care (stealing deques, home-queue brokers).
    """

    def push(self, items: np.ndarray, now: float = 0.0, *, home: int = 0) -> float:
        """Append ``items``; returns the simulated completion time."""
        ...

    def pop(
        self, max_items: int, now: float = 0.0, *, home: int = 0
    ) -> tuple[np.ndarray, float]:
        """Remove up to ``max_items``; returns ``(items, completion_time)``."""
        ...

    @property
    def size(self) -> int:
        """Items currently queued across all physical queues."""
        ...

    def stats(self) -> WorklistStats:
        """Aggregated operation counters since construction."""
        ...

    def drain(self) -> np.ndarray:
        """Snapshot-and-clear all physical queues (generation switch)."""
        ...
