"""Figure 3 — graph coloring normalized throughput vs. timeline."""

import pytest

DATASETS = ["soc-LiveJournal1", "indochina-2004", "road_usa", "roadNet-CA"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig3(benchmark, lab, save_artifact, dataset):
    fig = benchmark.pedantic(
        lambda: lab.format_figure("coloring", dataset), rounds=1, iterations=1
    )
    save_artifact(f"fig3_{dataset}", fig)


def test_fig3_persist_warp_normalized_peak_beats_discrete(lab):
    """Section 6.3: persist-warp achieves higher *normalized* throughput
    than discrete-warp on scale-free datasets (less overwork wins even at
    lower raw occupancy)."""
    curves = dict(lab.figure("coloring", "soc-LiveJournal1", bins=50))
    assert curves["persist-warp"].peak() > 0
    assert curves["persist-warp"].mean() > curves["discrete-warp"].mean()
