"""Shared benchmark fixtures.

Every benchmark regenerates one paper artifact through a session-scoped
:class:`repro.harness.runner.Lab`, so runs are shared across benchmarks
(Figure 1 reuses Table 1's BFS runs, etc.).  The artifact text is printed
to the terminal and archived under ``benchmarks/out/`` for EXPERIMENTS.md.

Environment knobs:

* ``REPRO_BENCH_SIZE`` — dataset size preset (``tiny``/``small``/``default``;
  default ``small``).  ``default`` gives the most paper-faithful shapes
  (graphs large relative to the worker pool) at a few minutes of wall time.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.runner import Lab

OUT_DIR = Path(__file__).parent / "out"


def _bench_size() -> str:
    """Read and validate ``REPRO_BENCH_SIZE``, failing fast on typos.

    An invalid size used to surface deep inside the first graph build as
    a bare ValueError with no hint about where the string came from; a
    long benchmark session would die minutes in.  Validate up front and
    name the knob and the accepted values.
    """
    from repro.graph.datasets import SIZES

    size = os.environ.get("REPRO_BENCH_SIZE", "small")
    if size not in SIZES:
        raise pytest.UsageError(
            f"REPRO_BENCH_SIZE={size!r} is not a valid size preset; "
            f"accepted values: {', '.join(SIZES)}"
        )
    return size


@pytest.fixture(scope="session")
def bench_size() -> str:
    return _bench_size()


@pytest.fixture(scope="session")
def lab() -> Lab:
    return Lab(size=_bench_size())


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """Print an artifact and archive it under benchmarks/out/<name>.txt."""

    def _save(name: str, text: str) -> None:
        print()
        print(text)
        (artifact_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _save
