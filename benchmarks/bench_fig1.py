"""Figure 1 — BFS normalized throughput vs. timeline.

The paper plots four curves (Gunrock BSP + three Atos variants) per
dataset; the Atos curves should compress the work into an early
high-throughput burst, while BSP on mesh graphs shows a long low
plateau (the small-frontier problem made visible).
"""

import numpy as np
import pytest

DATASETS = ["soc-LiveJournal1", "hollywood-2009", "road_usa", "roadNet-CA"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig1(benchmark, lab, save_artifact, dataset):
    fig = benchmark.pedantic(
        lambda: lab.format_figure("bfs", dataset), rounds=1, iterations=1
    )
    save_artifact(f"fig1_{dataset}", fig)


def test_fig1_atos_finishes_earlier_on_mesh(lab):
    """Persistent curves end (rates drop to zero) before BSP's on roads."""
    curves = dict(lab.figure("bfs", "road_usa", bins=50))
    bsp = curves["BSP"].rates
    atos = curves["persist-CTA"].rates

    def active_end(r: np.ndarray) -> int:
        nz = np.flatnonzero(r > 0)
        return int(nz[-1]) if nz.size else 0

    assert active_end(atos) < active_end(bsp)
