"""Section 3.1 related-work claim: speculation vs. unordered execution.

The paper contrasts its relaxed (speculative) Dijkstra with Bellman-Ford:
"Speculative Dijkstra's workload is within a small constant factor of that
of BSP Dijkstra, which is #edges ... much smaller than Bellman-Ford's
workload of diameter x #edges."  This bench measures both workloads on a
weighted road mesh where the contrast is starkest.
"""

from repro.analysis.tables import format_table
from repro.apps import delta_sssp, sssp
from repro.core.config import PERSIST_CTA


def test_speculation_vs_orderings(benchmark, lab, save_artifact):
    """Three points on the ordering spectrum: Bellman-Ford (unordered BSP),
    delta-stepping (bucket-ordered BSP), speculative Dijkstra (relaxed)."""
    graph = lab.graph("roadNet-CA")
    weights = sssp.random_weights(graph, low=1.0, high=25.0, seed=3)

    def measure():
        bf = sssp.run_bellman_ford(graph, weights=weights, spec=lab.spec)
        ds = delta_sssp.run_delta_stepping(graph, weights=weights, spec=lab.spec)
        spec_run = sssp.run_atos(graph, PERSIST_CTA, weights=weights, spec=lab.spec)
        for r in (bf, ds, spec_run):
            assert sssp.validate_distances(graph, weights, r.output), r.impl
        return bf, ds, spec_run

    bf, ds, spec_run = benchmark.pedantic(measure, rounds=1, iterations=1)
    e = graph.num_edges
    table = format_table(
        ["impl", "relaxations", "x |E|", "rounds", "runtime (ms)"],
        [
            ["bellman-ford", f"{bf.work_units:.0f}", f"{bf.work_units / e:.2f}", bf.iterations, f"{bf.elapsed_ms:.3f}"],
            [ds.impl, f"{ds.work_units:.0f}", f"{ds.work_units / e:.2f}", ds.iterations, f"{ds.elapsed_ms:.3f}"],
            ["speculative", f"{spec_run.work_units:.0f}", f"{spec_run.work_units / e:.2f}", 1, f"{spec_run.elapsed_ms:.3f}"],
        ],
        title="Section 3.1 — SSSP workload: ordering spectrum",
    )
    save_artifact("related_work_sssp", table)
    # the paper's claim: speculation does no more work than unordered BSP
    assert spec_run.work_units <= bf.work_units * 1.05
    # and delta-stepping's ordering keeps it at least as work-efficient
    # as fully-unordered Bellman-Ford
    assert ds.work_units <= bf.work_units * 1.05
