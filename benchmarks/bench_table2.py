"""Table 2 — dataset summary (vertices, edges, diameter, degree stats).

The stand-ins' stats are reported next to the paper's originals; the test
asserts the two structural axes the analysis depends on (degree skew on the
scale-free trio, diameter/low-degree on the road pair).
"""

from repro.graph.datasets import SCALE_FREE_KEYS


def test_table2(benchmark, lab, save_artifact):
    table = benchmark.pedantic(lab.format_table2, rounds=1, iterations=1)
    save_artifact("table2", table)
    rows = lab.table2()
    for key, s in zip(
        ("soc-LiveJournal1", "hollywood-2009", "indochina-2004", "road_usa", "roadNet-CA"),
        rows,
    ):
        if key in SCALE_FREE_KEYS:
            assert s.graph_type == "scale-free", key
            assert s.max_out_degree > 10 * s.avg_degree, key
        else:
            assert s.graph_type == "mesh-like", key
            assert s.diameter > 25, key
