"""Section 6.5 — kernel strategy: persistent vs. discrete.

The paper's claims:

* the persistent/discrete gap is largest for BFS on mesh graphs (many
  small kernel launches at high diameter);
* on id-permuted indochina-2004 coloring, the persistent variant is ~4.3x
  faster than the discrete one.

This repo's adaptive extension rides along: on both workloads the hybrid
policy (discrete while wide, persistent once narrow) must track the better
pure strategy — the same ≤1.05x acceptance bound as
``tests/test_equivalence.py``, here reported as benchmark artifacts.
"""

from repro.analysis.tables import format_table


def test_kernel_strategy_mesh_bfs(benchmark, lab, save_artifact):
    def gaps():
        rows = []
        for ds in ("road_usa", "roadNet-CA", "soc-LiveJournal1"):
            p = lab.run("bfs", ds, "persist-CTA")
            d = lab.run("bfs", ds, "discrete-CTA")
            h = lab.run("bfs", ds, "hybrid-CTA")
            rows.append([
                ds,
                f"{p.elapsed_ms:.3f}",
                f"{d.elapsed_ms:.3f}",
                f"{h.elapsed_ms:.3f}",
                f"{d.elapsed_ns / p.elapsed_ns:.2f}",
                f"{h.elapsed_ns / min(p.elapsed_ns, d.elapsed_ns):.2f}",
            ])
        return format_table(
            ["Dataset", "persistent (ms)", "discrete (ms)", "hybrid (ms)",
             "persist adv.", "hybrid vs best"],
            rows,
            title="Section 6.5 — BFS kernel-strategy gap (persist/discrete/hybrid CTA)",
        )

    table = benchmark.pedantic(gaps, rounds=1, iterations=1)
    save_artifact("kernel_strategy_bfs", table)

    # the gap on meshes exceeds the gap on scale-free graphs
    def gap(ds):
        p = lab.run("bfs", ds, "persist-CTA")
        d = lab.run("bfs", ds, "discrete-CTA")
        return d.elapsed_ns / p.elapsed_ns

    assert gap("road_usa") > gap("soc-LiveJournal1")

    # the adaptive policy tracks the better pure strategy on the mesh
    p = lab.run("bfs", "road_usa", "persist-CTA")
    d = lab.run("bfs", "road_usa", "discrete-CTA")
    h = lab.run("bfs", "road_usa", "hybrid-CTA")
    assert h.elapsed_ns <= 1.05 * min(p.elapsed_ns, d.elapsed_ns)


def test_kernel_strategy_permuted_coloring(benchmark, lab, save_artifact):
    """Paper: persistent 4.3x faster than discrete on permuted indochina."""

    def measure():
        p = lab.run("coloring", "indochina-2004", "persist-warp", permuted=True)
        d = lab.run("coloring", "indochina-2004", "discrete-warp", permuted=True)
        return d.elapsed_ns / p.elapsed_ns

    advantage = benchmark.pedantic(measure, rounds=1, iterations=1)
    p = lab.run("coloring", "indochina-2004", "persist-warp", permuted=True)
    d = lab.run("coloring", "indochina-2004", "discrete-warp", permuted=True)
    h = lab.run("coloring", "indochina-2004", "hybrid-warp", permuted=True)
    hybrid_ratio = h.elapsed_ns / min(p.elapsed_ns, d.elapsed_ns)
    save_artifact(
        "kernel_strategy_coloring",
        "Section 6.5 — permuted indochina-2004 coloring\n"
        f"persistent advantage over discrete: x{advantage:.2f} (paper: x4.3)\n"
        f"hybrid-warp vs best pure: x{hybrid_ratio:.2f} (bound: 1.05)",
    )
    assert advantage > 1.3
    assert hybrid_ratio <= 1.05
