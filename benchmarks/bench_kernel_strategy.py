"""Section 6.5 — kernel strategy: persistent vs. discrete.

The paper's claims:

* the persistent/discrete gap is largest for BFS on mesh graphs (many
  small kernel launches at high diameter);
* on id-permuted indochina-2004 coloring, the persistent variant is ~4.3x
  faster than the discrete one.
"""

from repro.analysis.tables import format_table


def test_kernel_strategy_mesh_bfs(benchmark, lab, save_artifact):
    def gaps():
        rows = []
        for ds in ("road_usa", "roadNet-CA", "soc-LiveJournal1"):
            p = lab.run("bfs", ds, "persist-CTA")
            d = lab.run("bfs", ds, "discrete-CTA")
            rows.append([ds, f"{p.elapsed_ms:.3f}", f"{d.elapsed_ms:.3f}", f"{d.elapsed_ns / p.elapsed_ns:.2f}"])
        return format_table(
            ["Dataset", "persistent (ms)", "discrete (ms)", "persist adv."],
            rows,
            title="Section 6.5 — BFS kernel-strategy gap (persist-CTA vs discrete-CTA)",
        )

    table = benchmark.pedantic(gaps, rounds=1, iterations=1)
    save_artifact("kernel_strategy_bfs", table)

    # the gap on meshes exceeds the gap on scale-free graphs
    def gap(ds):
        p = lab.run("bfs", ds, "persist-CTA")
        d = lab.run("bfs", ds, "discrete-CTA")
        return d.elapsed_ns / p.elapsed_ns

    assert gap("road_usa") > gap("soc-LiveJournal1")


def test_kernel_strategy_permuted_coloring(benchmark, lab, save_artifact):
    """Paper: persistent 4.3x faster than discrete on permuted indochina."""

    def measure():
        p = lab.run("coloring", "indochina-2004", "persist-warp", permuted=True)
        d = lab.run("coloring", "indochina-2004", "discrete-warp", permuted=True)
        return d.elapsed_ns / p.elapsed_ns

    advantage = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_artifact(
        "kernel_strategy_coloring",
        "Section 6.5 — permuted indochina-2004 coloring\n"
        f"persistent advantage over discrete: x{advantage:.2f} (paper: x4.3)",
    )
    assert advantage > 1.3
