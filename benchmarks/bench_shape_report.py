"""The suite-level shape verdict: every Table 1/4 cell vs. the paper.

This is the reproduction's bottom line.  For each cell the paper published,
the report pairs the paper's value with ours and judges:

* ``match`` — same winner, within 2x in magnitude;
* ``direction`` — same winner (or a near-tie), magnitude off;
* ``miss`` — the winner flipped.

The assertion: a large majority of cells agree on the winner.
"""

from repro.harness.report import compare_table1, compare_table4, shape_report


def test_shape_report(benchmark, lab, save_artifact):
    report = benchmark.pedantic(
        lambda: shape_report(lab), rounds=1, iterations=1
    )
    save_artifact("shape_report", report)


def test_majority_of_cells_agree_on_winner(lab):
    verdicts = []
    for app in ("bfs", "pagerank", "coloring"):
        verdicts += compare_table1(lab, app)
        verdicts += compare_table4(lab, app)
    agreeing = sum(v.verdict in ("match", "direction") for v in verdicts)
    assert agreeing / len(verdicts) >= 0.7, (
        f"only {agreeing}/{len(verdicts)} cells agree with the paper"
    )


def test_headline_cells_match(lab):
    """The cells the paper's abstract leans on must at least agree in
    direction."""
    t1 = {(v.dataset, v.impl): v for v in compare_table1(lab, "bfs")}
    # BFS: persist-CTA wins big on both road networks
    assert t1[("road_usa", "persist-CTA")].verdict != "miss"
    assert t1[("roadNet-CA", "persist-CTA")].verdict != "miss"
    gc = {(v.dataset, v.impl): v for v in compare_table1(lab, "coloring")}
    # coloring: persist-warp wins on scale-free, loses on road_usa
    assert gc[("soc-LiveJournal1", "persist-warp")].verdict != "miss"
    assert gc[("road_usa", "persist-warp")].verdict != "miss"
