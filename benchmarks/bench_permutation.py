"""Section 6.3 — the vertex-id permutation study for graph coloring.

Paper (ms, before -> after random id permutation):

=============  =================  ============  ==========
impl           soc-LiveJournal1   hollywood     indochina
=============  =================  ============  ==========
discrete-warp  63 -> 31           274 -> 26     2073 -> 222
persist-CTA    36 -> 21           59 -> 28      184 -> 50
BSP            96 -> 89           77 -> 61      673 -> 485
=============  =================  ============  ==========

The shape: permutation dramatically helps the discrete variants (whose
launch-wave staleness collides id-adjacent neighbors), helps persist-CTA
moderately (intra-fetch batches), and helps BSP only modestly.
"""

from repro.harness.experiments import SCALE_FREE


def test_permutation_study(benchmark, lab, save_artifact):
    table = benchmark.pedantic(
        lambda: lab.format_permutation_study(SCALE_FREE), rounds=1, iterations=1
    )
    save_artifact("permutation_study", table)


def test_permutation_helps_discrete_most(lab):
    rows = lab.permutation_study(("soc-LiveJournal1", "indochina-2004"))
    for row in rows:
        d_before, d_after = row["discrete-warp"]
        b_before, b_after = row["BSP"]
        # discrete improves
        assert d_after < d_before, row["dataset"]
        # and by a larger factor than BSP improves
        assert d_before / d_after > b_before / b_after, row["dataset"]


def test_permutation_drops_overwork_below_threshold(lab):
    """Paper: after permutation, extra work < 1.5x for ALL implementations."""
    from repro.analysis.overwork import coloring_workload_ratio

    for ds in ("soc-LiveJournal1", "indochina-2004"):
        n = lab.graph(ds, permuted=True).num_vertices
        for impl in ("discrete-warp", "persist-CTA", "persist-warp", "BSP"):
            res = lab.run("coloring", ds, impl, permuted=True)
            assert coloring_workload_ratio(res, n) < 1.6, (ds, impl)
