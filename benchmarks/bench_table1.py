"""Table 1 — runtime and speedup of BSP vs. three Atos variants.

Paper reference (V100, full-size datasets):

* BFS geomean speedup 3.44x, peak 12.8x (road graphs, persist-CTA);
* PageRank geomean 2.1x, peak 3.2x;
* Graph coloring geomean 2.77x, peak 9.08x (persist-warp on scale-free).

The benchmark regenerates all three application sub-tables on the synthetic
stand-ins and archives them under ``benchmarks/out/``.
"""

import pytest


@pytest.mark.parametrize("app", ["bfs", "pagerank", "coloring"])
def test_table1(benchmark, lab, save_artifact, app):
    table = benchmark.pedantic(
        lambda: lab.format_table1(app), rounds=1, iterations=1
    )
    save_artifact(f"table1_{app}", table)
    rows = lab.table1(app)
    # sanity: every row produced a positive runtime for every implementation
    for row in rows:
        assert row.bsp_ms > 0
        assert all(ms > 0 for ms in row.atos_ms.values())


def test_table1_headline_bfs_mesh_speedup(benchmark, lab):
    """The paper's strongest BFS claim: Atos wins big on road networks."""

    def best_mesh_speedup() -> float:
        rows = lab.table1("bfs", ("road_usa", "roadNet-CA"))
        return max(max(r.speedups.values()) for r in rows)

    speedup = benchmark.pedantic(best_mesh_speedup, rounds=1, iterations=1)
    assert speedup > 1.5


def test_table1_headline_coloring_scale_free(benchmark, lab):
    """persist-warp dominates BSP coloring on scale-free graphs."""

    def persist_warp_speedup() -> float:
        rows = lab.table1("coloring", ("soc-LiveJournal1",))
        return rows[0].speedups["persist-warp"]

    speedup = benchmark.pedantic(persist_warp_speedup, rounds=1, iterations=1)
    assert speedup > 1.5
