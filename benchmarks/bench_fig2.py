"""Figure 2 — PageRank normalized throughput vs. timeline."""

import pytest

DATASETS = ["hollywood-2009", "indochina-2004", "road_usa", "roadNet-CA"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig2(benchmark, lab, save_artifact, dataset):
    fig = benchmark.pedantic(
        lambda: lab.format_figure("pagerank", dataset), rounds=1, iterations=1
    )
    save_artifact(f"fig2_{dataset}", fig)


def test_fig2_curves_cover_all_impls(lab):
    curves = lab.figure("pagerank", "roadNet-CA")
    names = {name for name, _ in curves}
    assert names == {"BSP", "persist-warp", "persist-CTA", "discrete-CTA"}


def test_fig2_atos_compacts_workload(lab):
    """The paper: Atos 'compacts the workload and processes it with higher
    normalized throughput' — its peak beats BSP's."""
    curves = dict(lab.figure("pagerank", "roadNet-CA", bins=50))
    assert curves["persist-CTA"].peak() > curves["BSP"].peak()
