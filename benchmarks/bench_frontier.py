"""Throughput vs. frontier size — the Gunrock analysis the paper cites [24].

The small-frontier problem's root cause, measured: below some frontier
size the fixed per-kernel costs dominate and throughput collapses.  On
scale-free graphs the BFS frontier trajectory blows past the saturation
point within a couple of levels; on road networks it *never* reaches it.
"""

from repro.analysis.frontier import (
    frontier_series,
    saturation_point,
    throughput_vs_frontier,
)
from repro.analysis.tables import format_table


def test_throughput_vs_frontier_curve(benchmark, lab, save_artifact):
    def curve_table():
        rows = []
        for ds in ("soc-LiveJournal1", "road_usa"):
            graph = lab.graph(ds)
            samples = frontier_series(graph, spec=lab.spec)
            for size, rate in throughput_vs_frontier(samples, bins=8):
                rows.append([ds, f"{size:.0f}", f"{rate:.4f}"])
        return format_table(
            ["Dataset", "frontier size (bin)", "throughput (edges/ns)"],
            rows,
            title="[24]-style analysis — BSP BFS throughput vs frontier size",
        )

    table = benchmark.pedantic(curve_table, rounds=1, iterations=1)
    save_artifact("frontier_throughput", table)


def test_road_never_saturates(lab):
    """Road-network BFS stays in the small-frontier regime throughout."""
    sf = frontier_series(lab.graph("soc-LiveJournal1"), spec=lab.spec)
    road = frontier_series(lab.graph("road_usa"), spec=lab.spec)
    sf_curve = throughput_vs_frontier(sf)
    road_curve = throughput_vs_frontier(road)
    # the scale-free run reaches a far higher peak rate than the road run
    assert max(r for _, r in sf_curve) > 3 * max(r for _, r in road_curve)


def test_saturation_point_is_large(lab):
    """Filling the machine takes hundreds of frontier vertices."""
    samples = frontier_series(lab.graph("soc-LiveJournal1"), spec=lab.spec)
    point = saturation_point(samples, fraction=0.5)
    assert point is not None and point > 10
