"""Figure 4 — runtime heatmap over (worker size, fetch size).

The paper sweeps CTA widths against FETCH_SIZE for BFS and PageRank on
soc-LiveJournal (scale-free) and road_usa (mesh); only the lower triangle
(fetch <= worker width) is valid.  The qualitative claims: the optimum is
in the interior (mixed task/data parallelism beats either extreme), and
the optimal point differs between graph classes.
"""

import numpy as np
import pytest

WORKERS = (32, 64, 128, 256, 512)
FETCHES = (1, 4, 16, 64, 256)


@pytest.mark.parametrize("app", ["bfs", "pagerank"])
@pytest.mark.parametrize("dataset", ["soc-LiveJournal1", "road_usa"])
def test_fig4(benchmark, lab, save_artifact, app, dataset):
    table = benchmark.pedantic(
        lambda: lab.format_sweep(
            app, dataset, worker_sizes=WORKERS, fetch_sizes=FETCHES
        ),
        rounds=1,
        iterations=1,
    )
    save_artifact(f"fig4_{app}_{dataset}", table)


def test_fig4_triangle_validity(lab):
    grid = lab.sweep("bfs", "roadNet-CA", worker_sizes=WORKERS, fetch_sizes=FETCHES)
    for i, w in enumerate(WORKERS):
        for j, f in enumerate(FETCHES):
            if f > w:
                assert np.isnan(grid[i, j])
            else:
                assert grid[i, j] > 0


def test_fig4_fetch_size_matters(lab):
    """Runtime is not flat across fetch sizes (the trade-off is real)."""
    grid = lab.sweep("bfs", "road_usa", worker_sizes=(256,), fetch_sizes=(1, 16, 256))
    valid = grid[0][~np.isnan(grid[0])]
    assert valid.max() > 1.05 * valid.min()
