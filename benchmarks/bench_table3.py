"""Table 3 — BSP performance challenges per (application, graph class).

Paper's table:

==========  ===============  ===============  ==============================
class       BFS              PageRank         Graph Coloring
==========  ===============  ===============  ==============================
scale-free  Load Imbalance   Load Imbalance   Load Imbalance + Small Frontier
mesh-like   Small Frontier   None             None
==========  ===============  ===============  ==============================

Ours is *derived* from measured BSP traces + degree statistics rather than
transcribed, so the test asserts the two anchor cells the paper's analysis
leans on hardest.
"""


def test_table3(benchmark, lab, save_artifact):
    table = benchmark.pedantic(lab.format_table3, rounds=1, iterations=1)
    save_artifact("table3", table)
    reports = {(r.app, r.dataset): r for r in lab.table3()}
    # anchor 1: BFS on road graphs exhibits the small-frontier problem
    assert reports[("bfs", "road_usa-sim")].small_frontier
    # anchor 2: scale-free graphs are load-imbalanced for every app
    for app in ("bfs", "pagerank", "coloring"):
        assert reports[(app, "soc-LiveJournal1-sim")].load_imbalance
    # anchor 3: meshes are never load-imbalanced
    for app in ("bfs", "pagerank", "coloring"):
        assert not reports[(app, "roadNet-CA-sim")].load_imbalance
