"""Ablation benches for design decisions DESIGN.md calls out.

These go beyond the paper's tables: they measure the model knobs the paper
asserts qualitatively.

* **queue scaling** — the paper claims one shared queue is "fast enough";
  we measure runtime and contention wait across 1..8 physical queues.
* **worker size extremes** — thread vs warp vs CTA workers on an
  imbalanced graph (Section 3.2's false-dependency argument).
* **machine scaling** — the same workload on the scaled vs full V100 shape
  (documents what the default spec choice does).
"""

from repro.analysis.tables import format_table
from repro.apps import bfs
from repro.core.config import PERSIST_CTA, PERSIST_WARP, AtosConfig
from repro.sim.spec import FULL_V100_SPEC


def test_queue_scaling(benchmark, lab, save_artifact):
    graph = lab.graph("soc-LiveJournal1")

    def sweep():
        rows = []
        for nq in (1, 2, 4, 8):
            cfg = PERSIST_WARP.with_overrides(num_queues=nq, name=f"persist-warp-q{nq}")
            res = bfs.run_atos(graph, cfg, spec=lab.spec)
            rows.append(
                [
                    nq,
                    f"{res.elapsed_ms:.3f}",
                    f"{res.extra['queue_contention_ns'] / 1e3:.1f}",
                ]
            )
        return format_table(
            ["queues", "runtime (ms)", "contention wait (us)"],
            rows,
            title="Ablation — shared-queue count (BFS, soc-LiveJournal1-sim)",
        )

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact("ablation_queue_scaling", table)

    # the single-queue claim: 1 queue is within 25% of the best
    times = {}
    for nq in (1, 8):
        cfg = PERSIST_WARP.with_overrides(num_queues=nq, name=f"persist-warp-q{nq}")
        times[nq] = bfs.run_atos(graph, cfg, spec=lab.spec).elapsed_ns
    assert times[1] <= 1.25 * times[8]


def test_worker_size_extremes(benchmark, lab, save_artifact):
    graph = lab.graph("soc-LiveJournal1")
    configs = [
        AtosConfig(worker_threads=1, fetch_size=1, name="persist-thread"),
        PERSIST_WARP,
        PERSIST_CTA,
    ]

    def sweep():
        rows = []
        for cfg in configs:
            res = bfs.run_atos(graph, cfg, spec=lab.spec)
            rows.append([cfg.name, f"{res.elapsed_ms:.3f}", res.extra["worker_slots"]])
        return format_table(
            ["worker", "runtime (ms)", "slots"],
            rows,
            title="Ablation — worker granularity (BFS, scale-free)",
        )

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact("ablation_worker_size", table)

    # thread workers serialize high-degree vertices: worst of the three
    thread_t = bfs.run_atos(graph, configs[0], spec=lab.spec).elapsed_ns
    cta_t = bfs.run_atos(graph, PERSIST_CTA, spec=lab.spec).elapsed_ns
    assert cta_t < thread_t


def test_direction_optimized_baseline(benchmark, lab, save_artifact):
    """A stronger Gunrock stand-in: Beamer push/pull BFS.  On scale-free
    graphs the pull phase slashes the baseline's edge work, narrowing (or
    erasing) the Atos advantage — an honest upper bound on the baseline."""
    graph = lab.graph("soc-LiveJournal1")

    def measure():
        plain = bfs.run_bsp(graph, spec=lab.spec)
        do = bfs.run_bsp(graph, spec=lab.spec, direction_optimized=True)
        atos = bfs.run_atos(graph, PERSIST_CTA, spec=lab.spec)
        return format_table(
            ["impl", "runtime (ms)", "edge work"],
            [
                ["BSP (push only)", f"{plain.elapsed_ms:.3f}", f"{plain.work_units:.0f}"],
                ["BSP direction-opt", f"{do.elapsed_ms:.3f}", f"{do.work_units:.0f}"],
                ["persist-CTA", f"{atos.elapsed_ms:.3f}", f"{atos.work_units:.0f}"],
            ],
            title="Ablation — direction-optimized baseline (BFS, scale-free)",
        )

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_artifact("ablation_direction_optimized", table)

    do = bfs.run_bsp(graph, spec=lab.spec, direction_optimized=True)
    plain = bfs.run_bsp(graph, spec=lab.spec)
    assert do.work_units < plain.work_units


def test_shared_queue_vs_work_stealing(benchmark, lab, save_artifact):
    """The Section 1 claim, measured directly: a single shared queue
    'balances load more quickly than a distributed queue'."""
    graph = lab.graph("soc-LiveJournal1")
    steal_cfg = PERSIST_WARP.with_overrides(
        worklist="stealing", num_queues=8, name="persist-warp-steal"
    )

    def measure():
        shared = bfs.run_atos(graph, PERSIST_WARP, spec=lab.spec)
        steal = bfs.run_atos(graph, steal_cfg, spec=lab.spec)
        return format_table(
            ["worklist", "runtime (ms)", "contention wait (us)"],
            [
                ["single shared queue", f"{shared.elapsed_ms:.3f}", f"{shared.extra['queue_contention_ns'] / 1e3:.1f}"],
                ["work-stealing deques", f"{steal.elapsed_ms:.3f}", f"{steal.extra['queue_contention_ns'] / 1e3:.1f}"],
            ],
            title="Ablation — shared queue vs work stealing (BFS, scale-free)",
        )

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_artifact("ablation_worklist_organisation", table)

    shared_t = bfs.run_atos(graph, PERSIST_WARP, spec=lab.spec).elapsed_ns
    steal_t = bfs.run_atos(graph, steal_cfg, spec=lab.spec).elapsed_ns
    # shared must be at least competitive (the paper's design choice)
    assert shared_t <= steal_t * 1.2


def test_machine_scaling(benchmark, lab, save_artifact):
    """Same workload, scaled-V100 (default) vs full-V100 shape."""
    graph = lab.graph("roadNet-CA")

    def measure():
        scaled = bfs.run_atos(graph, PERSIST_CTA, spec=lab.spec)
        full = bfs.run_atos(graph, PERSIST_CTA, spec=FULL_V100_SPEC)
        return format_table(
            ["machine", "runtime (ms)", "worker slots"],
            [
                [lab.spec.name, f"{scaled.elapsed_ms:.3f}", scaled.extra["worker_slots"]],
                [FULL_V100_SPEC.name, f"{full.elapsed_ms:.3f}", full.extra["worker_slots"]],
            ],
            title="Ablation — machine scale (BFS, roadNet-CA-sim)",
        )

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_artifact("ablation_machine_scaling", table)
