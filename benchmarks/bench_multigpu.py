"""Multi-device scaling benchmark — the distributed-strategy payoff table.

Runs the device-count ladder (1 device / dist-2 / dist-4 / dist-4-pcie)
over two structurally opposite graphs and prints the shape table
EXPERIMENTS.md commits:

* **rmat14** (scale-free, symmetrized) — hubs create per-device backlog,
  so cross-device stealing fires and the extra devices pay off: runtime
  *drops* as devices are added, despite the interconnect cost on every
  stolen batch.
* **grid 64x64** (mesh) — no backlog to steal, but hash partitioning cuts
  most lattice edges, so every frontier expansion pays remote-push
  latency: runtime *degrades* with devices, and degrades harder on the
  slow PCIe interconnect.

Graph scales are fixed (not tied to ``REPRO_BENCH_SIZE``): the stealing
economics need per-device backlog — at rmat12 scale victims hold one or
two items and the steal gate never opens — so shrinking the graphs would
silently turn the scaling claim into noise.  rmat runs on the contiguous
partition (vertex locality leaves hub neighborhoods device-local, so
imbalance shows up as stealable backlog rather than remote pushes); the
mesh keeps the dist presets' default hash edge-cut, the no-locality
worst case.

Every cell runs with ``validate=True``: the answer oracle plus a live
InvariantMonitor with per-device and global queue conservation — the
table is only committed if the distributed runs are *correct*, not just
fast.
"""

from __future__ import annotations

import json

from repro.apps.common import run_app
from repro.core.config import CONFIGS, AtosConfig

CONFIG_LADDER = ("persist-CTA", "dist-2", "dist-4", "dist-4-pcie")

#: (graph key, app) cells — a traversal and a data/propagation app per
#: graph family, matching the Table 1 coverage style
CELLS = (
    ("rmat14", "bfs"),
    ("rmat14", "cc"),
    ("grid64", "bfs"),
    ("grid64", "coloring"),
)

#: partition override per graph family (None keeps the preset's hash cut)
PARTITIONS = {"rmat14": "contiguous", "grid64": None}


def _graphs():
    from repro.graph.generators import grid_mesh, rmat

    return {
        "rmat14": rmat(14, edge_factor=16, seed=1, name="rmat14").symmetrize(),
        "grid64": grid_mesh(64, 64, name="grid64"),
    }


def _ladder_config(name: str, partition: str | None) -> AtosConfig:
    cfg = CONFIGS[name]
    if partition is not None and cfg.devices > 1:
        cfg = cfg.with_overrides(partition=partition)
    return cfg


def _run_matrix() -> dict:
    graphs = _graphs()
    rows: dict[str, dict[str, dict]] = {}
    for graph_key, app in CELLS:
        graph = graphs[graph_key]
        partition = PARTITIONS[graph_key]
        row: dict[str, dict] = {}
        for cfg_name in CONFIG_LADDER:
            cfg = _ladder_config(cfg_name, partition)
            res = run_app(app, graph, cfg, validate=True)
            # the device block only exists in `extra` on multi-device runs
            row[cfg_name] = {
                "ms": res.elapsed_ns / 1e6,
                "devices": int(res.extra.get("devices", 1)),
                "remote_steals": int(res.extra.get("remote_steals", 0)),
                "remote_items": int(res.extra.get("remote_items", 0)),
                "comm_ms": float(res.extra.get("comm_ns", 0.0)) / 1e6,
            }
        rows[f"{graph_key}/{app}"] = row
    return rows


def _format_table(rows: dict) -> str:
    lines = [
        "multi-device ladder: simulated ms, (rs=remote steals) where > 0",
        f"{'cell':<16s}" + "".join(f"{c:>16s}" for c in CONFIG_LADDER),
    ]
    for cell, row in rows.items():
        cols = []
        for cfg_name in CONFIG_LADDER:
            r = row[cfg_name]
            tag = f" rs={r['remote_steals']}" if r["remote_steals"] else ""
            cols.append(f"{r['ms']:.3f}{tag}".rjust(16))
        lines.append(f"{cell:<16s}" + "".join(cols))
    lines.append("")
    lines.append(
        "shape: rmat14 speeds up with devices (stealing absorbs hub "
        "imbalance); grid64 degrades (hash cut pays remote pushes), "
        "hardest on PCIe."
    )
    return "\n".join(lines)


def test_multigpu_scaling(benchmark, artifact_dir, save_artifact):
    rows = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)
    assert set(rows) == {f"{g}/{a}" for g, a in CELLS}

    rmat_bfs = rows["rmat14/bfs"]
    grid_bfs = rows["grid64/bfs"]

    # every distributed cell actually ran distributed
    for row in rows.values():
        assert row["persist-CTA"]["devices"] == 1
        assert row["dist-2"]["devices"] == 2
        assert row["dist-4"]["devices"] == 4
        assert row["dist-4-pcie"]["devices"] == 4

    # the paper shape, as hard gates:
    # scale-free work scales — 4 devices beat 1, via *real* steals
    assert rmat_bfs["dist-4"]["ms"] < rmat_bfs["persist-CTA"]["ms"]
    assert rows["rmat14/cc"]["dist-4"]["ms"] < rows["rmat14/cc"]["persist-CTA"]["ms"]
    assert rmat_bfs["dist-4"]["remote_steals"] > 0
    # mesh communication punishes — 4 devices lose to 1, PCIe loses worse
    assert grid_bfs["dist-4"]["ms"] > grid_bfs["persist-CTA"]["ms"]
    assert grid_bfs["dist-4-pcie"]["ms"] > grid_bfs["dist-4"]["ms"]
    # communication is visible, not free: NVLink <= PCIe comm cost on the mesh
    assert grid_bfs["dist-4-pcie"]["comm_ms"] > 0

    save_artifact("bench_multigpu", _format_table(rows))
    (artifact_dir / "BENCH_multigpu.json").write_text(
        json.dumps(rows, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
