"""Incremental vs. full-recompute vs. BSP: the dynamic-graph crossover.

The arXiv Atos framing: when the graph mutates in batches, a task-parallel
scheduler can *repair* from the previous fixpoint instead of recomputing.
This ladder measures, per edit epoch on R-MAT graphs, three ways to get
the epoch's answer:

* **incremental** — the ``*-inc`` kernel rebased onto the new snapshot
  (:func:`repro.apps.dynamic.replay_app`, per-epoch elapsed);
* **recompute** — the static Atos kernel from scratch on the snapshot;
* **BSP** — the bulk-synchronous baseline from scratch on the snapshot.

The ladder climbs the edit-batch size: small batches are where repair
shines (the invalid region is tiny), and the advantage narrows as the
batch grows toward "everything changed" — the crossover.  Honest negative
included: CC repair sits at parity on R-MAT, because deleting any edge of
the giant component resets (and re-solves) the whole component.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.apps.common import run_app
from repro.apps.dynamic import replay_app
from repro.core.config import CONFIGS
from repro.graph.generators import rmat

#: the ladder: edit batches per epoch, small -> large
EDIT_LADDER = ("4x16@7", "4x64@7", "4x256@7")
APPS = (("bfs-inc", "bfs", {"source": 0}), ("cc-inc", "cc", {}), ("pagerank-inc", "pagerank", {}))


def _rmat_preset(scale: int, edge_factor: int):
    g = rmat(scale, edge_factor=edge_factor, seed=7, name=f"rmat{scale}")
    return g if g.is_symmetric() else g.symmetrize()


def _ladder_cell(app, static_app, graph, edits, **params):
    """Summed repair-epoch elapsed for the three strategies (sim ns)."""
    dres = replay_app(app, graph, CONFIGS["persist-CTA"], edits, **params)
    inc = atos = bsp = 0.0
    for e in dres.epochs[1:]:  # epoch 0 is the same cold solve for all three
        inc += e.result.elapsed_ns
        atos += run_app(static_app, e.graph, CONFIGS["persist-CTA"], **params).elapsed_ns
        bsp += run_app(static_app, e.graph, CONFIGS["BSP"], **params).elapsed_ns
    return inc, atos, bsp


def test_dynamic_crossover_ladder(benchmark, save_artifact):
    graph = _rmat_preset(10, 8)

    def ladder_table():
        rows = []
        for app, static_app, params in APPS:
            for edits in EDIT_LADDER:
                inc, atos, bsp = _ladder_cell(app, static_app, graph, edits, **params)
                rows.append([
                    app, edits,
                    f"{inc / 1e3:.1f}", f"{atos / 1e3:.1f}", f"{bsp / 1e3:.1f}",
                    f"{atos / inc:.2f}x", f"{bsp / atos:.2f}x",
                ])
        return format_table(
            ["App", "edits", "incremental (us)", "recompute (us)", "BSP (us)",
             "repair speedup", "BSP vs recompute"],
            rows,
            title=f"Dynamic crossover — {graph.name}, repair epochs summed",
        )

    table = benchmark.pedantic(ladder_table, rounds=1, iterations=1)
    save_artifact("dynamic_crossover", table)


def test_incremental_beats_recompute_where_bsp_does_not():
    """The acceptance cell: on an R-MAT preset, repair beats a from-scratch
    Atos recompute while the BSP baseline loses to that same recompute."""
    graph = _rmat_preset(10, 8)
    inc, atos, bsp = _ladder_cell("bfs-inc", "bfs", graph, "4x16@7", source=0)
    assert inc < atos, f"repair {inc:.0f} ns did not beat recompute {atos:.0f} ns"
    assert bsp > atos, f"BSP {bsp:.0f} ns unexpectedly beat Atos recompute {atos:.0f} ns"


def test_repair_advantage_shrinks_with_batch_size():
    """The crossover direction: bigger edit batches erode the repair win."""
    graph = _rmat_preset(10, 8)
    ratios = []
    for edits in EDIT_LADDER:
        inc, atos, _ = _ladder_cell("bfs-inc", "bfs", graph, edits, source=0)
        ratios.append(atos / inc)
    assert ratios[0] > ratios[-1] > 1.0, ratios


def test_pagerank_repair_wins_and_cc_sits_at_parity():
    """PageRank's invariant-restoring rebase is the biggest winner; CC is
    the honest negative — component-local reset means R-MAT deletes (which
    almost always land in the giant component) re-solve nearly everything."""
    graph = _rmat_preset(8, 6)
    pr_inc, pr_atos, _ = _ladder_cell("pagerank-inc", "pagerank", graph, "4x16@7")
    assert pr_inc < 0.8 * pr_atos
    cc_inc, cc_atos, cc_bsp = _ladder_cell("cc-inc", "cc", graph, "4x16@7")
    assert 0.8 * cc_atos < cc_inc < 1.2 * cc_atos  # parity, not a win
    assert cc_inc < cc_bsp  # still far ahead of per-epoch BSP
