"""Table 4 — workload ratios (the overwork cost of relaxing barriers).

Paper reference points:

* BFS: warp overwork 1.28-3.56x, CTA near 1.0x;
* PageRank: ratios 0.72-1.18 (async often does *less* work);
* Coloring (vs |V|): persist-warp ~1.0, discrete-warp 1.41-37.3.
"""

import pytest


@pytest.mark.parametrize("app", ["bfs", "pagerank", "coloring"])
def test_table4(benchmark, lab, save_artifact, app):
    table = benchmark.pedantic(
        lambda: lab.format_table4(app), rounds=1, iterations=1
    )
    save_artifact(f"table4_{app}", table)


def test_table4_bfs_ratios_at_least_one(lab):
    """Speculative BFS can only add edge traversals."""
    for row in lab.table4("bfs"):
        for impl, ratio in row.items():
            if impl != "dataset":
                assert ratio >= 0.99, (row["dataset"], impl)


def test_table4_pagerank_async_not_wasteful(lab):
    """Naturally unordered: async PageRank work stays near or below BSP."""
    for row in lab.table4("pagerank", ("soc-LiveJournal1", "roadNet-CA")):
        assert row["persist-warp"] <= 1.2
        assert row["persist-CTA"] <= 1.2


def test_table4_coloring_ordering(lab):
    """persist-warp has the least coloring overwork; discrete-warp the most
    (the Section 6.3 ordering)."""
    for row in lab.table4("coloring", ("soc-LiveJournal1", "indochina-2004")):
        assert row["persist-warp"] <= row["discrete-warp"] + 1e-9, row["dataset"]
