"""Service load benchmark — the ``BENCH_service.json`` scenario as a bench.

Boots an in-process broker, runs the 6-cell mixed-tenant job mix cold,
then storms it with >=1000 concurrent warm clients spread over 8
tenants, and asserts the PR's acceptance bars as hard gates:

* every response digest-identical to a direct serial
  :func:`repro.service.jobs.execute_spec` (``digest_match_ratio == 1.0``);
* warm (content-addressed) hits at least **100x** faster than cold
  executions;
* a nonzero cache hit ratio under the storm.

The committed repo-root ``BENCH_service.json`` is the small-size
baseline; when present, this scenario also diffs against it through
``repro.metrics.diff`` (calibration-normalised), exactly like the CI
``service-smoke`` job does via ``python -m repro service-bench
--check-against``.  Refresh the baseline with::

    PYTHONPATH=src python -m repro service-bench --out BENCH_service.json
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.metrics.diff import diff_docs
from repro.service.bench import (
    format_service_report,
    load_service_report,
    run_service_bench,
    validate_service_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
COMMITTED = REPO_ROOT / "BENCH_service.json"

#: the acceptance bar: a warm hit must beat a cold execution by this much
WARM_SPEEDUP_FLOOR = 100.0
#: the load bar: the warm storm must be at least this many clients
MIN_CLIENTS = 1000


def test_service_load(benchmark, bench_size, artifact_dir, save_artifact):
    doc = benchmark.pedantic(
        lambda: run_service_bench(size=bench_size, clients=MIN_CLIENTS),
        rounds=1,
        iterations=1,
    )
    problems = validate_service_report(doc)
    assert not problems, problems

    assert doc["clients"] >= MIN_CLIENTS
    assert doc["digest_match_ratio"] == 1.0, (
        "every service response must be digest-identical to the serial reference"
    )
    assert doc["warm_speedup"] >= WARM_SPEEDUP_FLOOR, (
        f"warm hits only {doc['warm_speedup']:.1f}x faster than cold "
        f"(need >= {WARM_SPEEDUP_FLOOR:.0f}x)"
    )
    assert doc["hit_ratio"] > 0.0
    assert doc["throughput_rps"] > 0.0
    assert doc["warm_ms_p50"] <= doc["warm_ms_p99"]
    assert doc["distinct_jobs"] == 6

    save_artifact("bench_service", format_service_report(doc))
    (artifact_dir / "BENCH_service.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    if COMMITTED.exists() and doc["size"] == "small":
        report = diff_docs(
            load_service_report(COMMITTED),
            doc,
            base_label="BENCH_service.json (committed)",
            new_label="this run",
        )
        save_artifact("bench_service_diff", report.format())
        assert report.ok, report.format()
