"""Sensitivity of the small-frontier advantage to kernel-launch cost.

The paper's guideline (2) — "if the application exhibits the small frontier
problem, it should be run with a persistent kernel" — rests on the fixed
per-kernel cost.  This ablation sweeps ``kernel_launch_ns`` and measures
the BSP-vs-persistent gap on a road network: as launches get cheaper the
gap must close, and with launches near zero the two models converge to the
same bandwidth-bound floor.  (No figure in the paper corresponds to this;
it is the model-level test of the paper's causal story.)
"""

from repro.analysis.tables import format_table
from repro.apps import bfs
from repro.core.config import PERSIST_CTA

LAUNCH_COSTS = (100.0, 1000.0, 5000.0, 20000.0)


def test_launch_cost_sensitivity(benchmark, lab, save_artifact):
    graph = lab.graph("road_usa")

    def sweep():
        rows = []
        for launch in LAUNCH_COSTS:
            spec = lab.spec.scaled(kernel_launch_ns=launch, barrier_ns=launch * 0.4)
            bsp = bfs.run_bsp(graph, spec=spec)
            atos = bfs.run_atos(graph, PERSIST_CTA, spec=spec)
            rows.append(
                [
                    f"{launch / 1e3:.1f}",
                    f"{bsp.elapsed_ms:.3f}",
                    f"{atos.elapsed_ms:.3f}",
                    f"x{bsp.elapsed_ns / atos.elapsed_ns:.2f}",
                ]
            )
        return format_table(
            ["launch (us)", "BSP (ms)", "persist-CTA (ms)", "Atos adv."],
            rows,
            title="Ablation — small-frontier advantage vs kernel-launch cost (BFS, road_usa)",
        )

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact("ablation_launch_sensitivity", table)


def test_advantage_grows_with_launch_cost(lab):
    graph = lab.graph("road_usa")

    def gap(launch: float) -> float:
        spec = lab.spec.scaled(kernel_launch_ns=launch, barrier_ns=launch * 0.4)
        bsp = bfs.run_bsp(graph, spec=spec)
        atos = bfs.run_atos(graph, PERSIST_CTA, spec=spec)
        return bsp.elapsed_ns / atos.elapsed_ns

    assert gap(20000.0) > gap(100.0)
