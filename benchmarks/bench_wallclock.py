"""Wall-clock benchmark — the ``BENCH_perf.json`` scenario as a bench.

Runs the repro.perf benchmark grid (8 apps x engine presets x 2 datasets)
at ``REPRO_BENCH_SIZE``, validates the report against the schema, prints
the summary and archives both the text and the JSON under
``benchmarks/out/``.  The committed repo-root ``BENCH_perf.json`` is the
small-size baseline this scenario regenerates; see docs/performance.md
for how to refresh it.

``run_bench(metrics=True)`` also re-runs the ``METRICS_CELLS`` subset
untimed with a streaming MetricsSink, so the archived report embeds the
simulated-time ``MetricsSummary`` documents ``python -m repro diff``
compares alongside the wall numbers.

``test_wallclock_backend_ab`` runs the same grid once per engine backend
(:mod:`repro.core.backend`) and archives the A/B rows — the wall-clock
ratio of ``batched`` over ``event`` on identical simulated work.
"""

from __future__ import annotations

import json

from repro.metrics.diff import diff_docs
from repro.metrics.summary import validate_summary
from repro.perf.bench import METRICS_CELLS, format_report, run_bench, validate_report


def test_wallclock(benchmark, bench_size, artifact_dir, save_artifact):
    doc = benchmark.pedantic(
        lambda: run_bench(size=bench_size, repeats=2, metrics=True),
        rounds=1,
        iterations=1,
    )
    problems = validate_report(doc)
    assert not problems, problems
    assert doc["cells"] == 44
    assert doc["cells_per_s"] > 0
    assert doc["sim_ns_per_wall_ms"] > 0
    assert doc["t_end"] >= doc["t_start"]
    assert len(doc["metrics"]) == len(METRICS_CELLS)
    for key, summary in doc["metrics"].items():
        assert not validate_summary(summary), (key, validate_summary(summary))
    save_artifact("bench_wallclock", format_report(doc))
    (artifact_dir / "BENCH_perf.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_wallclock_backend_ab(benchmark, bench_size, save_artifact):
    """A/B the engine backends on the identical benchmark grid.

    Simulated results are bit-identical across backends (the equivalence
    suite pins that), so the only thing that can differ here is wall
    clock: the ratio row is pure scheduler-loop overhead.  The ratio is
    archived, not asserted — wall-clock on shared machines is too noisy
    for a hard gate (the committed ``BENCH_perf.json`` regression test in
    ``tests/test_perf.py`` is the calibrated gate).
    """
    def _ab():
        return {
            backend: run_bench(size=bench_size, repeats=2, backend=backend)
            for backend in ("event", "batched")
        }

    docs = benchmark.pedantic(_ab, rounds=1, iterations=1)
    lines = []
    for backend, doc in docs.items():
        assert not validate_report(doc), validate_report(doc)
        assert doc["backend"] == backend
        lines.append(format_report(doc))
    event, batched = docs["event"], docs["batched"]
    # identical simulated work is what makes the wall ratio meaningful
    assert batched["sim_ns_total"] == event["sim_ns_total"]
    assert batched["cells"] == event["cells"]
    report = diff_docs(event, batched, base_label="event", new_label="batched")
    assert not report.problems, report.problems
    ratio = event["wall_s"] / batched["wall_s"]
    lines.append(f"\nbatched vs event: {ratio:.2f}x wall-clock")
    lines.append(report.format())
    save_artifact("bench_wallclock_backend_ab", "\n".join(lines))
